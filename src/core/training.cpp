#include "core/training.h"

#include <algorithm>

#include "ml/adamw.h"
#include "ml/kernels.h"
#include "ml/schedule.h"
#include "ml/tokenizer.h"
#include "riscv/decode.h"
#include "riscv/disasm.h"

namespace chatfuzz::core {

std::vector<PretrainEpochStats> pretrain(ml::Gpt& model,
                                         const std::vector<corpus::Program>& data,
                                         const PretrainConfig& cfg, Rng& rng) {
  if (cfg.ml_threads > 0) ml::kern::set_num_threads(cfg.ml_threads);
  ml::Tokenizer tok;
  // One training row per sample, aligned so BOS sits at position 0. This
  // keeps the byte phase within each instruction a pure function of the
  // position (byte j of instruction m is at 1 + 4m + j), which the position
  // embedding learns directly — and it matches the generation-time layout,
  // where every rollout also starts with BOS at position 0.
  std::vector<std::vector<int>> rows;
  rows.reserve(data.size());
  for (const corpus::Program& p : data) {
    rows.push_back(tok.encode(p, /*with_bos=*/true, /*with_eos=*/true));
  }
  std::vector<PretrainEpochStats> out;
  if (rows.empty()) return out;

  const int B = cfg.batch;
  const int T = std::min(cfg.seq_len, model.config().ctx);
  ml::AdamW opt(model.num_params(), ml::AdamWConfig{cfg.lr});
  std::vector<int> inputs(static_cast<std::size_t>(B) * T);
  std::vector<int> targets(static_cast<std::size_t>(B) * T);

  const std::size_t steps_per_epoch =
      std::max<std::size_t>(1, rows.size() / static_cast<std::size_t>(B));
  ml::LrSchedule sched;
  sched.kind = cfg.cosine ? ml::LrSchedule::Kind::kCosine
                          : ml::LrSchedule::Kind::kConstant;
  sched.base_lr = cfg.lr;
  sched.warmup_steps = cfg.warmup_steps;
  sched.total_steps = static_cast<int>(steps_per_epoch) * cfg.epochs;
  sched.min_lr = cfg.min_lr_frac * cfg.lr;
  int global_step = 0;
  for (int e = 0; e < cfg.epochs; ++e) {
    PretrainEpochStats stats;
    double loss_sum = 0.0;
    for (std::size_t s = 0; s < steps_per_epoch; ++s) {
      for (int b = 0; b < B; ++b) {
        const std::vector<int>& row = rows[rng.below(rows.size())];
        for (int t = 0; t < T; ++t) {
          const std::size_t idx = static_cast<std::size_t>(t);
          inputs[b * T + t] =
              idx < row.size() ? row[idx] : ml::Tokenizer::kPad;
          targets[b * T + t] =
              idx + 1 < row.size() ? row[idx + 1] : -1;  // -1 = ignore
        }
      }
      model.forward(inputs.data(), B, T);
      model.zero_grad();
      loss_sum += model.backward_lm(inputs.data(), targets.data(), B, T);
      opt.set_lr(sched.at(global_step++));
      opt.step(model.params(), model.grads());
      ++stats.steps;
    }
    stats.mean_loss = static_cast<float>(loss_sum / static_cast<double>(stats.steps));
    out.push_back(stats);
  }
  return out;
}

double disasm_reward(const std::vector<std::uint32_t>& decoded) {
  const riscv::DisasmAudit a = riscv::audit(decoded);
  if (a.total == 0) return -5.0;  // degenerate empty generation
  return a.reward();
}

std::vector<float> per_token_validity_rewards(const std::vector<int>& response) {
  std::vector<float> out(response.size(), 0.f);
  std::uint32_t word = 0;
  int have = 0;
  for (std::size_t i = 0; i < response.size(); ++i) {
    const int t = response[i];
    if (t == ml::Tokenizer::kEos) break;
    if (t < 0 || t >= ml::Tokenizer::kByteVocab) continue;
    word |= static_cast<std::uint32_t>(t) << (8 * have);
    if (++have == ml::Tokenizer::kTokensPerInstr) {
      out[i] = riscv::is_valid(word) ? 1.f : -5.f;
      word = 0;
      have = 0;
    }
  }
  return out;
}

std::vector<CleanupIterStats> cleanup_stage(ml::Gpt& policy,
                                            const ml::Gpt& reference,
                                            corpus::CorpusGenerator& corpus,
                                            const CleanupConfig& cfg, Rng& rng) {
  if (cfg.ml_threads > 0) ml::kern::set_num_threads(cfg.ml_threads);
  ml::Tokenizer tok;
  ml::Sampler sampler(cfg.sample);
  ml::PpoTrainer ppo(policy, reference, cfg.ppo);

  std::vector<CleanupIterStats> out;
  for (int iter = 0; iter < cfg.iters; ++iter) {
    std::vector<std::vector<int>> prompts;
    prompts.reserve(cfg.batch);
    for (int b = 0; b < cfg.batch; ++b) {
      const auto k = static_cast<unsigned>(
          rng.range(cfg.prompt_min, cfg.prompt_max));
      prompts.push_back(tok.encode(corpus.prompt(k), /*with_bos=*/true));
    }
    std::vector<ml::Generation> gens = sampler.generate(policy, prompts, rng);

    std::vector<double> rewards(gens.size(), 0.0);
    std::vector<std::vector<float>> dense(gens.size());
    std::size_t total_instr = 0, total_invalid = 0;
    for (std::size_t i = 0; i < gens.size(); ++i) {
      const std::vector<std::uint32_t> decoded = tok.decode(gens[i].response);
      rewards[i] = disasm_reward(decoded);
      dense[i] = per_token_validity_rewards(gens[i].response);
      const riscv::DisasmAudit a = riscv::audit(decoded);
      total_instr += a.total;
      total_invalid += a.invalid;
    }
    // Terminal reward would double-count what the dense decomposition
    // already attributes, so pass zeros as terminal and the dense vector for
    // shaping (their sum equals Eq. 1).
    const std::vector<double> zeros(gens.size(), 0.0);
    const ml::PpoStats ps = ppo.update(gens, zeros, &dense);
    CleanupIterStats st;
    double rsum = 0.0;
    for (double r : rewards) rsum += r;
    st.mean_reward = static_cast<float>(rsum / static_cast<double>(rewards.size()));
    st.invalid_rate = total_instr > 0
                          ? static_cast<float>(total_invalid) /
                                static_cast<float>(total_instr)
                          : 1.f;
    st.mean_kl = ps.mean_kl;
    st.value_loss = ps.value_loss;
    out.push_back(st);
  }
  return out;
}

}  // namespace chatfuzz::core
