#include "core/sim_worker.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/sim_counters.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace chatfuzz::core {

SimStack::SimStack(const CampaignConfig& cfg, bool use_suite) {
  // Construction order IS the coverage-DB layout: every backend registers
  // its condition points into the shared shard as it is built, so this loop
  // must walk effective_duts() in list order — the same walk the
  // coordinator's registrar and the dist workers perform.
  for (const rtl::CoreConfig& core : effective_duts(cfg)) {
    duts.push_back(rtl::make_dut(core, db, cfg.platform));
    duts.back()->set_superblocks(cfg.superblocks);
  }
  dut = duts.front().get();
  golden = std::make_unique<sim::IsaSim>(cfg.platform);
  golden->set_superblocks(cfg.superblocks);
  if (use_suite) dut->attach_metrics(&suite);
  detector.install_default_filters();
}

bool campaign_uses_metric_suite(const CampaignConfig& cfg) {
  return cfg.collect_multi_metrics ||
         cfg.guidance == GuidanceMetric::kToggle ||
         cfg.guidance == GuidanceMetric::kStatement ||
         cfg.guidance == GuidanceMetric::kFsm;
}

const cov::Metric* select_guidance_metric(const cov::MetricSuite& suite,
                                          GuidanceMetric g) {
  switch (g) {
    case GuidanceMetric::kToggle: return &suite.toggle();
    case GuidanceMetric::kStatement: return &suite.statement();
    case GuidanceMetric::kFsm: return &suite.fsm();
    default: return nullptr;
  }
}

const std::vector<std::size_t>& guide_test_bins(const TestArtifact& art,
                                                GuidanceMetric g) {
  switch (g) {
    case GuidanceMetric::kStatement: return art.stmt_bins;
    case GuidanceMetric::kFsm: return art.fsm_bins;
    default: return art.toggle_bins;
  }
}

namespace {

/// Drain a simulator's per-test telemetry tallies into the process-wide
/// registry. Counter handles resolve once per process (the names never
/// change), so the per-test cost is six relaxed atomic adds.
void flush_sim_counters(const obs::SimCounters& c) {
  static obs::Counter* const pd_hits = obs::counter("sim.predecode_hits");
  static obs::Counter* const pd_misses = obs::counter("sim.predecode_misses");
  static obs::Counter* const tlb_hits = obs::counter("sim.tlb_hits");
  static obs::Counter* const tlb_misses = obs::counter("sim.tlb_misses");
  static obs::Counter* const sb_hits = obs::counter("sim.sb_hits");
  static obs::Counter* const sb_builds = obs::counter("sim.sb_builds");
  pd_hits->add(c.predecode_hits);
  pd_misses->add(c.predecode_misses);
  tlb_hits->add(c.tlb_hits);
  tlb_misses->add(c.tlb_misses);
  sb_hits->add(c.sb_hits);
  sb_builds->add(c.sb_builds);
}

}  // namespace

void run_one(SimStack& w, const CampaignConfig& cfg, bool use_suite,
             const Program& test, std::uint64_t test_index,
             TestArtifact& out) {
  OBS_SPAN("sim.run_one");
  out.begin();
  w.db.reset_hits();  // shard holds exactly this test's hits afterwards
  if (use_suite) w.suite.begin_test();
  std::uint64_t reg_seed = 0;
  if (cfg.randomize_regs) {
    // Per-test RNG stream keyed by campaign seed + global test index, so the
    // register file is the same no matter which thread runs the test — and
    // the same for every DUT of a multi-DUT campaign.
    reg_seed = Rng(cfg.seed).fork(test_index).next_u64();
    w.golden->set_reg_seed(reg_seed);
  }
  const bool collect_bbv = !cfg.bbv_path.empty();

  // One golden ISS run per DUT backend, in list order. Everything a test
  // contributes — condition hits in the shared shard, ctrl states, the
  // mismatch report (comparator ordinal d accumulates all DUTs into one
  // Report) — lands in the same artifact, so the fold stays per-test and
  // order-free exactly as in single-DUT mode. The metrics suite, BBV
  // recorder and step count stay primary-DUT-only: they feed guidance and
  // phase analyses whose semantics are per-program, not per-backend.
  obs::SimCounters oc;
  for (std::size_t d = 0; d < w.duts.size(); ++d) {
    OBS_SPAN("sim.dut_run");
    rtl::DutCore& dut = *w.duts[d];
    dut.ctrl_cov().begin_test();
    dut.ctrl_cov().set_recorder(&out.ctrl_states);
    if (cfg.randomize_regs) dut.set_reg_seed(reg_seed);
    const bool bbv_this = collect_bbv && d == 0;
    if (bbv_this) {
      w.bbv.begin();
      dut.set_bbv(&w.bbv);
    }
    if (cfg.mismatch_detection) {
      // Arm the comparator (which sinks the golden model) before the golden
      // reset, so the reset skips its trace scratch like the DUT's does.
      w.comparator.begin(w.detector, *w.golden, out.report, d);
      w.golden->reset(test);
      dut.set_sink(&w.comparator);
    } else {
      dut.set_sink(&w.discard);
    }
    dut.reset(test);
    const sim::RunResult dut_run = dut.run();
    if (cfg.mismatch_detection) {
      OBS_SPAN("sim.lockstep_finish");
      w.comparator.finish();
    }
    dut.set_sink(nullptr);
    dut.ctrl_cov().set_recorder(nullptr);
    if (bbv_this) {
      dut.set_bbv(nullptr);  // run() already closed the trailing block
      out.bbv = w.bbv.blocks();
    }
    out.cycles += dut.cycles();
    if (d == 0) out.steps = dut_run.steps;
    oc += dut.take_obs_counters();
  }
  oc += w.golden->take_obs_counters();
  flush_sim_counters(oc);

  cov::extract_bins(w.db, out.cond_bins);
  if (use_suite) {
    w.suite.toggle().append_test_bins(out.toggle_bins);
    w.suite.fsm().append_test_bins(out.fsm_bins);
    w.suite.statement().append_test_bins(out.stmt_bins);
  }
}

void run_span(std::vector<std::unique_ptr<SimStack>>& stacks,
              const CampaignConfig& cfg, bool use_suite, const Program* tests,
              std::size_t count, std::uint64_t base_index,
              TestArtifact* artifacts) {
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  const auto drain = [&](std::size_t si) {
    SimStack& w = *stacks[si];
    try {
      for (std::size_t i;
           !failed.load(std::memory_order_relaxed) &&
           (i = next.fetch_add(1)) < count;) {
        run_one(w, cfg, use_suite, tests[i], base_index + i, artifacts[i]);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };
  const std::size_t spawn = std::min(stacks.size(), count);
  if (spawn <= 1) {
    drain(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(spawn - 1);
    for (std::size_t si = 1; si < spawn; ++si) pool.emplace_back(drain, si);
    drain(0);
    for (std::thread& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace chatfuzz::core
