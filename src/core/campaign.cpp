#include "core/campaign.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/checkpoint.h"
#include "corpus/store.h"
#include "isasim/sim.h"
#include "mismatch/lockstep.h"
#include "rtlsim/core.h"
#include "util/rng.h"

namespace chatfuzz::core {

namespace {

/// First curve point at/above `percent` condition coverage. Cumulative
/// coverage is monotone along the curve, so binary search applies; benches
/// that query many thresholds over long curves were paying a full rescan
/// per call.
const CampaignPoint* first_point_at(const std::vector<CampaignPoint>& curve,
                                    double percent) {
  const auto it = std::lower_bound(
      curve.begin(), curve.end(), percent,
      [](const CampaignPoint& p, double v) { return p.cond_cov_percent < v; });
  return it != curve.end() ? &*it : nullptr;
}

}  // namespace

double CampaignResult::hours_to(double percent) const {
  const CampaignPoint* p = first_point_at(curve, percent);
  return p != nullptr ? p->hours : -1.0;
}

std::size_t CampaignResult::tests_to(double percent) const {
  const CampaignPoint* p = first_point_at(curve, percent);
  return p != nullptr ? p->tests : 0;
}

const char* guidance_name(GuidanceMetric m) {
  switch (m) {
    case GuidanceMetric::kCondition: return "condition";
    case GuidanceMetric::kToggle: return "toggle";
    case GuidanceMetric::kStatement: return "statement";
    case GuidanceMetric::kFsm: return "fsm";
    case GuidanceMetric::kCtrlReg: return "ctrl-reg";
  }
  return "?";
}

namespace {

/// The guidance metric selected by the config, as the uniform Metric view
/// (null for condition/ctrl-reg, which have dedicated plumbing).
const cov::Metric* select_metric(const cov::MetricSuite& suite,
                                 GuidanceMetric g) {
  switch (g) {
    case GuidanceMetric::kToggle: return &suite.toggle();
    case GuidanceMetric::kStatement: return &suite.statement();
    case GuidanceMetric::kFsm: return &suite.fsm();
    default: return nullptr;
  }
}

// ---------------------------------------------------------------------------
// Parallel execution engine.
//
// The paper scales by running ten VCS instances side by side and merging
// their coverage; this engine does the same with worker threads. Each worker
// owns a private DUT model, golden model, coverage shard and metric suite;
// a batch is split across the pool and every test produces a TestArtifact —
// the complete, order-free record of what that test contributed. The
// coordinating thread then folds artifacts back in canonical test order,
// reproducing the exact per-test incremental/total coverage values, curve
// checkpoints and mismatch tallies a fully sequential run computes. Because
// every artifact depends only on (program, campaign seed, test index) — the
// DUT is reset per test and all stochastic decisions are keyed by test
// index, never by thread — campaign output is bit-identical for any worker
// count and any scheduling.
// ---------------------------------------------------------------------------

/// Everything one simulated test contributes to campaign state. Artifacts
/// are pooled: the engine keeps one per batch slot alive for the whole
/// campaign, and begin() re-arms it without giving back vector capacity, so
/// the steady-state batch loop performs no per-test allocation.
struct TestArtifact {
  std::vector<cov::BinDelta> cond_bins;     // condition-coverage slice
  std::vector<std::uint64_t> ctrl_states;   // ctrl states new to the worker
  std::vector<std::size_t> toggle_bins, fsm_bins, stmt_bins;
  std::uint64_t cycles = 0;
  std::uint64_t steps = 0;
  mismatch::Report report;                  // per-test commit-stream diff

  void begin() {
    cond_bins.clear();
    ctrl_states.clear();
    toggle_bins.clear();
    fsm_bins.clear();
    stmt_bins.clear();
    cycles = 0;
    steps = 0;
    report.mismatches.clear();
    report.raw_count = 0;
    report.filtered_count = 0;
  }
};

/// One worker's private simulation stack, reused across batches. The ctrl
/// coverage set inside `dut` deliberately accumulates for the whole
/// campaign: a worker only reports states it has not reported before, and
/// since each worker's tests are claimed in increasing global order, the
/// canonical-order replay on the coordinator sees every state at exactly
/// the first test a sequential run would.
struct Worker {
  Worker(const CampaignConfig& cfg, bool use_suite) {
    dut = std::make_unique<rtl::RtlCore>(cfg.core, db, cfg.platform);
    golden = std::make_unique<sim::IsaSim>(cfg.platform);
    if (use_suite) dut->attach_metrics(&suite);
    detector.install_default_filters();
  }

  cov::CoverageDB db;        // per-test shard (reset before every test)
  cov::MetricSuite suite;
  std::unique_ptr<rtl::RtlCore> dut;
  std::unique_ptr<sim::IsaSim> golden;
  mismatch::MismatchDetector detector;  // filter rules only; the campaign-
                                        // wide tally lives on the coordinator
  mismatch::LockstepComparator comparator;
  sim::DiscardSink discard;
};

/// Simulate one test, streaming. The DUT's commit stream feeds the lockstep
/// comparator (which pulls the golden model one instruction at a time and
/// stops it as soon as the comparison is decided) or a discard sink when
/// mismatch detection is off — no trace is materialized on either side, and
/// every coverage sweep below runs over this test's dirty-bin journals, not
/// the whole instrumentation layout.
void run_one(Worker& w, const CampaignConfig& cfg, bool use_suite,
             const Program& test, std::uint64_t test_index,
             TestArtifact& out) {
  out.begin();
  w.db.reset_hits();  // shard holds exactly this test's hits afterwards
  if (use_suite) w.suite.begin_test();
  w.dut->ctrl_cov().begin_test();
  w.dut->ctrl_cov().set_recorder(&out.ctrl_states);
  if (cfg.randomize_regs) {
    // Per-test RNG stream keyed by campaign seed + global test index, so the
    // register file is the same no matter which thread runs the test.
    const std::uint64_t reg_seed = Rng(cfg.seed).fork(test_index).next_u64();
    w.dut->set_reg_seed(reg_seed);
    w.golden->set_reg_seed(reg_seed);
  }
  if (cfg.mismatch_detection) {
    // Arm the comparator (which sinks the golden model) before the golden
    // reset, so the reset skips its trace scratch like the DUT's does.
    w.comparator.begin(w.detector, *w.golden, out.report);
    w.golden->reset(test);
    w.dut->set_sink(&w.comparator);
  } else {
    w.dut->set_sink(&w.discard);
  }
  w.dut->reset(test);
  const sim::RunResult dut_run = w.dut->run();
  if (cfg.mismatch_detection) w.comparator.finish();
  w.dut->set_sink(nullptr);
  w.dut->ctrl_cov().set_recorder(nullptr);

  cov::extract_bins(w.db, out.cond_bins);
  if (use_suite) {
    w.suite.toggle().append_test_bins(out.toggle_bins);
    w.suite.fsm().append_test_bins(out.fsm_bins);
    w.suite.statement().append_test_bins(out.stmt_bins);
  }
  out.cycles = w.dut->cycles();
  out.steps = dut_run.steps;
}

/// The selected guidance metric's per-test bins within an artifact.
const std::vector<std::size_t>& guide_test_bins(const TestArtifact& art,
                                                GuidanceMetric g) {
  switch (g) {
    case GuidanceMetric::kStatement: return art.stmt_bins;
    case GuidanceMetric::kFsm: return art.fsm_bins;
    default: return art.toggle_bins;
  }
}

/// The engine shared by run_campaign() (restored == nullptr) and
/// resume_campaign() (restored == the loaded checkpoint).
CampaignResult run_engine(InputGenerator& gen, const CampaignConfig& cfg,
                          CheckpointHook hook,
                          const CheckpointData* restored) {
  const bool use_suite = cfg.collect_multi_metrics ||
                         cfg.guidance == GuidanceMetric::kToggle ||
                         cfg.guidance == GuidanceMetric::kStatement ||
                         cfg.guidance == GuidanceMetric::kFsm;
  // Clamp to what can actually run concurrently: a batch never fans out
  // wider than its own size, so extra worker stacks would be dead weight
  // (and an absurd request — CLI garbage parsing to ULONG_MAX — would
  // otherwise OOM constructing simulator instances).
  const std::size_t requested = std::max<std::size_t>(
      1, cfg.num_workers != 0
             ? cfg.num_workers
             : std::thread::hardware_concurrency());
  const std::size_t num_workers = std::min(
      requested,
      std::max<std::size_t>(1, std::min(cfg.batch_size, cfg.num_tests)));

  // Canonical campaign-wide state, touched only by the coordinating thread.
  // The throwaway core performs the condition-point registrations so this DB
  // has the exact same layout as every worker shard.
  cov::CoverageDB db;
  { rtl::RtlCore registrar(cfg.core, db, cfg.platform); }
  cov::MetricSuite suite;
  cov::CtrlRegCoverage ctrl;
  mismatch::MismatchDetector detector;
  const cov::Metric* guide = select_metric(suite, cfg.guidance);

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers.push_back(std::make_unique<Worker>(cfg, use_suite));
  }

  CampaignResult result;
  result.fuzzer = gen.name();

  // Durable-campaign plumbing: the corpus store archives interesting tests;
  // snapshot() captures the full coordinator + generator state.
  const bool persist = !cfg.checkpoint_dir.empty();
  if (cfg.stop_after_tests != 0 && !persist) {
    // A pause without a checkpoint directory would discard every test run
    // so far with nothing on disk to resume from.
    throw std::invalid_argument(
        "stop_after_tests requires checkpoint_dir: pausing without a "
        "checkpoint would lose the campaign state");
  }
  corpus::CorpusStore store;
  if (persist) {
    if (!gen.supports_snapshot()) {
      throw std::invalid_argument(
          "campaign checkpointing requires a generator that supports "
          "snapshots; " +
          gen.name() + " does not");
    }
    const ser::Status s = store.open(cfg.checkpoint_dir + "/corpus");
    if (!s.ok()) throw std::runtime_error(s.message());
  }

  std::size_t since_checkpoint = 0;
  if (restored != nullptr) {
    // Rebuild the coordinator exactly as it was at the snapshot. The
    // workers need no restoration: every per-test artifact depends only on
    // (program, seed, test index), and worker-local ctrl dedup sets merely
    // over-report states the coordinator set filters out again.
    result.curve = restored->curve;
    result.tests_run = static_cast<std::size_t>(restored->tests_run);
    result.total_cycles = restored->total_cycles;
    result.total_instrs = restored->total_instrs;
    since_checkpoint = static_cast<std::size_t>(restored->since_checkpoint);
    ser::Reader cov_r(restored->coverage_blob);
    if (!db.restore_state(cov_r) || !suite.restore_state(cov_r) ||
        !ctrl.restore_state(cov_r) || !cov_r.done()) {
      throw std::runtime_error(
          "checkpoint coverage state does not match this build's DUT "
          "instrumentation");
    }
    ser::Reader det_r(restored->detector_blob);
    if (!detector.restore_state(det_r) || !det_r.done()) {
      throw std::runtime_error("checkpoint mismatch-database is malformed");
    }
    if (persist) {
      const ser::Status s =
          store.truncate(static_cast<std::size_t>(restored->corpus_entries));
      if (!s.ok()) throw std::runtime_error(s.message());
    }
  }

  const auto snapshot = [&] {
    ser::Status s = store.flush();
    if (!s.ok()) throw std::runtime_error(s.message());
    CheckpointData data;
    data.cfg = cfg;
    data.cfg.stop_after_tests = 0;  // a pause point is not part of the state
    data.fuzzer = gen.name();
    data.curve = result.curve;
    data.tests_run = result.tests_run;
    data.total_cycles = result.total_cycles;
    data.total_instrs = result.total_instrs;
    data.since_checkpoint = since_checkpoint;
    data.corpus_entries = store.size();
    ser::Writer cov_w;
    db.save_state(cov_w);
    suite.save_state(cov_w);
    ctrl.save_state(cov_w);
    data.coverage_blob = cov_w.take();
    ser::Writer det_w;
    detector.save_state(det_w);
    data.detector_blob = det_w.take();
    ser::Writer gen_w;
    gen.save_state(gen_w);
    data.generator_blob = gen_w.take();
    s = save_checkpoint(cfg.checkpoint_dir, data);
    if (!s.ok()) throw std::runtime_error(s.message());
  };

  // Pausing early must not perturb batch sizing (batches derive from
  // num_tests), or the resumed schedule would diverge from an
  // uninterrupted run's.
  const std::size_t stop_at = cfg.stop_after_tests == 0
                                  ? cfg.num_tests
                                  : std::min(cfg.num_tests,
                                             cfg.stop_after_tests);
  std::size_t last_snapshot_tests = result.tests_run;

  // Pooled batch scratch: artifacts and fold vectors live for the whole
  // campaign and only ever grow, so after the first batch the engine
  // allocates nothing per test beyond what a test's own novelty requires.
  std::vector<TestArtifact> artifacts;
  std::vector<cov::TestCoverage> coverages;
  std::vector<std::uint64_t> ctrl_new;
  std::vector<std::uint32_t> new_bins;

  while (result.tests_run < cfg.num_tests) {
    const std::size_t want =
        std::min(cfg.batch_size, cfg.num_tests - result.tests_run);
    const std::vector<Program> batch = gen.next_batch(want);
    if (batch.empty()) break;  // generator exhausted; don't spin forever
    const std::size_t base = result.tests_run;

    // Simulate the batch across the pool. Workers claim tests through the
    // shared counter, so each worker's tests are in increasing global order
    // (the invariant the ctrl-state replay relies on).
    if (artifacts.size() < batch.size()) artifacts.resize(batch.size());
    std::atomic<std::size_t> next{0};
    // A throw on a pooled thread may not escape (std::terminate) and a
    // throw on the coordinator must not leave joinable threads behind, so
    // every drain captures its first exception; after the join it is
    // rethrown here, preserving the sequential engine's error contract.
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    const auto drain = [&](std::size_t wi) {
      Worker& w = *workers[wi];
      try {
        for (std::size_t i;
             !failed.load(std::memory_order_relaxed) &&
             (i = next.fetch_add(1)) < batch.size();) {
          run_one(w, cfg, use_suite, batch[i], base + i, artifacts[i]);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    };
    if (num_workers == 1 || batch.size() == 1) {
      drain(0);
    } else {
      std::vector<std::thread> pool;
      const std::size_t spawn = std::min(num_workers, batch.size());
      pool.reserve(spawn - 1);
      for (std::size_t wi = 1; wi < spawn; ++wi) pool.emplace_back(drain, wi);
      drain(0);
      for (std::thread& t : pool) t.join();
    }
    if (error) std::rethrow_exception(error);

    // Fold artifacts in canonical test order: identical arithmetic to a
    // sequential run, including curve checkpoints at exact test indices.
    coverages.clear();
    ctrl_new.clear();
    coverages.reserve(batch.size());
    ctrl_new.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const TestArtifact& art = artifacts[i];
      // Running covered counts: both reads are O(1) on the journaled DBs,
      // so the coordinator no longer rescans the bin universe per test.
      const std::size_t cond_before = db.total_covered();
      const std::size_t guide_before = guide ? guide->covered() : 0;
      // Coverage attribution for the corpus store: the condition bins this
      // test covers FIRST, taken before its delta lands in the DB.
      new_bins.clear();
      if (persist) {
        for (const cov::BinDelta& d : art.cond_bins) {
          if (!db.bin_covered(d.bin)) new_bins.push_back(d.bin);
        }
      }
      cov::apply_bins(db, art.cond_bins);
      if (use_suite) {
        for (std::size_t bin : art.toggle_bins) suite.toggle().cover_bin(bin);
        for (std::size_t bin : art.fsm_bins) suite.fsm().cover_bin(bin);
        for (std::size_t bin : art.stmt_bins) suite.statement().cover_bin(bin);
      }
      ctrl.begin_test();
      for (std::uint64_t s : art.ctrl_states) ctrl.observe(s);

      cov::TestCoverage tc;
      if (guide != nullptr) {
        // Guidance by the selected metric: the generator sees the metric's
        // stand-alone/incremental/total instead of condition coverage.
        tc.standalone_bins = guide_test_bins(art, cfg.guidance).size();
        tc.total_bins = guide->covered();
        tc.incremental_bins = tc.total_bins - guide_before;
        tc.universe_bins = guide->universe();
      } else if (cfg.guidance == GuidanceMetric::kCtrlReg) {
        tc.standalone_bins = ctrl.test_new_states();
        tc.incremental_bins = tc.standalone_bins;
        tc.total_bins = ctrl.distinct_states();
        tc.universe_bins = 0;  // open universe: percentages undefined
      } else {
        tc.standalone_bins = art.cond_bins.size();
        tc.total_bins = db.total_covered();
        tc.incremental_bins = tc.total_bins - cond_before;
        tc.universe_bins = db.num_bins();
      }
      coverages.push_back(tc);
      ctrl_new.push_back(ctrl.test_new_states());
      result.total_cycles += art.cycles;
      result.total_instrs += art.steps;
      if (cfg.mismatch_detection) detector.accumulate(art.report);
      // Archive tests that earned their keep. Appends happen in canonical
      // fold order, so the store's bytes are worker-count-invariant too.
      if (persist &&
          (!new_bins.empty() || !art.report.mismatches.empty())) {
        corpus::StoreEntryMeta meta;
        meta.test_index = base + i;
        meta.standalone_bins = static_cast<std::uint32_t>(tc.standalone_bins);
        meta.incremental_bins =
            static_cast<std::uint32_t>(tc.incremental_bins);
        meta.mismatches =
            static_cast<std::uint32_t>(art.report.mismatches.size());
        meta.ctrl_new = ctrl.test_new_states();
        meta.new_bins = new_bins;  // copy: the scratch vector is pooled
        const ser::Status s = store.append(batch[i], meta);
        if (!s.ok()) throw std::runtime_error(s.message());
      }
      ++result.tests_run;
      ++since_checkpoint;

      if (since_checkpoint >= cfg.checkpoint_every ||
          result.tests_run == cfg.num_tests) {
        since_checkpoint = 0;
        CampaignPoint pt;
        pt.tests = result.tests_run;
        pt.hours = static_cast<double>(result.tests_run) /
                   (cfg.tests_per_hour / gen.time_per_test_factor());
        pt.cond_cov_percent = db.total_percent();
        pt.ctrl_states = ctrl.distinct_states();
        result.curve.push_back(pt);
        if (hook) hook(pt);
      }
    }

    Feedback fb;
    fb.batch = &batch;
    fb.coverages = &coverages;
    fb.ctrl_new_states = &ctrl_new;
    fb.db = &db;
    gen.feedback(fb);

    // Batch boundary: the generator's feedback is absorbed, no test is in
    // flight — the one consistent cut point for snapshots and pauses.
    const bool done = result.tests_run >= cfg.num_tests;
    const bool pausing = !done && result.tests_run >= stop_at;
    if (persist &&
        (done || pausing ||
         (cfg.checkpoint_every_tests != 0 &&
          result.tests_run - last_snapshot_tests >=
              cfg.checkpoint_every_tests))) {
      snapshot();
      last_snapshot_tests = result.tests_run;
    }
    if (pausing) {
      result.completed = false;
      break;
    }
  }

  result.final_cov_percent = db.total_percent();
  result.uncovered = cov::uncovered_points(db);
  if (use_suite) {
    result.toggle_percent = suite.toggle().percent();
    result.fsm_percent = suite.fsm().percent();
    result.statement_percent = suite.statement().percent();
  }
  result.hours = static_cast<double>(result.tests_run) /
                 (cfg.tests_per_hour / gen.time_per_test_factor());
  result.raw_mismatches = detector.total_raw();
  result.filtered_mismatches =
      detector.total_raw() - detector.total_post_filter();
  result.unique_mismatches = detector.unique_count();
  for (const mismatch::Finding f : detector.findings_seen()) {
    result.findings.insert(f);
  }
  return result;
}

}  // namespace

CampaignResult run_campaign(InputGenerator& gen, const CampaignConfig& cfg,
                            CheckpointHook hook) {
  return run_engine(gen, cfg, std::move(hook), nullptr);
}

CampaignResult resume_campaign(InputGenerator& gen, const std::string& dir,
                               const ResumeOptions& opts,
                               CheckpointHook hook) {
  CheckpointData data;
  const ser::Status s = load_checkpoint(dir, &data);
  if (!s.ok()) throw std::runtime_error(s.message());
  return resume_campaign(gen, dir, std::move(data), opts, std::move(hook));
}

CampaignResult resume_campaign(InputGenerator& gen, const std::string& dir,
                               CheckpointData data, const ResumeOptions& opts,
                               CheckpointHook hook) {
  if (data.fuzzer != gen.name()) {
    throw std::runtime_error("checkpoint in " + dir + " was written by \"" +
                             data.fuzzer + "\", cannot resume with \"" +
                             gen.name() + "\"");
  }
  ser::Reader gen_r(data.generator_blob);
  if (!gen.supports_snapshot() || !gen.restore_state(gen_r) ||
      !gen_r.done()) {
    throw std::runtime_error(
        "checkpoint generator state in " + dir +
        " does not restore into this generator configuration");
  }
  CampaignConfig cfg = data.cfg;
  cfg.checkpoint_dir = dir;  // continue persisting where we left off
  if (opts.num_workers != 0) cfg.num_workers = opts.num_workers;
  cfg.stop_after_tests = opts.stop_after_tests;
  return run_engine(gen, cfg, std::move(hook), &data);
}

ser::Status peek_checkpoint(const std::string& dir, std::string* fuzzer,
                            CampaignConfig* cfg) {
  CheckpointData data;
  ser::Status s = load_checkpoint(dir, &data);
  if (!s.ok()) return s;
  if (fuzzer != nullptr) *fuzzer = data.fuzzer;
  if (cfg != nullptr) *cfg = data.cfg;
  return {};
}

}  // namespace chatfuzz::core
