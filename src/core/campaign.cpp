#include "core/campaign.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/bbv.h"
#include "core/checkpoint.h"
#include "core/sim_worker.h"
#include "corpus/store.h"
#include "dist/coordinator.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "riscv/superblock.h"
#include "util/log.h"
#include "util/rng.h"

namespace chatfuzz::core {

namespace {

/// Graceful-drain flag. std::atomic<bool> is lock-free on every supported
/// target, so request_drain() is safe to call from a signal handler.
std::atomic<bool> g_drain_requested{false};

}  // namespace

void request_drain() { g_drain_requested.store(true, std::memory_order_relaxed); }
bool drain_requested() {
  return g_drain_requested.load(std::memory_order_relaxed);
}
void clear_drain() { g_drain_requested.store(false, std::memory_order_relaxed); }

namespace {

/// First curve point at/above `percent` condition coverage. Cumulative
/// coverage is monotone along the curve, so binary search applies; benches
/// that query many thresholds over long curves were paying a full rescan
/// per call.
const CampaignPoint* first_point_at(const std::vector<CampaignPoint>& curve,
                                    double percent) {
  const auto it = std::lower_bound(
      curve.begin(), curve.end(), percent,
      [](const CampaignPoint& p, double v) { return p.cond_cov_percent < v; });
  return it != curve.end() ? &*it : nullptr;
}

/// Trace recording bracketed over the engine body. Stops recording on every
/// exit path (including thrown exceptions); the export itself only happens
/// on the success path, explicitly.
struct TraceSession {
  bool active = false;
  ~TraceSession() {
    if (active) obs::trace_stop();
  }
};

}  // namespace

double CampaignResult::hours_to(double percent) const {
  const CampaignPoint* p = first_point_at(curve, percent);
  return p != nullptr ? p->hours : -1.0;
}

std::size_t CampaignResult::tests_to(double percent) const {
  const CampaignPoint* p = first_point_at(curve, percent);
  return p != nullptr ? p->tests : 0;
}

std::vector<rtl::CoreConfig> effective_duts(const CampaignConfig& cfg) {
  if (!cfg.duts.empty()) return cfg.duts;
  return {cfg.core};
}

const char* guidance_name(GuidanceMetric m) {
  switch (m) {
    case GuidanceMetric::kCondition: return "condition";
    case GuidanceMetric::kToggle: return "toggle";
    case GuidanceMetric::kStatement: return "statement";
    case GuidanceMetric::kFsm: return "fsm";
    case GuidanceMetric::kCtrlReg: return "ctrl-reg";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Parallel execution engine.
//
// The paper scales by running ten VCS instances side by side and merging
// their coverage; this engine does the same with worker threads — and, when
// cfg.dist.num_procs > 1, with worker *processes* behind a
// dist::Coordinator. Either way each simulation stack is private (see
// core/sim_worker.h), a batch is split across the pool and every test
// produces a TestArtifact — the complete, order-free record of what that
// test contributed. The coordinating thread then folds artifacts back in
// canonical test order, reproducing the exact per-test incremental/total
// coverage values, curve checkpoints and mismatch tallies a fully
// sequential run computes. Because every artifact depends only on
// (program, campaign seed, test index) — the DUT is reset per test and all
// stochastic decisions are keyed by test index, never by thread or process
// — campaign output is bit-identical for any worker count, process count
// and any scheduling.
// ---------------------------------------------------------------------------

/// The engine shared by run_campaign() (restored == nullptr) and
/// resume_campaign() (restored == the loaded checkpoint).
CampaignResult run_engine(InputGenerator& gen, const CampaignConfig& cfg,
                          CheckpointHook hook,
                          const CheckpointData* restored) {
  // Telemetry is observation-only: the registry reset, span recording and
  // NDJSON snapshots below never feed back into campaign state, so every
  // artifact is byte-identical with telemetry on or off. Metrics counters
  // always accumulate (they are a relaxed add); the reset just scopes the
  // numbers to this campaign when several run in one process.
  obs::registry().reset();
  const std::uint64_t obs_start_ns = obs::now_ns();
  TraceSession trace_session;
  if (!cfg.trace_path.empty()) {
    obs::trace_start();
    trace_session.active = true;
  }
  obs::StatsWriter stats_writer;
  if (!cfg.stats_path.empty()) {
    std::string err;
    if (!stats_writer.open(cfg.stats_path, cfg.stats_every_ms, &err)) {
      throw std::runtime_error("stats file: " + err);
    }
  }

  const bool use_suite = campaign_uses_metric_suite(cfg);
  // A listen address alone selects the dist engine even with num_procs == 0:
  // the coordinator then waits for external `worker --connect` dial-ins.
  const bool use_dist = cfg.dist.num_procs > 1 || !cfg.dist.listen.empty();
  // Clamp to what can actually run concurrently: a batch never fans out
  // wider than its own size, so extra worker stacks would be dead weight
  // (and an absurd request — CLI garbage parsing to ULONG_MAX — would
  // otherwise OOM constructing simulator instances).
  const std::size_t requested = std::max<std::size_t>(
      1, cfg.num_workers != 0
             ? cfg.num_workers
             : std::thread::hardware_concurrency());
  const std::size_t num_workers = std::min(
      requested,
      std::max<std::size_t>(1, std::min(cfg.batch_size, cfg.num_tests)));

  // Canonical campaign-wide state, touched only by the coordinating thread.
  // The throwaway cores perform the condition-point registrations so this DB
  // has the exact same layout as every worker shard: one backend per
  // effective DUT, registered in list order (see SimStack's constructor).
  cov::CoverageDB db;
  for (const rtl::CoreConfig& core : effective_duts(cfg)) {
    rtl::make_dut(core, db, cfg.platform);
  }
  cov::MetricSuite suite;
  cov::CtrlRegCoverage ctrl;
  mismatch::MismatchDetector detector;
  const cov::Metric* guide = select_guidance_metric(suite, cfg.guidance);

  // Exactly one simulation backend: in-process stacks, or the dist
  // coordinator (which spawns its worker processes up front and keeps them
  // for the whole campaign — leases flow per batch, processes do not).
  std::vector<std::unique_ptr<SimStack>> workers;
  std::unique_ptr<dist::Coordinator> coordinator;
  if (use_dist) {
    coordinator = std::make_unique<dist::Coordinator>(cfg, use_suite);
  } else {
    workers.reserve(num_workers);
    for (std::size_t i = 0; i < num_workers; ++i) {
      workers.push_back(std::make_unique<SimStack>(cfg, use_suite));
    }
  }

  CampaignResult result;
  result.fuzzer = gen.name();

  // Durable-campaign plumbing: the corpus store archives interesting tests;
  // snapshot() captures the full coordinator + generator state.
  const bool persist = !cfg.checkpoint_dir.empty();
  if (cfg.stop_after_tests != 0 && !persist) {
    // A pause without a checkpoint directory would discard every test run
    // so far with nothing on disk to resume from.
    throw std::invalid_argument(
        "stop_after_tests requires checkpoint_dir: pausing without a "
        "checkpoint would lose the campaign state");
  }
  corpus::CorpusStore store;
  if (persist) {
    if (!gen.supports_snapshot()) {
      throw std::invalid_argument(
          "campaign checkpointing requires a generator that supports "
          "snapshots; " +
          gen.name() + " does not");
    }
    const ser::Status s = store.open(cfg.checkpoint_dir + "/corpus");
    if (!s.ok()) throw std::runtime_error(s.message());
  }

  // BBV log: appended per test in canonical fold order (exactly like the
  // sparse coverage deltas), rewritten atomically at every snapshot point
  // and at campaign end. Purely additive instrumentation — collecting it
  // changes no other campaign artifact.
  const bool collect_bbv = !cfg.bbv_path.empty();
  std::vector<BbvEntry> bbv_log;

  std::size_t since_checkpoint = 0;
  if (restored != nullptr) {
    // Rebuild the coordinator exactly as it was at the snapshot. The
    // workers need no restoration: every per-test artifact depends only on
    // (program, seed, test index), and worker-local ctrl dedup sets merely
    // over-report states the coordinator set filters out again.
    result.curve = restored->curve;
    result.tests_run = static_cast<std::size_t>(restored->tests_run);
    result.total_cycles = restored->total_cycles;
    result.total_instrs = restored->total_instrs;
    since_checkpoint = static_cast<std::size_t>(restored->since_checkpoint);
    ser::Reader cov_r(restored->coverage_blob);
    if (!db.restore_state(cov_r) || !suite.restore_state(cov_r) ||
        !ctrl.restore_state(cov_r) || !cov_r.done()) {
      throw std::runtime_error(
          "checkpoint coverage state does not match this build's DUT "
          "instrumentation");
    }
    ser::Reader det_r(restored->detector_blob);
    if (!detector.restore_state(det_r) || !det_r.done()) {
      throw std::runtime_error("checkpoint mismatch-database is malformed");
    }
    if (persist) {
      const ser::Status s =
          store.truncate(static_cast<std::size_t>(restored->corpus_entries));
      if (!s.ok()) throw std::runtime_error(s.message());
    }
    if (collect_bbv) {
      // Reload the log written before the cut and roll it back to the
      // checkpoint's test count — the same rollback the corpus store does —
      // so the resumed run's file is byte-identical to an uninterrupted
      // one's. A fresh path on resume simply starts the log at the cut.
      std::vector<BbvEntry> prior;
      if (load_bbv(cfg.bbv_path, &prior).ok()) bbv_log = std::move(prior);
      if (bbv_log.size() > result.tests_run) bbv_log.resize(result.tests_run);
    }
  }

  const auto snapshot = [&] {
    OBS_SPAN("engine.checkpoint");
    obs::counter("campaign.checkpoints")->inc();
    ser::Status s = store.flush();
    if (!s.ok()) throw std::runtime_error(s.message());
    if (collect_bbv) {
      s = save_bbv(cfg.bbv_path, bbv_log);
      if (!s.ok()) throw std::runtime_error(s.message());
    }
    CheckpointData data;
    data.cfg = cfg;
    data.cfg.stop_after_tests = 0;  // a pause point is not part of the state
    data.fuzzer = gen.name();
    data.curve = result.curve;
    data.tests_run = result.tests_run;
    data.total_cycles = result.total_cycles;
    data.total_instrs = result.total_instrs;
    data.since_checkpoint = since_checkpoint;
    data.corpus_entries = store.size();
    ser::Writer cov_w;
    db.save_state(cov_w);
    suite.save_state(cov_w);
    ctrl.save_state(cov_w);
    data.coverage_blob = cov_w.take();
    ser::Writer det_w;
    detector.save_state(det_w);
    data.detector_blob = det_w.take();
    ser::Writer gen_w;
    gen.save_state(gen_w);
    data.generator_blob = gen_w.take();
    s = save_checkpoint(cfg.checkpoint_dir, data);
    if (!s.ok()) throw std::runtime_error(s.message());
  };

  // Pausing early must not perturb batch sizing (batches derive from
  // num_tests), or the resumed schedule would diverge from an
  // uninterrupted run's.
  const std::size_t stop_at = cfg.stop_after_tests == 0
                                  ? cfg.num_tests
                                  : std::min(cfg.num_tests,
                                             cfg.stop_after_tests);
  std::size_t last_snapshot_tests = result.tests_run;

  // Pooled batch scratch: artifacts and fold vectors live for the whole
  // campaign and only ever grow, so after the first batch the engine
  // allocates nothing per test beyond what a test's own novelty requires.
  std::vector<TestArtifact> artifacts;
  std::vector<cov::TestCoverage> coverages;
  std::vector<std::uint64_t> ctrl_new;
  std::vector<std::uint32_t> new_bins;

  // Hot telemetry handles, resolved once (name lookups take a mutex).
  obs::Counter* const m_tests = obs::counter("campaign.tests");
  obs::Counter* const m_cycles = obs::counter("campaign.cycles");
  obs::Counter* const m_instrs = obs::counter("campaign.instrs");
  obs::Counter* const m_new_bins = obs::counter("campaign.new_bins");
  obs::Counter* const m_batches = obs::counter("campaign.batches");
  obs::Histo* const m_batch_new =
      obs::registry().histogram("campaign.batch_new_bins", 0.0, 4096.0, 64);

  while (result.tests_run < cfg.num_tests) {
    const std::size_t want =
        std::min(cfg.batch_size, cfg.num_tests - result.tests_run);
    std::vector<Program> batch;
    {
      OBS_SPAN("engine.generate");
      batch = gen.next_batch(want);
    }
    if (batch.empty()) break;  // generator exhausted; don't spin forever
    const std::size_t base = result.tests_run;

    if (artifacts.size() < batch.size()) artifacts.resize(batch.size());

    // Fold artifacts [lo, hi) of this batch in canonical test order:
    // identical arithmetic to a sequential run, including curve checkpoints
    // at exact test indices. Ranges must arrive ascending with no gaps —
    // the in-process path folds [0, batch) once after the join; the dist
    // path folds each contiguous lease span as it completes, overlapping
    // the coordinator's fold with the workers' simulation wall-clock.
    coverages.clear();
    ctrl_new.clear();
    coverages.reserve(batch.size());
    ctrl_new.reserve(batch.size());
    const auto fold_range = [&](std::size_t lo, std::size_t hi) {
      OBS_SPAN("engine.fold");
      for (std::size_t i = lo; i < hi; ++i) {
        const TestArtifact& art = artifacts[i];
        // Running covered counts: both reads are O(1) on the journaled DBs,
        // so the coordinator no longer rescans the bin universe per test.
        const std::size_t cond_before = db.total_covered();
        const std::size_t guide_before = guide ? guide->covered() : 0;
        // Coverage attribution for the corpus store: the condition bins
        // this test covers FIRST, taken before its delta lands in the DB.
        new_bins.clear();
        if (persist) {
          for (const cov::BinDelta& d : art.cond_bins) {
            if (!db.bin_covered(d.bin)) new_bins.push_back(d.bin);
          }
        }
        cov::apply_bins(db, art.cond_bins);
        if (use_suite) {
          for (std::size_t bin : art.toggle_bins) {
            suite.toggle().cover_bin(bin);
          }
          for (std::size_t bin : art.fsm_bins) suite.fsm().cover_bin(bin);
          for (std::size_t bin : art.stmt_bins) {
            suite.statement().cover_bin(bin);
          }
        }
        ctrl.begin_test();
        for (std::uint64_t s : art.ctrl_states) ctrl.observe(s);

        cov::TestCoverage tc;
        if (guide != nullptr) {
          // Guidance by the selected metric: the generator sees the
          // metric's stand-alone/incremental/total instead of condition
          // coverage.
          tc.standalone_bins = guide_test_bins(art, cfg.guidance).size();
          tc.total_bins = guide->covered();
          tc.incremental_bins = tc.total_bins - guide_before;
          tc.universe_bins = guide->universe();
        } else if (cfg.guidance == GuidanceMetric::kCtrlReg) {
          tc.standalone_bins = ctrl.test_new_states();
          tc.incremental_bins = tc.standalone_bins;
          tc.total_bins = ctrl.distinct_states();
          tc.universe_bins = 0;  // open universe: percentages undefined
        } else {
          tc.standalone_bins = art.cond_bins.size();
          tc.total_bins = db.total_covered();
          tc.incremental_bins = tc.total_bins - cond_before;
          tc.universe_bins = db.num_bins();
        }
        coverages.push_back(tc);
        ctrl_new.push_back(ctrl.test_new_states());
        result.total_cycles += art.cycles;
        result.total_instrs += art.steps;
        m_tests->inc();
        m_cycles->add(art.cycles);
        m_instrs->add(art.steps);
        m_new_bins->add(tc.incremental_bins);
        for (const mismatch::Mismatch& mm : art.report.mismatches) {
          obs::counter("campaign.mismatches.dut" +
                       std::to_string(mm.dut_index))
              ->inc();
        }
        if (cfg.mismatch_detection) detector.accumulate(art.report);
        // Archive tests that earned their keep. Appends happen in
        // canonical fold order from the coordinator's own copy of the
        // batch, so the store's bytes are worker-count- and
        // process-count-invariant too.
        if (persist &&
            (!new_bins.empty() || !art.report.mismatches.empty())) {
          corpus::StoreEntryMeta meta;
          meta.test_index = base + i;
          meta.standalone_bins =
              static_cast<std::uint32_t>(tc.standalone_bins);
          meta.incremental_bins =
              static_cast<std::uint32_t>(tc.incremental_bins);
          meta.mismatches =
              static_cast<std::uint32_t>(art.report.mismatches.size());
          meta.ctrl_new = ctrl.test_new_states();
          meta.new_bins = new_bins;  // copy: the scratch vector is pooled
          // Phase signature comes free while BBVs are collected: stats and
          // minimize can group archived tests by behavior without the
          // re-simulation pass (which stamps the finer per-recorder hash).
          if (collect_bbv) meta.phase_hash = riscv::bbv_phase_hash(art.bbv);
          const ser::Status s = store.append(batch[i], meta);
          if (!s.ok()) throw std::runtime_error(s.message());
        }
        if (collect_bbv) {
          bbv_log.push_back(BbvEntry{base + i, art.bbv});
        }
        ++result.tests_run;
        ++since_checkpoint;

        if (since_checkpoint >= cfg.checkpoint_every ||
            result.tests_run == cfg.num_tests) {
          since_checkpoint = 0;
          CampaignPoint pt;
          pt.tests = result.tests_run;
          pt.hours = static_cast<double>(result.tests_run) /
                     (cfg.tests_per_hour / gen.time_per_test_factor());
          pt.cond_cov_percent = db.total_percent();
          pt.ctrl_states = ctrl.distinct_states();
          result.curve.push_back(pt);
          if (hook) hook(pt);
        }
      }
    };

    if (use_dist) {
      // Fan the batch out across worker processes as leases; the
      // coordinator re-issues a lost worker's outstanding leases to the
      // survivors and never folds a lease twice. Artifacts land at their
      // canonical batch slots regardless of which process ran them, and
      // fold in canonical order as each contiguous lease span completes.
      coordinator->run_batch(batch, base, artifacts,
                             [&](std::size_t start, std::size_t count) {
                               fold_range(start, start + count);
                             });
    } else {
      // Simulate the batch across the thread pool (core/sim_worker.h owns
      // the claim/drain/first-exception machinery, shared with the dist
      // worker's lease loop), then fold it all at once.
      {
        OBS_SPAN("engine.sim_batch");
        run_span(workers, cfg, use_suite, batch.data(), batch.size(), base,
                 artifacts.data());
      }
      fold_range(0, batch.size());
    }

    {
      OBS_SPAN("engine.feedback");
      Feedback fb;
      fb.batch = &batch;
      fb.coverages = &coverages;
      fb.ctrl_new_states = &ctrl_new;
      fb.db = &db;
      gen.feedback(fb);
    }

    // Batch-boundary telemetry rollup: gauges derived from the canonical
    // result (reads only — nothing flows back), then an NDJSON snapshot if
    // the stats interval elapsed.
    m_batches->inc();
    {
      std::uint64_t batch_new = 0;
      for (const cov::TestCoverage& tc : coverages) {
        batch_new += tc.incremental_bins;
      }
      m_batch_new->add(static_cast<double>(batch_new));
    }
    if (stats_writer.is_open()) {
      const double el_s =
          static_cast<double>(obs::now_ns() - obs_start_ns) / 1e9;
      obs::gauge("campaign.cov_percent")->set(db.total_percent());
      obs::gauge("campaign.tests_per_sec")
          ->set(el_s > 0 ? static_cast<double>(m_tests->value()) / el_s : 0);
      obs::gauge("campaign.cycles_per_sec")
          ->set(el_s > 0 ? static_cast<double>(m_cycles->value()) / el_s : 0);
      obs::gauge("obs.spans_dropped")
          ->set(static_cast<double>(obs::trace_dropped_count()));
      std::vector<std::pair<std::string, double>> extras;
      if (use_dist) coordinator->fleet_metrics(&extras);
      stats_writer.maybe_write(extras);
    }

    // Batch boundary: the generator's feedback is absorbed, no test is in
    // flight and no lease is outstanding — the one consistent cut point for
    // snapshots and pauses (every batch boundary is a lease boundary).
    const bool done = result.tests_run >= cfg.num_tests;
    // A pause point is either the configured test budget or a graceful
    // drain (SIGTERM): both stop at this boundary, after the checkpoint.
    const bool pausing =
        !done && (result.tests_run >= stop_at || drain_requested());
    if (persist &&
        (done || pausing ||
         (cfg.checkpoint_every_tests != 0 &&
          result.tests_run - last_snapshot_tests >=
              cfg.checkpoint_every_tests))) {
      snapshot();
      last_snapshot_tests = result.tests_run;
    }
    if (pausing) {
      result.completed = false;
      break;
    }
  }

  if (collect_bbv) {
    // Non-persistent campaigns never hit snapshot(); persistent ones get a
    // final (identical) rewrite — write_file is atomic either way.
    const ser::Status s = save_bbv(cfg.bbv_path, bbv_log);
    if (!s.ok()) throw std::runtime_error(s.message());
  }

  result.final_cov_percent = db.total_percent();
  result.uncovered = cov::uncovered_points(db);
  if (use_suite) {
    result.toggle_percent = suite.toggle().percent();
    result.fsm_percent = suite.fsm().percent();
    result.statement_percent = suite.statement().percent();
  }
  result.hours = static_cast<double>(result.tests_run) /
                 (cfg.tests_per_hour / gen.time_per_test_factor());
  result.raw_mismatches = detector.total_raw();
  result.filtered_mismatches =
      detector.total_raw() - detector.total_post_filter();
  result.unique_mismatches = detector.unique_count();
  for (const mismatch::Finding f : detector.findings_seen()) {
    result.findings.insert(f);
  }

  if (stats_writer.is_open()) {
    const double el_s =
        static_cast<double>(obs::now_ns() - obs_start_ns) / 1e9;
    obs::gauge("campaign.cov_percent")->set(db.total_percent());
    obs::gauge("campaign.tests_per_sec")
        ->set(el_s > 0 ? static_cast<double>(m_tests->value()) / el_s : 0);
    obs::gauge("campaign.cycles_per_sec")
        ->set(el_s > 0 ? static_cast<double>(m_cycles->value()) / el_s : 0);
    obs::gauge("obs.spans_dropped")
        ->set(static_cast<double>(obs::trace_dropped_count()));
    std::vector<std::pair<std::string, double>> extras;
    extras.emplace_back("final", 1.0);
    if (use_dist) coordinator->fleet_metrics(&extras);
    stats_writer.finish(extras);
  }
  if (trace_session.active) {
    obs::trace_stop();
    trace_session.active = false;
    std::string err;
    if (!obs::write_chrome_trace(cfg.trace_path, &err)) {
      LOG_WARN("trace export failed: %s", err.c_str());
    }
  }
  return result;
}

}  // namespace

CampaignResult run_campaign(InputGenerator& gen, const CampaignConfig& cfg,
                            CheckpointHook hook) {
  return run_engine(gen, cfg, std::move(hook), nullptr);
}

CampaignResult resume_campaign(InputGenerator& gen, const std::string& dir,
                               const ResumeOptions& opts,
                               CheckpointHook hook) {
  CheckpointData data;
  const ser::Status s = load_checkpoint(dir, &data);
  if (!s.ok()) throw std::runtime_error(s.message());
  return resume_campaign(gen, dir, std::move(data), opts, std::move(hook));
}

CampaignResult resume_campaign(InputGenerator& gen, const std::string& dir,
                               CheckpointData data, const ResumeOptions& opts,
                               CheckpointHook hook) {
  if (data.fuzzer != gen.name()) {
    throw std::runtime_error("checkpoint in " + dir + " was written by \"" +
                             data.fuzzer + "\", cannot resume with \"" +
                             gen.name() + "\"");
  }
  ser::Reader gen_r(data.generator_blob);
  if (!gen.supports_snapshot() || !gen.restore_state(gen_r) ||
      !gen_r.done()) {
    throw std::runtime_error(
        "checkpoint generator state in " + dir +
        " does not restore into this generator configuration");
  }
  CampaignConfig cfg = data.cfg;
  cfg.checkpoint_dir = dir;  // continue persisting where we left off
  if (opts.num_workers != 0) cfg.num_workers = opts.num_workers;
  cfg.stop_after_tests = opts.stop_after_tests;
  cfg.dist = opts.dist;       // topology is per-run, never stored
  cfg.superblocks = opts.superblocks;  // dispatch engine likewise
  cfg.bbv_path = opts.bbv_path;        // persistence paths likewise
  cfg.trace_path = opts.trace_path;    // telemetry likewise
  cfg.stats_path = opts.stats_path;
  cfg.stats_every_ms = opts.stats_every_ms;
  return run_engine(gen, cfg, std::move(hook), &data);
}

ser::Status peek_checkpoint(const std::string& dir, std::string* fuzzer,
                            CampaignConfig* cfg) {
  CheckpointData data;
  ser::Status s = load_checkpoint(dir, &data);
  if (!s.ok()) return s;
  if (fuzzer != nullptr) *fuzzer = data.fuzzer;
  if (cfg != nullptr) *cfg = data.cfg;
  return {};
}

}  // namespace chatfuzz::core
