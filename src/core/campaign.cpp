#include "core/campaign.h"

#include "isasim/sim.h"
#include "rtlsim/core.h"

namespace chatfuzz::core {

double CampaignResult::hours_to(double percent) const {
  for (const CampaignPoint& p : curve) {
    if (p.cond_cov_percent >= percent) return p.hours;
  }
  return -1.0;
}

std::size_t CampaignResult::tests_to(double percent) const {
  for (const CampaignPoint& p : curve) {
    if (p.cond_cov_percent >= percent) return p.tests;
  }
  return 0;
}

const char* guidance_name(GuidanceMetric m) {
  switch (m) {
    case GuidanceMetric::kCondition: return "condition";
    case GuidanceMetric::kToggle: return "toggle";
    case GuidanceMetric::kStatement: return "statement";
    case GuidanceMetric::kFsm: return "fsm";
    case GuidanceMetric::kCtrlReg: return "ctrl-reg";
  }
  return "?";
}

namespace {

/// The guidance metric selected by the config, as the uniform Metric view
/// (null for condition/ctrl-reg, which have dedicated plumbing).
const cov::Metric* select_metric(const cov::MetricSuite& suite,
                                 GuidanceMetric g) {
  switch (g) {
    case GuidanceMetric::kToggle: return &suite.toggle();
    case GuidanceMetric::kStatement: return &suite.statement();
    case GuidanceMetric::kFsm: return &suite.fsm();
    default: return nullptr;
  }
}

}  // namespace

CampaignResult run_campaign(InputGenerator& gen, const CampaignConfig& cfg,
                            CheckpointHook hook) {
  cov::CoverageDB db;
  rtl::RtlCore dut(cfg.core, db, cfg.platform);
  sim::IsaSim golden(cfg.platform);
  cov::CoverageCalculator calc(db);
  mismatch::MismatchDetector detector;
  detector.install_default_filters();

  cov::MetricSuite suite;
  const bool use_suite = cfg.collect_multi_metrics ||
                         cfg.guidance == GuidanceMetric::kToggle ||
                         cfg.guidance == GuidanceMetric::kStatement ||
                         cfg.guidance == GuidanceMetric::kFsm;
  if (use_suite) dut.attach_metrics(&suite);
  const cov::Metric* guide = select_metric(suite, cfg.guidance);

  CampaignResult result;
  result.fuzzer = gen.name();

  std::size_t since_checkpoint = 0;
  while (result.tests_run < cfg.num_tests) {
    const std::size_t want =
        std::min(cfg.batch_size, cfg.num_tests - result.tests_run);
    const std::vector<Program> batch = gen.next_batch(want);

    std::vector<cov::TestCoverage> coverages;
    std::vector<std::uint64_t> ctrl_new;
    coverages.reserve(batch.size());
    ctrl_new.reserve(batch.size());

    for (const Program& test : batch) {
      calc.begin_test();
      dut.ctrl_cov().begin_test();
      if (use_suite) suite.begin_test();
      const std::size_t guide_before = guide ? guide->covered() : 0;
      dut.reset(test);
      const sim::RunResult dut_run = dut.run();
      if (guide != nullptr) {
        // Guidance by the selected metric: the generator sees the metric's
        // stand-alone/incremental/total instead of condition coverage.
        cov::TestCoverage tc;
        tc.standalone_bins = guide->test_covered();
        tc.total_bins = guide->covered();
        tc.incremental_bins = tc.total_bins - guide_before;
        tc.universe_bins = guide->universe();
        coverages.push_back(tc);
        (void)calc.end_test();
      } else if (cfg.guidance == GuidanceMetric::kCtrlReg) {
        cov::TestCoverage tc;
        tc.standalone_bins = dut.ctrl_cov().test_new_states();
        tc.incremental_bins = tc.standalone_bins;
        tc.total_bins = dut.ctrl_cov().distinct_states();
        tc.universe_bins = 0;  // open universe: percentages undefined
        coverages.push_back(tc);
        (void)calc.end_test();
      } else {
        coverages.push_back(calc.end_test());
      }
      ctrl_new.push_back(dut.ctrl_cov().test_new_states());
      result.total_cycles += dut.cycles();
      result.total_instrs += dut_run.steps;

      if (cfg.mismatch_detection) {
        golden.reset(test);
        const sim::RunResult gold_run = golden.run();
        const mismatch::Report rep =
            detector.compare(dut_run.trace, gold_run.trace);
        detector.accumulate(rep);
      }
      ++result.tests_run;
      ++since_checkpoint;

      if (since_checkpoint >= cfg.checkpoint_every ||
          result.tests_run == cfg.num_tests) {
        since_checkpoint = 0;
        CampaignPoint pt;
        pt.tests = result.tests_run;
        pt.hours = static_cast<double>(result.tests_run) /
                   (cfg.tests_per_hour / gen.time_per_test_factor());
        pt.cond_cov_percent = db.total_percent();
        pt.ctrl_states = dut.ctrl_cov().distinct_states();
        result.curve.push_back(pt);
        if (hook) hook(pt);
      }
    }

    Feedback fb;
    fb.batch = &batch;
    fb.coverages = &coverages;
    fb.ctrl_new_states = &ctrl_new;
    fb.db = &db;
    gen.feedback(fb);
  }

  result.final_cov_percent = db.total_percent();
  result.uncovered = cov::uncovered_points(db);
  if (use_suite) {
    result.toggle_percent = suite.toggle().percent();
    result.fsm_percent = suite.fsm().percent();
    result.statement_percent = suite.statement().percent();
  }
  result.hours = static_cast<double>(result.tests_run) /
                 (cfg.tests_per_hour / gen.time_per_test_factor());
  result.raw_mismatches = detector.total_raw();
  result.filtered_mismatches =
      detector.total_raw() - detector.total_post_filter();
  result.unique_mismatches = detector.unique_count();
  for (const mismatch::Finding f : detector.findings_seen()) {
    result.findings.insert(f);
  }
  return result;
}

}  // namespace chatfuzz::core
