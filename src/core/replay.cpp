#include "core/replay.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "isasim/sim.h"
#include "rtlsim/core.h"

namespace chatfuzz::core {

std::string corpus_to_text(const std::vector<Program>& tests) {
  std::string out = "# chatfuzz test corpus v1\n";
  char buf[32];
  for (std::size_t i = 0; i < tests.size(); ++i) {
    std::snprintf(buf, sizeof buf, "== test %zu\n", i);
    out += buf;
    for (std::uint32_t w : tests[i]) {
      std::snprintf(buf, sizeof buf, "%08x\n", w);
      out += buf;
    }
  }
  return out;
}

std::optional<std::vector<Program>> corpus_from_text(const std::string& text,
                                                     std::string* error) {
  std::vector<Program> tests;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("==", 0) == 0) {
      tests.emplace_back();
      continue;
    }
    if (tests.empty()) tests.emplace_back();
    char* end = nullptr;
    const unsigned long word = std::strtoul(line.c_str(), &end, 16);
    if (end == line.c_str() || (*end != '\0' && *end != '\r')) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": bad hex word";
      }
      return std::nullopt;
    }
    tests.back().push_back(static_cast<std::uint32_t>(word));
  }
  return tests;
}

CorpusParse corpus_from_text_lenient(const std::string& text) {
  CorpusParse out;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t block_no = 0;

  Program block;
  std::string block_text;   // the block's raw lines, for quarantine
  std::string block_error;  // first malformed word, empty = block is good
  bool have_block = false;

  const auto finish_block = [&] {
    if (!have_block) return;
    if (block_error.empty()) {
      out.tests.push_back(std::move(block));
    } else {
      ++out.bad_blocks;
      out.errors.push_back(block_error);
      out.quarantine += "# dropped: " + block_error + "\n";
      out.quarantine += block_text;
    }
    block.clear();
    block_text.clear();
    block_error.clear();
    have_block = false;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("==", 0) == 0) {
      finish_block();
      have_block = true;
      ++block_no;
      block_text = "== test " + std::to_string(block_no - 1) + "\n";
      continue;
    }
    if (!have_block) {
      // Headerless first block, same tolerance as the strict parser.
      have_block = true;
      ++block_no;
      block_text = "== test " + std::to_string(block_no - 1) + "\n";
    }
    block_text += line;
    block_text += '\n';
    if (!block_error.empty()) continue;  // already poisoned; keep collecting
    char* end = nullptr;
    const unsigned long word = std::strtoul(line.c_str(), &end, 16);
    if (end == line.c_str() || (*end != '\0' && *end != '\r')) {
      block_error = "test " + std::to_string(block_no - 1) + ", line " +
                    std::to_string(line_no) + ": bad hex word";
    } else {
      block.push_back(static_cast<std::uint32_t>(word));
    }
  }
  finish_block();
  return out;
}

bool save_corpus(const std::string& path, const std::vector<Program>& tests) {
  std::ofstream out(path);
  if (!out) return false;
  out << corpus_to_text(tests);
  return static_cast<bool>(out);
}

std::optional<std::vector<Program>> load_corpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return corpus_from_text(buf.str());
}

std::string render_mismatch_report(const mismatch::MismatchDetector& detector) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "mismatch summary: raw=%zu post-filter=%zu unique=%zu\n",
                detector.total_raw(), detector.total_post_filter(),
                detector.unique_count());
  out += buf;
  for (const auto& [sig, count] : detector.unique_signatures()) {
    std::snprintf(buf, sizeof buf, "  %6zu x %s\n", count, sig.c_str());
    out += buf;
  }
  out += "findings:\n";
  for (const mismatch::Finding f : detector.findings_seen()) {
    std::snprintf(buf, sizeof buf, "  - %s\n", mismatch::finding_name(f));
    out += buf;
  }
  return out;
}

mismatch::Report replay_test(const Program& test,
                             const rtl::CoreConfig& core_cfg,
                             const sim::Platform& platform) {
  cov::CoverageDB db;
  rtl::RtlCore dut(core_cfg, db, platform);
  sim::IsaSim golden(platform);
  dut.reset(test);
  golden.reset(test);
  const sim::RunResult dr = dut.run();
  const sim::RunResult gr = golden.run();
  mismatch::MismatchDetector detector;
  detector.install_default_filters();
  return detector.compare(dr.trace, gr.trace);
}

}  // namespace chatfuzz::core
