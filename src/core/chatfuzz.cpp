#include "core/chatfuzz.h"

#include "riscv/disasm.h"

namespace chatfuzz::core {

ChatFuzzGenerator::ChatFuzzGenerator(ChatFuzzConfig cfg)
    : cfg_(cfg),
      policy_(cfg.model, cfg.seed),
      ref_(cfg.model, cfg.seed),
      sampler_([&cfg] {
        ml::SampleConfig s = cfg.sample;
        s.max_new_tokens = cfg.gen_tokens;
        return s;
      }()),
      corpus_(corpus::CorpusConfig{}, cfg.seed + 1),
      rng_(cfg.seed + 2) {
  ref_.copy_params_from(policy_);
  ppo_ = std::make_unique<ml::PpoTrainer>(policy_, ref_, cfg_.ppo);
}

void ChatFuzzGenerator::train_offline() {
  // Stage 1: unsupervised pretraining on the machine-language corpus.
  const std::vector<corpus::Program> data = corpus_.dataset(cfg_.pretrain_samples);
  pretrain_stats_ = pretrain(policy_, data, cfg_.pretrain, rng_);
  // The reference for both PPO stages is the freshly pretrained model.
  ref_.copy_params_from(policy_);
  // Stage 2: disassembler-rewarded cleanup.
  CleanupConfig cc;
  cc.iters = cfg_.cleanup_iters;
  cc.prompt_min = cfg_.prompt_min;
  cc.prompt_max = cfg_.prompt_max;
  cc.ppo = cfg_.ppo;
  cc.sample = sampler_.config();
  cleanup_stats_ = cleanup_stage(policy_, ref_, corpus_, cc, rng_);
  // Stage 3 measures KL against the cleaned-up model.
  ref_.copy_params_from(policy_);
  ppo_ = std::make_unique<ml::PpoTrainer>(policy_, ref_, cfg_.ppo);
}

bool ChatFuzzGenerator::load_model(const std::string& path) {
  if (!policy_.load(path)) return false;
  ref_.copy_params_from(policy_);
  ppo_ = std::make_unique<ml::PpoTrainer>(policy_, ref_, cfg_.ppo);
  return true;
}

std::vector<Program> ChatFuzzGenerator::next_batch(std::size_t n) {
  std::vector<std::vector<int>> prompts;
  std::vector<Program> prompt_words;
  prompts.reserve(n);
  prompt_words.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto k =
        static_cast<unsigned>(rng_.range(cfg_.prompt_min, cfg_.prompt_max));
    corpus::Program p = corpus_.prompt(k);
    prompts.push_back(tok_.encode(p, /*with_bos=*/true));
    prompt_words.push_back(std::move(p));
  }
  pending_gens_ = sampler_.generate(policy_, prompts, rng_);
  pending_prompt_words_.clear();

  std::vector<Program> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < pending_gens_.size(); ++i) {
    Program test = prompt_words[i];
    const std::vector<std::uint32_t> cont = tok_.decode(pending_gens_[i].response);
    test.insert(test.end(), cont.begin(), cont.end());
    pending_prompt_words_.push_back(prompt_words[i].size());
    batch.push_back(std::move(test));
  }
  return batch;
}

void ChatFuzzGenerator::feedback(const Feedback& fb) {
  if (fb.coverages == nullptr || pending_gens_.empty()) return;
  const std::size_t n = std::min(pending_gens_.size(), fb.coverages->size());
  std::vector<double> rewards(pending_gens_.size(), 0.0);
  std::vector<std::vector<float>> dense(pending_gens_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const cov::TestCoverage& tc = (*fb.coverages)[i];
    double r = cfg_.w_incremental * static_cast<double>(tc.incremental_bins) +
               cfg_.w_standalone * static_cast<double>(tc.standalone_bins);
    if (tc.incremental_bins == 0) r -= cfg_.no_improvement_penalty;
    rewards[i] = r;
    // Keep the language clean (dense per-instruction validity shaping, scaled
    // down so coverage dominates once the language is mostly valid).
    dense[i] = per_token_validity_rewards(pending_gens_[i].response);
    const float v_scale = static_cast<float>(cfg_.invalid_penalty) / 5.f;
    for (float& x : dense[i]) x *= v_scale;
  }
  last_ppo_ = ppo_->update(pending_gens_, rewards, &dense);
  pending_gens_.clear();
}

}  // namespace chatfuzz::core
