#include "core/chatfuzz.h"

#include "riscv/disasm.h"

namespace chatfuzz::core {

ChatFuzzGenerator::ChatFuzzGenerator(ChatFuzzConfig cfg)
    : cfg_(cfg),
      policy_(cfg.model, cfg.seed),
      ref_(cfg.model, cfg.seed),
      sampler_([&cfg] {
        ml::SampleConfig s = cfg.sample;
        s.max_new_tokens = cfg.gen_tokens;
        return s;
      }()),
      corpus_(corpus::CorpusConfig{}, cfg.seed + 1),
      rng_(cfg.seed + 2) {
  ref_.copy_params_from(policy_);
  ppo_ = std::make_unique<ml::PpoTrainer>(policy_, ref_, cfg_.ppo);
}

void ChatFuzzGenerator::train_offline() {
  // Stage 1: unsupervised pretraining on the machine-language corpus.
  const std::vector<corpus::Program> data = corpus_.dataset(cfg_.pretrain_samples);
  pretrain_stats_ = pretrain(policy_, data, cfg_.pretrain, rng_);
  // The reference for both PPO stages is the freshly pretrained model.
  ref_.copy_params_from(policy_);
  // Stage 2: disassembler-rewarded cleanup.
  CleanupConfig cc;
  cc.iters = cfg_.cleanup_iters;
  cc.prompt_min = cfg_.prompt_min;
  cc.prompt_max = cfg_.prompt_max;
  cc.ppo = cfg_.ppo;
  cc.sample = sampler_.config();
  cleanup_stats_ = cleanup_stage(policy_, ref_, corpus_, cc, rng_);
  // Stage 3 measures KL against the cleaned-up model.
  ref_.copy_params_from(policy_);
  ppo_ = std::make_unique<ml::PpoTrainer>(policy_, ref_, cfg_.ppo);
}

ser::Status ChatFuzzGenerator::load_model(const std::string& path) {
  ser::Status s = policy_.load(path);
  if (!s.ok()) return s;
  ref_.copy_params_from(policy_);
  ppo_ = std::make_unique<ml::PpoTrainer>(policy_, ref_, cfg_.ppo);
  return s;
}

namespace {

void write_generation(ser::Writer& w, const ml::Generation& g) {
  std::vector<std::uint32_t> prompt(g.prompt.begin(), g.prompt.end());
  std::vector<std::uint32_t> response(g.response.begin(), g.response.end());
  w.vec_u32(prompt);
  w.vec_u32(response);
  w.vec_f32(g.response_logps);
}

bool read_generation(ser::Reader& r, ml::Generation& g) {
  const std::vector<std::uint32_t> prompt = r.vec_u32();
  const std::vector<std::uint32_t> response = r.vec_u32();
  g.response_logps = r.vec_f32();
  if (!r.ok()) return false;
  g.prompt.assign(prompt.begin(), prompt.end());
  g.response.assign(response.begin(), response.end());
  return true;
}

}  // namespace

void ChatFuzzGenerator::save_state(ser::Writer& w) const {
  policy_.save_state(w);
  ref_.save_state(w);
  ppo_->optimizer().save_state(w);
  corpus_.save_state(w);
  ser::write_rng(w, rng_);
  w.u64(pending_gens_.size());
  for (const ml::Generation& g : pending_gens_) write_generation(w, g);
  w.vec_size(pending_prompt_words_);
}

bool ChatFuzzGenerator::restore_state(ser::Reader& r) {
  if (!policy_.restore_state(r) || !ref_.restore_state(r)) return false;
  // The PPO trainer is rebuilt against the restored reference, then its
  // optimizer moments are restored on top (same num_params by construction).
  ppo_ = std::make_unique<ml::PpoTrainer>(policy_, ref_, cfg_.ppo);
  if (!ppo_->optimizer().restore_state(r)) return false;
  if (!corpus_.restore_state(r)) return false;
  if (!ser::read_rng(r, rng_)) return false;
  const std::uint64_t n = r.u64();
  // Each serialized generation is at least three 8-byte length prefixes; a
  // corrupt count larger than that bound must not turn into an allocation.
  if (!r.ok() || n > r.remaining() / 24) return false;
  std::vector<ml::Generation> gens(static_cast<std::size_t>(n));
  for (auto& g : gens) {
    if (!read_generation(r, g)) return false;
  }
  std::vector<std::size_t> prompt_words = r.vec_size();
  if (!r.ok()) return false;
  pending_gens_ = std::move(gens);
  pending_prompt_words_ = std::move(prompt_words);
  return true;
}

std::vector<Program> ChatFuzzGenerator::next_batch(std::size_t n) {
  std::vector<std::vector<int>> prompts;
  std::vector<Program> prompt_words;
  prompts.reserve(n);
  prompt_words.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto k =
        static_cast<unsigned>(rng_.range(cfg_.prompt_min, cfg_.prompt_max));
    corpus::Program p = corpus_.prompt(k);
    prompts.push_back(tok_.encode(p, /*with_bos=*/true));
    prompt_words.push_back(std::move(p));
  }
  pending_gens_ = sampler_.generate(policy_, prompts, rng_);
  pending_prompt_words_.clear();

  std::vector<Program> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < pending_gens_.size(); ++i) {
    Program test = prompt_words[i];
    const std::vector<std::uint32_t> cont = tok_.decode(pending_gens_[i].response);
    test.insert(test.end(), cont.begin(), cont.end());
    pending_prompt_words_.push_back(prompt_words[i].size());
    batch.push_back(std::move(test));
  }
  return batch;
}

void ChatFuzzGenerator::feedback(const Feedback& fb) {
  if (fb.coverages == nullptr || pending_gens_.empty()) return;
  const std::size_t n = std::min(pending_gens_.size(), fb.coverages->size());
  std::vector<double> rewards(pending_gens_.size(), 0.0);
  std::vector<std::vector<float>> dense(pending_gens_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const cov::TestCoverage& tc = (*fb.coverages)[i];
    double r = cfg_.w_incremental * static_cast<double>(tc.incremental_bins) +
               cfg_.w_standalone * static_cast<double>(tc.standalone_bins);
    if (tc.incremental_bins == 0) r -= cfg_.no_improvement_penalty;
    rewards[i] = r;
    // Keep the language clean (dense per-instruction validity shaping, scaled
    // down so coverage dominates once the language is mostly valid).
    dense[i] = per_token_validity_rewards(pending_gens_[i].response);
    const float v_scale = static_cast<float>(cfg_.invalid_penalty) / 5.f;
    for (float& x : dense[i]) x *= v_scale;
  }
  last_ppo_ = ppo_->update(pending_gens_, rewards, &dense);
  pending_gens_.clear();
}

}  // namespace chatfuzz::core
