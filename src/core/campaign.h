// Campaign runner: drives any InputGenerator through the full fuzzing loop
// of Fig. 1a — generate a batch, co-simulate each test on the DUT model and
// the golden model, compute the Coverage Calculator's per-test values, diff
// the traces through the Mismatch Detector, and feed coverage back to the
// generator. Produces the coverage-vs-tests/time curves and mismatch
// statistics every table and figure in §V is built from.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "core/generator.h"
#include "coverage/cover.h"
#include "coverage/merge.h"
#include "isasim/platform.h"
#include "mismatch/detect.h"
#include "rtlsim/config.h"

namespace chatfuzz::core {

/// Which coverage metric fills the Feedback the generator learns from. The
/// campaign always *reports* condition coverage (the paper's ground truth);
/// this selects the guidance signal, enabling the feedback-metric ablation
/// (condition vs. toggle vs. statement vs. FSM vs. control-register).
enum class GuidanceMetric { kCondition, kToggle, kStatement, kFsm, kCtrlReg };

const char* guidance_name(GuidanceMetric m);

/// Seeded wire-fault injection (consumed by dist::FaultyChannel): per-frame
/// probabilities of hostile-network events, in 1/1024 units. `seed` = 0
/// disables injection entirely; otherwise each peer channel draws its fault
/// decisions from an Rng forked from the campaign seed and the channel's
/// connection ordinal, so a given schedule is reproducible. The campaign
/// result must be bit-identical to a clean run under ANY schedule — that is
/// the property the `dist_fault` suite soaks. Tests/CI only.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Total injection budget across the whole campaign: once spent, every
  /// channel behaves cleanly, so a schedule always terminates instead of
  /// eroding the fleet forever.
  std::uint32_t max_faults = 32;
  std::uint32_t p_drop = 0;       // close the connection mid-frame
  std::uint32_t p_truncate = 0;   // deliver a partial frame, then close
  std::uint32_t p_corrupt = 0;    // flip one payload byte (CRC catches it)
  std::uint32_t p_wrong_crc = 0;  // byzantine: intact payload, forged CRC
  std::uint32_t p_duplicate = 0;  // deliver the frame twice
  std::uint32_t p_delay = 0;      // hold the frame a few ms
  std::uint32_t p_handshake = 0;  // fail the first exchange on a channel
  bool any() const {
    return seed != 0 && (p_drop | p_truncate | p_corrupt | p_wrong_crc |
                         p_duplicate | p_delay | p_handshake) != 0;
  }
};

/// Multi-process fan-out (src/dist/): the coordinator re-execs this binary
/// in a hidden worker mode, hands out fixed-size test-index ranges of every
/// batch as leases over a framed wire protocol, and folds the returned
/// per-test artifacts in canonical order — so the campaign output is
/// bit-identical to the in-process engine for any process count, worker
/// thread count and lease schedule. Scheduling only; never persisted in
/// checkpoints (a resumed campaign picks its own topology).
struct DistConfig {
  /// Worker processes. <= 1 runs the in-process engine (no processes are
  /// spawned); the coordinator itself only folds, it never simulates.
  std::size_t num_procs = 1;

  /// Tests per lease. 0 picks ceil(batch_size / (2 * num_procs)), clamped
  /// to [1, batch_size]: at least two leases per worker per batch, so a
  /// lost worker's outstanding work re-issues at useful granularity.
  std::size_t lease_tests = 0;

  /// Binary to re-exec for workers. Empty = /proc/self/exe (the normal
  /// case: any binary that routes a "worker <fd>" argv through
  /// dist::maybe_worker_main can be its own worker).
  std::string worker_exe;

  /// Kill a worker that has held leases without delivering a result for
  /// this long (hung-worker detection); its outstanding leases re-issue to
  /// survivors. 0 = wait forever (a dead worker is still detected
  /// immediately via EOF on its socket).
  std::uint32_t lease_timeout_ms = 0;

  // ---- TCP transport (multi-host fleets) ---------------------------------
  /// Non-empty "host:port" switches the coordinator from socketpairs to a
  /// TCP listener: num_procs local children are spawned with
  /// `worker --connect` pointing back at it (0 = none; wait for external
  /// dial-ins only), and remote `chatfuzz worker --connect <addr> --token`
  /// processes can join — or rejoin after a failure — at any time. Port 0
  /// binds an ephemeral port (see port_file).
  std::string listen;
  /// Shared secret for the protocol-v4 handshake: a worker whose hello
  /// carries a different token is rejected before any campaign state flows.
  /// Empty = no authentication (trusted links, e.g. socketpairs).
  std::string token;
  /// When set, the coordinator writes the actually-bound "host:port\n" here
  /// after listen() — how tests and scripts discover an ephemeral port.
  std::string port_file;
  /// Worker heartbeat period (0 = off). Heartbeats let the coordinator
  /// tell a DEAD/unreachable peer (silence) from a HUNG one (heartbeats
  /// flowing, leases never completing): the two are dropped through
  /// different timeouts and counted separately.
  std::uint32_t heartbeat_ms = 250;
  /// Silence window before a peer is declared dead. 0 = 8 * heartbeat_ms.
  std::uint32_t heartbeat_timeout_ms = 0;
  /// TCP only: when every peer has been lost, wait this long for a
  /// reconnect before failing the campaign (workers redial with capped
  /// exponential backoff, so a transient total outage heals itself).
  std::uint32_t reconnect_wait_ms = 10'000;

  // ---- fault injection (tests / CI only) ---------------------------------
  /// Wire-level fault injection on every coordinator<->worker channel.
  FaultPlan fault;
  /// SIGKILL worker `debug_kill_worker` once `debug_kill_after_results`
  /// lease results have been folded — the worker-kill determinism case.
  std::size_t debug_kill_worker = static_cast<std::size_t>(-1);
  std::size_t debug_kill_after_results = 0;
  /// Tell worker `debug_hang_worker` to stall forever on its first lease —
  /// the hung-worker (timeout + reassignment) case.
  std::size_t debug_hang_worker = static_cast<std::size_t>(-1);
};

struct CampaignConfig {
  std::size_t num_tests = 1800;   // paper's headline comparison point
  std::size_t batch_size = 32;
  std::size_t checkpoint_every = 100;  // tests between curve points
  rtl::CoreConfig core = rtl::CoreConfig::rocket();

  /// Multi-DUT differential mode (`fuzz --dut inorder,ooo`): every generated
  /// test runs once per config in this list against the same golden model,
  /// and the per-DUT coverage/mismatch contributions fold into one
  /// TestArtifact in list order — so multi-DUT campaign output is
  /// bit-identical for any workers × procs × resume topology, exactly like
  /// single-DUT output. Empty (the default) means {core}: the single-DUT
  /// campaign everything else in the repo runs. When non-empty, the first
  /// entry is the *primary* DUT (metrics suite, BBV collection, step totals,
  /// replay/minimize); `core` is ignored. Part of the campaign state:
  /// serialized into checkpoints, never overridden on resume (the coverage
  /// DB layout is the concatenation of every DUT's instrumentation).
  std::vector<rtl::CoreConfig> duts;

  sim::Platform platform{.max_steps = 512};
  bool mismatch_detection = true;
  GuidanceMetric guidance = GuidanceMetric::kCondition;
  /// Attach the toggle/FSM/statement suite even when guidance is condition
  /// coverage, so the result reports all metric percentages.
  bool collect_multi_metrics = false;

  /// Wall-clock scale model (DESIGN.md): the paper reports ~1.8K tests in
  /// ~52 min on ten VCS instances for both ChatFuzz and TheHuzz, i.e.
  /// ~2077 tests/hour; a generator's time_per_test_factor() scales this.
  double tests_per_hour = 2077.0;

  /// Simulation worker threads (the paper's "ten parallel VCS instances",
  /// for real this time). Each worker owns a private DUT model, golden
  /// model and coverage shard; every batch is split across the pool and the
  /// per-test results are folded back in canonical test order, so campaign
  /// output is bit-identical for ANY worker count — including 1, which runs
  /// inline on the calling thread. 0 means hardware concurrency.
  std::size_t num_workers = 1;

  /// Harness seed for per-test RNG streams (see Rng::fork): every stochastic
  /// per-test decision is keyed by campaign seed + global test index, never
  /// by thread identity, which is what keeps shuffled schedules bit-exact.
  std::uint64_t seed = 1;

  /// Give every test a distinct deterministic initial register file derived
  /// from `seed` + test index (instead of one fixed file for the whole
  /// campaign). Off by default to preserve the paper harness's behavior.
  bool randomize_regs = false;

  /// Superblock dispatch in both simulators (`fuzz --no-superblocks` turns
  /// it off). Purely a speed knob — every campaign artifact (report,
  /// coverage DB, mismatch DB, corpus store, BBV log) is bit-identical
  /// either way, which the determinism suite pins. Never serialized into
  /// checkpoints: like worker count it is per-run scheduling, and the
  /// span caches are derived state that must not enter snapshots.
  bool superblocks = true;

  /// When non-empty, record a per-test basic-block vector from the DUT's
  /// commit stream and write the log (core/bbv.h) here, folded in canonical
  /// test order and rewritten atomically at every snapshot point. Like
  /// checkpoint_dir this is a persistence path: never serialized into
  /// checkpoints ("-" means collect without writing — the dist worker mode).
  std::string bbv_path;

  // ---- persistence (checkpoint/resume) -------------------------------------
  /// When non-empty, the campaign becomes durable: interesting tests (new
  /// coverage or a mismatch) are archived to <dir>/corpus/ and the full
  /// campaign state is snapshotted to <dir>/campaign.ckpt, from which
  /// resume_campaign() continues bit-identically to an uninterrupted run.
  /// Requires a generator with supports_snapshot().
  std::string checkpoint_dir;

  /// Tests between state snapshots. Snapshots land on the first batch
  /// boundary at/after each multiple (the generator's feedback is per
  /// batch, so batch boundaries are the consistent cut points). 0 writes a
  /// snapshot only at campaign end.
  std::size_t checkpoint_every_tests = 0;

  /// Pause the campaign once this many tests have run (0 = run to
  /// num_tests): the engine finishes the in-flight batch, writes a
  /// checkpoint, and returns a partial result with completed=false.
  /// Batch sizing still follows num_tests, so a paused+resumed campaign
  /// replays the exact schedule of an uninterrupted one. This is the
  /// time-boxed-segment workflow and the resume-determinism test harness.
  std::size_t stop_after_tests = 0;

  /// Multi-process topology (`fuzz --procs`). Like num_workers this is pure
  /// scheduling: results are bit-identical whether a campaign runs in one
  /// process or across many.
  DistConfig dist;

  // ---- telemetry (src/obs/) ------------------------------------------------
  /// When non-empty, record scoped spans for the whole run and export them
  /// as Chrome trace_event JSON here (`fuzz --trace`). Observation-only and
  /// out-of-band by contract: every campaign artifact is byte-identical with
  /// tracing on or off (the `obs` suite pins this). Like bbv_path these are
  /// per-run output paths — never serialized into checkpoints, so enabling
  /// telemetry cannot perturb checkpoint bytes or config fingerprints.
  std::string trace_path;
  /// When non-empty, snapshot the obs metrics registry to this NDJSON file
  /// at batch boundaries (`fuzz --stats`), at most every stats_every_ms,
  /// plus one final line. Same out-of-band contract as trace_path.
  std::string stats_path;
  /// Minimum milliseconds between NDJSON snapshots (0 = every batch).
  std::uint64_t stats_every_ms = 1000;
};

/// The DUT configs a campaign actually simulates: `cfg.duts` when set,
/// otherwise the single-DUT list {cfg.core}. Every layer that must agree on
/// the coverage-DB layout (worker stacks, coordinator registrar, dist
/// workers, benches) builds its cores from this list in this order.
std::vector<rtl::CoreConfig> effective_duts(const CampaignConfig& cfg);

struct CampaignPoint {
  std::size_t tests = 0;
  double hours = 0.0;             // paper-equivalent wall-clock
  double cond_cov_percent = 0.0;  // cumulative condition coverage
  std::size_t ctrl_states = 0;    // DifuzzRTL-style metric, for reference
};

struct CampaignResult {
  std::string fuzzer;
  std::vector<CampaignPoint> curve;
  double final_cov_percent = 0.0;
  std::size_t tests_run = 0;
  double hours = 0.0;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_instrs = 0;

  /// Points with at least one uncovered bin at campaign end — the
  /// verification-engineer view of what remains.
  std::vector<cov::UncoveredPoint> uncovered;

  // Multi-metric rollup (populated when the metric suite was attached).
  double toggle_percent = 0.0;
  double fsm_percent = 0.0;
  double statement_percent = 0.0;

  // Mismatch statistics (§V-B).
  std::size_t raw_mismatches = 0;
  std::size_t filtered_mismatches = 0;
  std::size_t unique_mismatches = 0;
  std::set<mismatch::Finding> findings;

  /// False when the campaign paused at stop_after_tests instead of running
  /// to num_tests (the checkpoint written at the pause point resumes it).
  bool completed = true;

  /// First paper-equivalent hour at which the curve crossed `percent`
  /// condition coverage, or a negative value if it never did.
  double hours_to(double percent) const;
  /// First test count crossing `percent`, or 0 if never.
  std::size_t tests_to(double percent) const;
};

/// Optional per-checkpoint observer (benches print progressive rows).
using CheckpointHook = std::function<void(const CampaignPoint&)>;

/// Cooperative graceful drain. request_drain() is async-signal-safe (the
/// CLI's SIGTERM handler calls it); the engine notices at the next batch
/// boundary — which is always a lease boundary — writes a checkpoint when
/// persistence is on, tears the worker fleet down cleanly (no orphaned
/// processes), and returns with result.completed = false, exactly like a
/// stop_after_tests pause. A later resume continues bit-identically to an
/// uninterrupted run. The flag is process-wide; clear_drain() resets it
/// (run_campaign does NOT reset it on entry, so a drain requested between
/// campaigns still stops the next one immediately after its first batch).
void request_drain();
bool drain_requested();
void clear_drain();

CampaignResult run_campaign(InputGenerator& gen, const CampaignConfig& cfg,
                            CheckpointHook hook = nullptr);

/// Resume knobs that may legitimately differ from the interrupted run.
/// Worker count is scheduling, not semantics — resuming a 1-worker campaign
/// with 4 workers still reproduces its bytes exactly.
struct ResumeOptions {
  std::size_t num_workers = 0;      // 0 = value stored in the checkpoint
  std::size_t stop_after_tests = 0; // 0 = run to the stored num_tests
  /// Process topology for the resumed run. Checkpoints never store one
  /// (scheduling, not semantics), so the default resumes in-process.
  DistConfig dist;
  /// Superblock dispatch for the resumed run (scheduling, not semantics —
  /// never stored; results are bit-identical either way).
  bool superblocks = true;
  /// BBV log for the resumed run: persistence paths are per-run, like
  /// checkpoint_dir. The engine reloads this file and truncates it to the
  /// checkpoint's test count before appending, so a resumed campaign's log
  /// is bit-identical to an uninterrupted one's. Empty = don't collect.
  std::string bbv_path;
  /// Telemetry outputs for the resumed run — per-run observation paths,
  /// exactly like bbv_path (checkpoints never store them).
  std::string trace_path;
  std::string stats_path;
  std::uint64_t stats_every_ms = 1000;
};

/// Continue a campaign from <dir>/campaign.ckpt. `gen` must be a
/// same-configured instance of the generator the campaign started with
/// (validated by name); its state is restored from the checkpoint before
/// any batch is requested. Workers are reconstructed from scratch — their
/// per-test state is derived, not persisted. Throws std::runtime_error on a
/// missing/corrupt/mismatched checkpoint.
CampaignResult resume_campaign(InputGenerator& gen, const std::string& dir,
                               const ResumeOptions& opts = {},
                               CheckpointHook hook = nullptr);

/// Inspect a checkpoint without running: the stored generator kind and
/// campaign configuration (the CLI uses this to rebuild the right fuzzer).
ser::Status peek_checkpoint(const std::string& dir, std::string* fuzzer,
                            CampaignConfig* cfg);

}  // namespace chatfuzz::core
