// Common interface every fuzzer's input generator implements — ChatFuzz's
// LLM-based generator and the baselines (TheHuzz-style mutational,
// DifuzzRTL-style control-register-guided, random regression). The campaign
// runner drives any of them interchangeably, which is what lets one harness
// regenerate every comparison table in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coverage/cover.h"
#include "util/serialize.h"

namespace chatfuzz::core {

using Program = std::vector<std::uint32_t>;

/// Per-batch feedback delivered after simulation: the coverage calculator's
/// three values per test (§IV-B) plus the DifuzzRTL-style control-register
/// signal.
struct Feedback {
  const std::vector<Program>* batch = nullptr;
  const std::vector<cov::TestCoverage>* coverages = nullptr;
  const std::vector<std::uint64_t>* ctrl_new_states = nullptr;
  /// Campaign coverage DB (read-only): lets hybrid generators enumerate the
  /// uncovered points, the way HyPFuzz queries its formal tool. May be null
  /// when the harness has no DB (e.g. pure training loops).
  const cov::CoverageDB* db = nullptr;
};

class InputGenerator {
 public:
  virtual ~InputGenerator() = default;

  virtual std::string name() const = 0;

  /// Produce the next batch of test inputs.
  virtual std::vector<Program> next_batch(std::size_t n) = 0;

  /// Coverage feedback for the batch most recently returned by next_batch().
  virtual void feedback(const Feedback& fb) { (void)fb; }

  /// Relative wall-clock cost per test vs. TheHuzz/ChatFuzz (the paper
  /// reports those two as equal-overhead and DifuzzRTL ~3.33x slower).
  virtual double time_per_test_factor() const { return 1.0; }

  // ---- checkpoint/resume ----------------------------------------------------
  /// Whether this generator can snapshot its full stochastic state. The
  /// campaign engine refuses to checkpoint with a generator that cannot —
  /// a resume that silently re-rolled the generator would break the
  /// bit-identical-to-uninterrupted guarantee.
  virtual bool supports_snapshot() const { return false; }
  /// Serialize the complete generation state (RNG streams, corpus, model
  /// weights, optimizer moments, ...). Only called when supports_snapshot().
  virtual void save_state(ser::Writer& w) const { (void)w; }
  /// Restore state saved by save_state() on a same-configured instance.
  /// Returns false (leaving the generator unusable-but-valid) on malformed
  /// or mismatched input.
  virtual bool restore_state(ser::Reader& r) {
    (void)r;
    return false;
  }
};

}  // namespace chatfuzz::core
