// The per-worker simulation stack of the campaign engine, factored out of
// campaign.cpp so that both execution backends share one definition of "run
// one test and record what it contributed":
//
//   * the in-process thread pool (core/campaign.cpp), where a SimStack is a
//     worker thread's private models, and
//   * the multi-process subsystem (src/dist/), where a worker *process*
//     owns a pool of SimStacks and streams TestArtifacts back to the
//     coordinator over the wire.
//
// Everything here preserves the engine's determinism contract: a
// TestArtifact depends only on (program, campaign seed, global test index)
// plus, for the ctrl-reg recorder, the set of states the same stack
// reported for *lower-indexed* tests — which is why any scheduler driving
// run_one() must hand each stack its tests in increasing global order (the
// thread pools claim through a shared counter; the dist worker resets the
// dedup set at every lease boundary, see dist/worker.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/campaign.h"
#include "coverage/merge.h"
#include "coverage/multi.h"
#include "isasim/sim.h"
#include "mismatch/detect.h"
#include "mismatch/lockstep.h"
#include "rtlsim/core.h"
#include "rtlsim/dut.h"

namespace chatfuzz::core {

/// Everything one simulated test contributes to campaign state. Artifacts
/// are pooled: the engine keeps one per batch slot alive for the whole
/// campaign, and begin() re-arms it without giving back vector capacity, so
/// the steady-state batch loop performs no per-test allocation.
struct TestArtifact {
  std::vector<cov::BinDelta> cond_bins;     // condition-coverage slice
  std::vector<std::uint64_t> ctrl_states;   // ctrl states new to the worker
  std::vector<std::size_t> toggle_bins, fsm_bins, stmt_bins;
  std::uint64_t cycles = 0;
  std::uint64_t steps = 0;
  mismatch::Report report;                  // per-test commit-stream diff
  /// Basic-block vector from the DUT's commit stream, (start pc, count) in
  /// per-test discovery order. Populated only when the campaign collects
  /// BBVs (CampaignConfig::bbv_path non-empty); empty otherwise.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> bbv;

  void begin() {
    cond_bins.clear();
    ctrl_states.clear();
    toggle_bins.clear();
    fsm_bins.clear();
    stmt_bins.clear();
    cycles = 0;
    steps = 0;
    report.mismatches.clear();
    report.raw_count = 0;
    report.filtered_count = 0;
    bbv.clear();
  }
};

/// One worker's private simulation stack, reused across batches. The ctrl
/// coverage set inside `dut` deliberately accumulates: a stack only reports
/// states it has not reported before, and as long as the stack's tests
/// arrive in increasing global order, the canonical-order replay on the
/// coordinator sees every state at exactly the first test a sequential run
/// would. Schedulers that cannot keep that order monotone across work units
/// (lease reassignment in dist mode) reset the set at unit boundaries —
/// over-reporting is folded out by the coordinator, under-reporting is not.
struct SimStack {
  SimStack(const CampaignConfig& cfg, bool use_suite);

  cov::CoverageDB db;        // per-test shard (reset before every test)
  cov::MetricSuite suite;
  /// The campaign's DUT backends, in effective_duts() order — all registered
  /// into the one shard `db`, so the shard layout is the concatenation of
  /// every backend's instrumentation (and matches the coordinator's
  /// registrar DB, built from the same list). Single-DUT campaigns hold one
  /// entry here.
  std::vector<std::unique_ptr<rtl::DutCore>> duts;
  /// Non-owning alias of duts[0]: the primary DUT (metrics suite, BBV,
  /// step totals — and the only DUT of a classic single-DUT campaign).
  rtl::DutCore* dut = nullptr;
  std::unique_ptr<sim::IsaSim> golden;
  mismatch::MismatchDetector detector;  // filter rules only; the campaign-
                                        // wide tally lives on the coordinator
  mismatch::LockstepComparator comparator;
  sim::DiscardSink discard;
  riscv::BbvRecorder bbv;  // attached to the DUT while the campaign collects
};

/// Whether this configuration attaches the toggle/FSM/statement suite.
bool campaign_uses_metric_suite(const CampaignConfig& cfg);

/// The guidance metric selected by the config, as the uniform Metric view
/// (null for condition/ctrl-reg, which have dedicated plumbing).
const cov::Metric* select_guidance_metric(const cov::MetricSuite& suite,
                                          GuidanceMetric g);

/// The selected guidance metric's per-test bins within an artifact.
const std::vector<std::size_t>& guide_test_bins(const TestArtifact& art,
                                                GuidanceMetric g);

/// Simulate one test, streaming. The DUT's commit stream feeds the lockstep
/// comparator (which pulls the golden model one instruction at a time and
/// stops it as soon as the comparison is decided) or a discard sink when
/// mismatch detection is off — no trace is materialized on either side, and
/// every coverage sweep runs over this test's dirty-bin journals, not the
/// whole instrumentation layout.
void run_one(SimStack& w, const CampaignConfig& cfg, bool use_suite,
             const Program& test, std::uint64_t test_index, TestArtifact& out);

/// Simulate `tests[0..count)` (global indices base_index + i) across the
/// stack pool into `artifacts[0..count)`. Threads claim tests through a
/// shared counter, so each stack's tests are in increasing global order —
/// the ctrl-recorder invariant both engines rely on. The first exception
/// thrown on any thread is rethrown here after the join (a throw must
/// neither vanish via std::terminate nor leave joinable threads behind).
/// Shared by the in-process batch engine and the dist worker's lease loop.
void run_span(std::vector<std::unique_ptr<SimStack>>& stacks,
              const CampaignConfig& cfg, bool use_suite, const Program* tests,
              std::size_t count, std::uint64_t base_index,
              TestArtifact* artifacts);

}  // namespace chatfuzz::core
