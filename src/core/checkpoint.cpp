#include "core/checkpoint.h"

#include <filesystem>

namespace chatfuzz::core {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x43465A4B;  // "CFZK"
// v2: CoreConfig::deferred_select_chains joined the config record (it had
// been silently defaulting on restore since it was introduced).
// v3: the three privileged/Sv39 bug injections (wrong_delegation,
// skip_perm_check, stale_tlb) joined the BugInjections record.
// v4: the out-of-order backend fields (out_of_order, rob_size, phys_regs,
// sq_size, fetch_width) and its three bug injections joined the config
// record, and the campaign config gained the multi-DUT list (duts). Older
// checkpoints are rejected by read_file's version check: their coverage
// blobs predate the per-DUT DB layout, so silently defaulting the new
// fields could restore against the wrong instrumentation.
constexpr std::uint32_t kCheckpointVersion = 4;

void write_core_config(ser::Writer& w, const rtl::CoreConfig& c) {
  w.str(c.name);
  w.u32(c.icache_sets);
  w.u32(c.icache_ways);
  w.u32(c.icache_line);
  w.u32(c.dcache_sets);
  w.u32(c.dcache_ways);
  w.u32(c.dcache_line);
  w.u32(c.btb_entries);
  w.u32(c.miss_penalty);
  w.u32(c.div_latency);
  w.u32(c.mispredict_penalty);
  w.boolean(c.superscalar);
  w.u32(c.cross_depth);
  w.boolean(c.deferred_select_chains);
  w.boolean(c.out_of_order);
  w.u32(c.rob_size);
  w.u32(c.phys_regs);
  w.u32(c.sq_size);
  w.u32(c.fetch_width);
  w.boolean(c.bugs.stale_icache);
  w.boolean(c.bugs.tracer_drops_muldiv);
  w.boolean(c.bugs.fault_priority_swap);
  w.boolean(c.bugs.amo_x0_trace);
  w.boolean(c.bugs.x0_link_trace);
  w.boolean(c.bugs.wrong_delegation);
  w.boolean(c.bugs.skip_perm_check);
  w.boolean(c.bugs.stale_tlb);
  w.boolean(c.bugs.ooo_broken_fwd);
  w.boolean(c.bugs.ooo_early_store_drain);
  w.boolean(c.bugs.ooo_missing_squash);
}

void read_core_config(ser::Reader& r, rtl::CoreConfig& c) {
  c.name = r.str();
  c.icache_sets = r.u32();
  c.icache_ways = r.u32();
  c.icache_line = r.u32();
  c.dcache_sets = r.u32();
  c.dcache_ways = r.u32();
  c.dcache_line = r.u32();
  c.btb_entries = r.u32();
  c.miss_penalty = r.u32();
  c.div_latency = r.u32();
  c.mispredict_penalty = r.u32();
  c.superscalar = r.boolean();
  c.cross_depth = r.u32();
  c.deferred_select_chains = r.boolean();
  c.out_of_order = r.boolean();
  c.rob_size = r.u32();
  c.phys_regs = r.u32();
  c.sq_size = r.u32();
  c.fetch_width = r.u32();
  c.bugs.stale_icache = r.boolean();
  c.bugs.tracer_drops_muldiv = r.boolean();
  c.bugs.fault_priority_swap = r.boolean();
  c.bugs.amo_x0_trace = r.boolean();
  c.bugs.x0_link_trace = r.boolean();
  c.bugs.wrong_delegation = r.boolean();
  c.bugs.skip_perm_check = r.boolean();
  c.bugs.stale_tlb = r.boolean();
  c.bugs.ooo_broken_fwd = r.boolean();
  c.bugs.ooo_early_store_drain = r.boolean();
  c.bugs.ooo_missing_squash = r.boolean();
}

}  // namespace

void write_campaign_config(ser::Writer& w, const CampaignConfig& cfg) {
  w.u64(cfg.num_tests);
  w.u64(cfg.batch_size);
  w.u64(cfg.checkpoint_every);
  write_core_config(w, cfg.core);
  // Multi-DUT list (v4). Part of the campaign state like `core`: the
  // coverage blob's layout is the concatenation of these backends'
  // instrumentation, so resume must rebuild exactly this list.
  w.u64(cfg.duts.size());
  for (const rtl::CoreConfig& c : cfg.duts) write_core_config(w, c);
  w.u64(cfg.platform.ram_base);
  w.u64(cfg.platform.ram_size);
  w.u64(cfg.platform.max_steps);
  w.u64(cfg.platform.reg_seed);
  w.boolean(cfg.platform.clint_enabled);
  w.u64(cfg.platform.clint_base);
  w.boolean(cfg.mismatch_detection);
  w.u32(static_cast<std::uint32_t>(cfg.guidance));
  w.boolean(cfg.collect_multi_metrics);
  w.f64(cfg.tests_per_hour);
  w.u64(cfg.num_workers);
  w.u64(cfg.seed);
  w.boolean(cfg.randomize_regs);
  w.u64(cfg.checkpoint_every_tests);
}

bool read_campaign_config(ser::Reader& r, CampaignConfig& cfg) {
  cfg.num_tests = static_cast<std::size_t>(r.u64());
  cfg.batch_size = static_cast<std::size_t>(r.u64());
  cfg.checkpoint_every = static_cast<std::size_t>(r.u64());
  read_core_config(r, cfg.core);
  const std::uint64_t n_duts = r.u64();
  // Each serialized core config is >= 60 payload bytes; reject counts the
  // payload cannot hold before reserving.
  if (!r.ok() || n_duts > r.remaining() / 60) {
    r.fail();
    return false;
  }
  cfg.duts.clear();
  cfg.duts.reserve(static_cast<std::size_t>(n_duts));
  for (std::uint64_t i = 0; i < n_duts; ++i) {
    rtl::CoreConfig c;
    read_core_config(r, c);
    cfg.duts.push_back(std::move(c));
  }
  cfg.platform.ram_base = r.u64();
  cfg.platform.ram_size = r.u64();
  cfg.platform.max_steps = r.u64();
  cfg.platform.reg_seed = r.u64();
  cfg.platform.clint_enabled = r.boolean();
  cfg.platform.clint_base = r.u64();
  cfg.mismatch_detection = r.boolean();
  const std::uint32_t guidance = r.u32();
  if (guidance > static_cast<std::uint32_t>(GuidanceMetric::kCtrlReg)) {
    r.fail();
    return false;
  }
  cfg.guidance = static_cast<GuidanceMetric>(guidance);
  cfg.collect_multi_metrics = r.boolean();
  cfg.tests_per_hour = r.f64();
  cfg.num_workers = static_cast<std::size_t>(r.u64());
  cfg.seed = r.u64();
  cfg.randomize_regs = r.boolean();
  cfg.checkpoint_every_tests = static_cast<std::size_t>(r.u64());
  return r.ok();
}

std::string checkpoint_path(const std::string& dir) {
  return dir + "/campaign.ckpt";
}

ser::Status save_checkpoint(const std::string& dir,
                            const CheckpointData& data) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return ser::Status::error("cannot create checkpoint directory " + dir +
                              ": " + ec.message());
  }
  ser::Writer w;
  write_campaign_config(w, data.cfg);
  w.str(data.fuzzer);
  w.u64(data.curve.size());
  for (const CampaignPoint& p : data.curve) {
    w.u64(p.tests);
    w.f64(p.hours);
    w.f64(p.cond_cov_percent);
    w.u64(p.ctrl_states);
  }
  w.u64(data.tests_run);
  w.u64(data.total_cycles);
  w.u64(data.total_instrs);
  w.u64(data.since_checkpoint);
  w.u64(data.corpus_entries);
  w.str(data.coverage_blob);
  w.str(data.detector_blob);
  w.str(data.generator_blob);
  return ser::write_file(checkpoint_path(dir), kCheckpointMagic,
                         kCheckpointVersion, w.buffer());
}

ser::Status load_checkpoint(const std::string& dir, CheckpointData* data) {
  const std::string path = checkpoint_path(dir);
  std::string payload;
  ser::Status s = ser::read_file(path, kCheckpointMagic, kCheckpointVersion,
                                 "campaign checkpoint", &payload);
  if (!s.ok()) return s;
  ser::Reader r(payload);
  CheckpointData d;
  if (!read_campaign_config(r, d.cfg)) {
    return ser::Status::error(path + ": malformed campaign configuration");
  }
  d.fuzzer = r.str();
  const std::uint64_t n_points = r.u64();
  if (!r.ok() || n_points > r.remaining() / 32) {
    return ser::Status::error(path + ": malformed coverage curve");
  }
  d.curve.reserve(static_cast<std::size_t>(n_points));
  for (std::uint64_t i = 0; i < n_points; ++i) {
    CampaignPoint p;
    p.tests = static_cast<std::size_t>(r.u64());
    p.hours = r.f64();
    p.cond_cov_percent = r.f64();
    p.ctrl_states = static_cast<std::size_t>(r.u64());
    d.curve.push_back(p);
  }
  d.tests_run = r.u64();
  d.total_cycles = r.u64();
  d.total_instrs = r.u64();
  d.since_checkpoint = r.u64();
  d.corpus_entries = r.u64();
  d.coverage_blob = r.str();
  d.detector_blob = r.str();
  d.generator_blob = r.str();
  if (!r.done()) {
    return ser::Status::error(path + ": checkpoint payload is truncated or "
                                     "carries trailing garbage");
  }
  *data = std::move(d);
  return {};
}

}  // namespace chatfuzz::core
