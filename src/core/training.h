// The paper's three-step training pipeline (§III-B / §IV-C):
//   stage 1 — unsupervised next-token pretraining on the machine-language
//             corpus (learn the CPU's "language");
//   stage 2 — PPO "model language cleanup" with the *disassembler* as the
//             deterministic reward agent (Eq. 1: f = N_i - 5 * Invalid_i);
//   stage 3 — PPO "model optimization" with coverage-based rewards, run
//             online inside the fuzzing loop (see ChatFuzzGenerator).
#pragma once

#include <cstdint>
#include <vector>

#include "corpus/generator.h"
#include "ml/gpt.h"
#include "ml/ppo.h"
#include "ml/sampler.h"
#include "util/rng.h"

namespace chatfuzz::core {

// ---- Stage 1 ---------------------------------------------------------------
struct PretrainConfig {
  int epochs = 2;
  int batch = 16;
  int seq_len = 96;
  float lr = 3e-4f;
  /// Learning-rate schedule: linear warmup for `warmup_steps`, then constant
  /// or cosine decay to `min_lr_frac * lr` over the full run.
  int warmup_steps = 0;
  bool cosine = false;
  float min_lr_frac = 0.1f;
  /// Intra-batch kernel worker threads for the matmul forward/backward
  /// passes (ml/kernels.h). 0 = leave the process-wide setting alone
  /// (CHATFUZZ_ML_THREADS, default 1). Results are bit-identical for any
  /// value; only wall clock moves.
  int ml_threads = 0;
};

struct PretrainEpochStats {
  float mean_loss = 0.f;
  std::size_t steps = 0;
};

/// Next-token pretraining over a dataset of machine-code samples.
/// Samples are tokenized (BOS ... EOS), concatenated and chunked.
std::vector<PretrainEpochStats> pretrain(ml::Gpt& model,
                                         const std::vector<corpus::Program>& data,
                                         const PretrainConfig& cfg, Rng& rng);

// ---- Stage 2 ---------------------------------------------------------------
struct CleanupConfig {
  int iters = 30;          // the paper trains 30 epochs
  int batch = 16;
  unsigned prompt_min = 2;  // rollouts start from 2-5 dataset instructions
  unsigned prompt_max = 5;
  ml::PpoConfig ppo;
  ml::SampleConfig sample;
  /// See PretrainConfig::ml_threads.
  int ml_threads = 0;
};

struct CleanupIterStats {
  float mean_reward = 0.f;   // Eq. 1 reward
  float invalid_rate = 0.f;  // invalid instructions / generated instructions
  float mean_kl = 0.f;
  float value_loss = 0.f;
};

/// PPO refinement with the disassembler as reward agent. `reference` is the
/// frozen stage-1 model.
std::vector<CleanupIterStats> cleanup_stage(ml::Gpt& policy,
                                            const ml::Gpt& reference,
                                            corpus::CorpusGenerator& corpus,
                                            const CleanupConfig& cfg, Rng& rng);

/// Eq. 1 of the paper applied to a generation's decoded response.
double disasm_reward(const std::vector<std::uint32_t>& decoded);

/// Dense per-token decomposition of Eq. 1: the reward of each instruction
/// (+1 valid, -5 invalid) is attributed to the token that completes it.
/// Summing the vector reproduces disasm_reward() up to the empty-generation
/// penalty; dense attribution lets small-scale PPO converge in few batches.
std::vector<float> per_token_validity_rewards(const std::vector<int>& response);

}  // namespace chatfuzz::core
