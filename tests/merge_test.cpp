// Coverage-merge algebra: sharded campaigns are only correct if merging
// per-worker coverage is associative and commutative — any reduction tree
// over any worker order must land on the same cumulative coverage. These
// tests pin that down for whole-DB merges (merge_into), parsed-report
// merges (merge_reports), and the sparse per-test slices (extract_bins /
// apply_bins) the parallel campaign engine ships between threads.
#include <gtest/gtest.h>

#include <algorithm>

#include "coverage/cover.h"
#include "coverage/merge.h"
#include "util/rng.h"

namespace chatfuzz::cov {
namespace {

// A small DB with a fixed point layout and pseudo-random hit counts.
CoverageDB make_db(std::uint64_t seed, std::size_t points = 12) {
  CoverageDB db;
  for (std::size_t i = 0; i < points; ++i) {
    db.register_cond("p" + std::to_string(i));
  }
  chatfuzz::Rng rng(seed);
  for (std::size_t i = 0; i < points; ++i) {
    const auto id = static_cast<PointId>(i);
    // Leave some bins empty so covered-ness (not just counts) is exercised.
    if (rng.chance(0.7)) db.add_hits(id, true, rng.below(5) + 1);
    if (rng.chance(0.7)) db.add_hits(id, false, rng.below(5) + 1);
  }
  return db;
}

std::vector<std::uint64_t> all_hits(const CoverageDB& db) {
  std::vector<std::uint64_t> out;
  for (std::size_t b = 0; b < db.num_bins(); ++b) out.push_back(db.bin_hits(b));
  return out;
}

TEST(Merge, MergeIntoIsCommutative) {
  CoverageDB ab = make_db(1);
  ASSERT_TRUE(merge_into(ab, make_db(2)));

  CoverageDB ba = make_db(2);
  ASSERT_TRUE(merge_into(ba, make_db(1)));

  EXPECT_EQ(all_hits(ab), all_hits(ba));
  EXPECT_EQ(ab.total_covered(), ba.total_covered());
}

TEST(Merge, MergeIntoIsAssociative) {
  // (A u B) u C
  CoverageDB left = make_db(1);
  ASSERT_TRUE(merge_into(left, make_db(2)));
  ASSERT_TRUE(merge_into(left, make_db(3)));

  // A u (B u C)
  CoverageDB bc = make_db(2);
  ASSERT_TRUE(merge_into(bc, make_db(3)));
  CoverageDB right = make_db(1);
  ASSERT_TRUE(merge_into(right, bc));

  EXPECT_EQ(all_hits(left), all_hits(right));
}

TEST(Merge, EveryWorkerOrderingYieldsTheSameCumulativeCoverage) {
  std::vector<std::size_t> order = {0, 1, 2, 3};
  std::vector<std::uint64_t> reference;
  do {
    CoverageDB acc = make_db(100 + order[0]);
    for (std::size_t i = 1; i < order.size(); ++i) {
      ASSERT_TRUE(merge_into(acc, make_db(100 + order[i])));
    }
    if (reference.empty()) {
      reference = all_hits(acc);
    } else {
      EXPECT_EQ(all_hits(acc), reference);
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Merge, MismatchedLayoutsAreRejectedAndDstUntouched) {
  CoverageDB a = make_db(1, 4);
  const std::vector<std::uint64_t> before = all_hits(a);
  EXPECT_FALSE(merge_into(a, make_db(2, 5)));  // different point count
  EXPECT_EQ(all_hits(a), before);

  CoverageDB renamed;
  renamed.register_cond("p0");
  renamed.register_cond("other");
  renamed.register_cond("p2");
  renamed.register_cond("p3");
  EXPECT_FALSE(merge_into(a, renamed));  // same count, different names
  EXPECT_EQ(all_hits(a), before);
}

TEST(Merge, SparseSliceRoundTripsExactly) {
  const CoverageDB src = make_db(7);
  const std::vector<BinDelta> slice = extract_bins(src);
  for (const BinDelta& d : slice) EXPECT_NE(d.hits, 0u);  // sparse: no zeros

  CoverageDB dst = make_db(7, 12);
  dst.reset_hits();
  apply_bins(dst, slice);
  EXPECT_EQ(all_hits(dst), all_hits(src));
}

TEST(Merge, ApplyingSlicesInAnyGroupingMatchesWholeDbMerges) {
  // Worker view: three per-test slices applied one by one...
  CoverageDB folded = make_db(1, 12);
  folded.reset_hits();
  apply_bins(folded, extract_bins(make_db(21)));
  apply_bins(folded, extract_bins(make_db(22)));
  apply_bins(folded, extract_bins(make_db(23)));

  // ...must equal the tree-reduced whole-DB union of the same tests.
  CoverageDB tree = make_db(21);
  CoverageDB rhs = make_db(22);
  ASSERT_TRUE(merge_into(rhs, make_db(23)));
  ASSERT_TRUE(merge_into(tree, rhs));

  EXPECT_EQ(all_hits(folded), all_hits(tree));
}

TEST(Merge, MergeReportsIsOrderInsensitive) {
  const auto ra = parse_report(write_report(make_db(31)));
  const auto rb = parse_report(write_report(make_db(32)));
  const auto rc = parse_report(write_report(make_db(33)));

  const auto abc = merge_reports({ra, rb, rc});
  const auto cba = merge_reports({rc, rb, ra});
  ASSERT_EQ(abc.size(), cba.size());
  for (std::size_t i = 0; i < abc.size(); ++i) {
    EXPECT_EQ(abc[i].name, cba[i].name);
    EXPECT_EQ(abc[i].true_hits, cba[i].true_hits);
    EXPECT_EQ(abc[i].false_hits, cba[i].false_hits);
  }
}

}  // namespace
}  // namespace chatfuzz::cov
