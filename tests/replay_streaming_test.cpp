// Replay and minimize must be sink-agnostic: a campaign that ran through
// the streaming lockstep comparator (the PR-4 hot path, traces never
// materialized) archives the same tests a materialized-trace campaign
// would, and the offline tools — core::replay_test (two full traces +
// MismatchDetector::compare) and mismatch::minimize — must reproduce
// byte-identical reports and signatures for them. Otherwise a bug found by
// a streaming campaign could fail to reproduce in the engineer's replay
// workflow, which is the one property that makes the corpus actionable.
#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "core/replay.h"
#include "corpus/store.h"
#include "coverage/cover.h"
#include "isasim/sim.h"
#include "mismatch/detect.h"
#include "mismatch/lockstep.h"
#include "mismatch/minimize.h"
#include "rtlsim/core.h"

namespace chatfuzz {
namespace {

const sim::Platform kPlatform{.max_steps = 256};

/// The streaming pipeline exactly as the campaign engine runs it: lockstep
/// comparator as the DUT's sink, golden stepped on demand, no traces.
mismatch::Report streaming_report(const core::Program& test,
                                  const rtl::CoreConfig& core_cfg) {
  cov::CoverageDB db;
  rtl::RtlCore dut(core_cfg, db, kPlatform);
  sim::IsaSim golden(kPlatform);
  mismatch::MismatchDetector detector;
  detector.install_default_filters();
  mismatch::LockstepComparator comparator;
  mismatch::Report report;
  comparator.begin(detector, golden, report);
  golden.reset(test);
  dut.set_sink(&comparator);
  dut.reset(test);
  dut.run();
  comparator.finish();
  dut.set_sink(nullptr);
  return report;
}

/// Byte-level report identity via the wire encoding: every kind, index,
/// commit record, signature, finding and counter must match.
void expect_reports_identical(const mismatch::Report& a,
                              const mismatch::Report& b) {
  ser::Writer wa, wb;
  mismatch::write_report(wa, a);
  mismatch::write_report(wb, b);
  EXPECT_EQ(wa.buffer(), wb.buffer());
}

/// Archive of a small streaming campaign: the tests a verification
/// engineer would actually replay/minimize.
std::vector<core::Program> campaign_corpus() {
  const std::string dir =
      "replay_stream_test_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  baselines::RandomFuzzer gen(23);
  core::CampaignConfig cfg;
  cfg.num_tests = 64;
  cfg.batch_size = 32;
  cfg.platform = kPlatform;
  cfg.checkpoint_dir = dir;
  (void)core::run_campaign(gen, cfg);

  corpus::CorpusStore store;
  EXPECT_TRUE(store.open(dir + "/corpus").ok());
  std::vector<core::Program> tests;
  for (std::size_t i = 0; i < store.size(); ++i) {
    core::Program p;
    EXPECT_TRUE(store.read_program(i, &p).ok());
    tests.push_back(std::move(p));
  }
  std::filesystem::remove_all(dir);
  return tests;
}

TEST(ReplayStreaming, ReplayReportsMatchLockstepForArchivedCorpus) {
  const std::vector<core::Program> tests = campaign_corpus();
  ASSERT_FALSE(tests.empty());
  std::size_t with_mismatch = 0;
  for (std::size_t i = 0; i < tests.size(); ++i) {
    SCOPED_TRACE("corpus entry " + std::to_string(i));
    const mismatch::Report materialized =
        core::replay_test(tests[i], rtl::CoreConfig::rocket(), kPlatform);
    const mismatch::Report streamed =
        streaming_report(tests[i], rtl::CoreConfig::rocket());
    expect_reports_identical(materialized, streamed);
    with_mismatch += materialized.mismatches.empty() ? 0 : 1;
  }
  // The injected-bug DUT makes mismatching archives near-certain; an empty
  // set would mean this test exercised nothing.
  EXPECT_GT(with_mismatch, 0u);
}

TEST(ReplayStreaming, EveryInjectedBugConfigAgrees) {
  // Single-bug configs isolate each divergence flavor (trace-length, rd
  // value/presence, exception priority) through both pipelines.
  using Bugs = rtl::BugInjections;
  Bugs one_by_one[5];
  one_by_one[0] = Bugs::none();
  one_by_one[0].stale_icache = true;
  one_by_one[1] = Bugs::none();
  one_by_one[1].tracer_drops_muldiv = true;
  one_by_one[2] = Bugs::none();
  one_by_one[2].fault_priority_swap = true;
  one_by_one[3] = Bugs::none();
  one_by_one[3].amo_x0_trace = true;
  one_by_one[4] = Bugs::none();
  one_by_one[4].x0_link_trace = true;

  baselines::RandomFuzzer gen(7);
  const std::vector<core::Program> tests = gen.next_batch(48);
  for (std::size_t b = 0; b < 5; ++b) {
    rtl::CoreConfig cfg = rtl::CoreConfig::rocket();
    cfg.bugs = one_by_one[b];
    for (std::size_t i = 0; i < tests.size(); ++i) {
      SCOPED_TRACE("bug config " + std::to_string(b) + ", test " +
                   std::to_string(i));
      expect_reports_identical(core::replay_test(tests[i], cfg, kPlatform),
                               streaming_report(tests[i], cfg));
    }
  }
}

TEST(ReplayStreaming, MinimizePreservesStreamingReportedSignature) {
  const std::vector<core::Program> tests = campaign_corpus();
  mismatch::MinimizeConfig mcfg;
  mcfg.platform = kPlatform;
  std::size_t minimized = 0;
  for (std::size_t i = 0; i < tests.size() && minimized < 8; ++i) {
    const mismatch::Report streamed =
        streaming_report(tests[i], rtl::CoreConfig::rocket());
    if (streamed.mismatches.empty()) continue;
    SCOPED_TRACE("corpus entry " + std::to_string(i));
    // first_signature() rides the materialized path; the streaming report's
    // first record must agree with it, and minimize must preserve exactly
    // that signature while shrinking.
    EXPECT_EQ(mismatch::first_signature(tests[i], mcfg),
              streamed.mismatches.front().signature);
    const mismatch::MinimizeResult r = mismatch::minimize(tests[i], mcfg);
    ASSERT_TRUE(r.reproduced);
    EXPECT_EQ(r.signature, streamed.mismatches.front().signature);
    EXPECT_LE(r.reduced.size(), tests[i].size());
    // The reduced program still produces the same first mismatch through
    // BOTH pipelines.
    const mismatch::Report reduced_streamed =
        streaming_report(r.reduced, rtl::CoreConfig::rocket());
    ASSERT_FALSE(reduced_streamed.mismatches.empty());
    EXPECT_EQ(reduced_streamed.mismatches.front().signature, r.signature);
    expect_reports_identical(
        core::replay_test(r.reduced, rtl::CoreConfig::rocket(), kPlatform),
        reduced_streamed);
    ++minimized;
  }
  EXPECT_GT(minimized, 0u);
}

}  // namespace
}  // namespace chatfuzz
