// The distributed campaign subsystem's core guarantee: fanning a campaign
// out across worker PROCESSES (fuzz --procs) changes where tests are
// simulated and nothing else. For any process count x worker-thread count x
// lease schedule — including mid-campaign worker kills with lease
// reassignment, hung-worker timeouts, and a checkpoint/resume cut that
// switches topology — the CampaignResult, the coverage DB bytes, the
// mismatch signature DB bytes, and the corpus-store bytes are bit-identical
// to a single-process run. Plus the wire-robustness contract: malformed
// frames and payloads error out through ser::Status, they never crash.
//
// This binary is its own worker fleet: main() routes the hidden
// `worker <fd>` argv (what the coordinator re-execs /proc/self/exe with)
// into dist::worker_main before gtest ever runs.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "core/checkpoint.h"
#include "core/sim_worker.h"
#include "dist/coordinator.h"
#include "dist/protocol.h"
#include "dist/worker.h"

namespace chatfuzz::core {
namespace {

namespace fs = std::filesystem;

// Small but not trivial: 3 batches of 32, a checkpoint interval that does
// not divide the batch size, and a lease size that yields several leases
// per batch per worker (reassignment has room to happen).
CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.num_tests = 96;
  cfg.batch_size = 32;
  cfg.checkpoint_every = 10;
  cfg.platform.max_steps = 256;
  cfg.dist.lease_tests = 4;
  return cfg;
}

/// Unique scratch dir under the build tree.
std::string fresh_dir(const char* tag) {
  static int counter = 0;
  std::string dir = std::string("dist_test_") + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

CampaignResult run_with(CampaignConfig cfg, std::size_t procs,
                        std::size_t workers, const std::string& dir,
                        std::uint64_t gen_seed = 11) {
  baselines::RandomFuzzer gen(gen_seed);
  cfg.dist.num_procs = procs;
  cfg.num_workers = workers;
  cfg.checkpoint_dir = dir;
  return run_campaign(gen, cfg);
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.tests_run, b.tests_run);
  EXPECT_EQ(a.final_cov_percent, b.final_cov_percent);  // bit-exact, no tol
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_instrs, b.total_instrs);
  EXPECT_EQ(a.raw_mismatches, b.raw_mismatches);
  EXPECT_EQ(a.filtered_mismatches, b.filtered_mismatches);
  EXPECT_EQ(a.unique_mismatches, b.unique_mismatches);
  EXPECT_EQ(a.findings, b.findings);
  EXPECT_EQ(a.toggle_percent, b.toggle_percent);
  EXPECT_EQ(a.fsm_percent, b.fsm_percent);
  EXPECT_EQ(a.statement_percent, b.statement_percent);
  EXPECT_EQ(a.uncovered.size(), b.uncovered.size());
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].tests, b.curve[i].tests) << "point " << i;
    EXPECT_EQ(a.curve[i].hours, b.curve[i].hours) << "point " << i;
    EXPECT_EQ(a.curve[i].cond_cov_percent, b.curve[i].cond_cov_percent)
        << "point " << i;
    EXPECT_EQ(a.curve[i].ctrl_states, b.curve[i].ctrl_states) << "point " << i;
  }
}

std::string file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Every file of a corpus store directory, name -> bytes.
std::map<std::string, std::string> corpus_bytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& e : fs::directory_iterator(fs::path(dir) / "corpus")) {
    out[e.path().filename().string()] = file_bytes(e.path());
  }
  return out;
}

/// The persisted coverage / mismatch / generator state: the byte-level
/// form of "same coverage DB, same signature DB, same generator stream".
void expect_same_persisted_state(const std::string& dir_a,
                                 const std::string& dir_b) {
  CheckpointData a, b;
  ASSERT_TRUE(load_checkpoint(dir_a, &a).ok());
  ASSERT_TRUE(load_checkpoint(dir_b, &b).ok());
  EXPECT_EQ(a.coverage_blob, b.coverage_blob) << "coverage DB bytes differ";
  EXPECT_EQ(a.detector_blob, b.detector_blob)
      << "mismatch signature DB bytes differ";
  EXPECT_EQ(a.generator_blob, b.generator_blob)
      << "generator stream state differs";
  EXPECT_EQ(corpus_bytes(dir_a), corpus_bytes(dir_b))
      << "corpus store bytes differ";
}

TEST(DistDeterminism, ProcessMatrixIsBitIdentical) {
  const CampaignConfig cfg = small_campaign();
  const std::string base_dir = fresh_dir("base");
  const CampaignResult base = run_with(cfg, 1, 1, base_dir);
  const struct { std::size_t procs, workers; } grid[] = {
      {1, 4}, {2, 1}, {2, 4}, {4, 1}, {4, 4}};
  for (const auto& g : grid) {
    const std::string dir = fresh_dir("grid");
    const CampaignResult r = run_with(cfg, g.procs, g.workers, dir);
    SCOPED_TRACE("procs=" + std::to_string(g.procs) +
                 " workers=" + std::to_string(g.workers));
    expect_identical(base, r);
    expect_same_persisted_state(base_dir, dir);
    fs::remove_all(dir);
  }
  fs::remove_all(base_dir);
}

TEST(DistDeterminism, MetricGuidanceCrossesProcessBoundary) {
  // Toggle guidance + the full metric suite: per-test metric-bin journals
  // ride the wire and must fold exactly like in-process artifacts.
  CampaignConfig cfg = small_campaign();
  cfg.guidance = GuidanceMetric::kToggle;
  cfg.collect_multi_metrics = true;
  const std::string da = fresh_dir("tog_a"), db = fresh_dir("tog_b");
  const CampaignResult a = run_with(cfg, 1, 1, da);
  const CampaignResult b = run_with(cfg, 2, 4, db);
  expect_identical(a, b);
  expect_same_persisted_state(da, db);
  EXPECT_GT(a.toggle_percent, 0.0);
  fs::remove_all(da);
  fs::remove_all(db);
}

TEST(DistDeterminism, CtrlRegGuidanceCrossesProcessBoundary) {
  // Ctrl-reg guidance is the scheduling-sensitive one: worker-local dedup
  // sets must not under-report across reassigned/reordered leases (workers
  // reset them at lease boundaries; the coordinator set dedups the rest).
  CampaignConfig cfg = small_campaign();
  cfg.guidance = GuidanceMetric::kCtrlReg;
  const std::string da = fresh_dir("ctrl_a"), db = fresh_dir("ctrl_b");
  const CampaignResult a = run_with(cfg, 1, 1, da);
  const CampaignResult b = run_with(cfg, 3, 2, db);
  expect_identical(a, b);
  expect_same_persisted_state(da, db);
  EXPECT_GT(a.curve.back().ctrl_states, 0u);
  fs::remove_all(da);
  fs::remove_all(db);
}

TEST(DistDeterminism, WorkerKillMidCampaignIsTransparent) {
  // SIGKILL a worker mid-campaign: its outstanding leases re-issue to the
  // survivor and the folded output must not move a bit.
  CampaignConfig cfg = small_campaign();
  cfg.dist.debug_kill_worker = 1;
  cfg.dist.debug_kill_after_results = 2;
  const std::string da = fresh_dir("kill_a"), db = fresh_dir("kill_b");
  const CampaignResult clean = run_with(small_campaign(), 1, 1, da);
  const CampaignResult killed = run_with(cfg, 2, 1, db);
  expect_identical(clean, killed);
  expect_same_persisted_state(da, db);
  fs::remove_all(da);
  fs::remove_all(db);
}

TEST(DistDeterminism, KillReassignsLeasesWithoutDoubleFold) {
  // Coordinator-level view of the same scenario, where the stats are
  // visible: the lost worker's lease re-issues exactly (no lease folds
  // twice — otherwise artifact slots would double-apply and the campaign
  // totals above could not match).
  CampaignConfig cfg = small_campaign();
  cfg.dist.num_procs = 2;
  cfg.num_workers = 1;
  cfg.dist.debug_kill_worker = 1;
  cfg.dist.debug_kill_after_results = 1;
  baselines::RandomFuzzer gen(11);
  const std::vector<Program> batch = gen.next_batch(32);
  std::vector<TestArtifact> killed_arts(batch.size());
  dist::Coordinator killed(cfg, /*use_suite=*/false);
  killed.run_batch(batch, 0, killed_arts);
  EXPECT_EQ(killed.stats().workers_lost, 1u);
  EXPECT_GE(killed.stats().leases_reissued, 1u);
  EXPECT_GE(killed.stats().leases_issued, 8u);  // 32 tests / lease_tests 4

  CampaignConfig clean_cfg = small_campaign();
  clean_cfg.dist.num_procs = 2;
  clean_cfg.num_workers = 1;
  std::vector<TestArtifact> clean_arts(batch.size());
  dist::Coordinator clean(clean_cfg, false);
  clean.run_batch(batch, 0, clean_arts);
  EXPECT_EQ(clean.stats().workers_lost, 0u);
  ASSERT_EQ(clean_arts.size(), killed_arts.size());
  for (std::size_t i = 0; i < clean_arts.size(); ++i) {
    SCOPED_TRACE("test " + std::to_string(i));
    const TestArtifact& a = clean_arts[i];
    const TestArtifact& b = killed_arts[i];
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.ctrl_states, b.ctrl_states);
    ASSERT_EQ(a.cond_bins.size(), b.cond_bins.size());
    for (std::size_t j = 0; j < a.cond_bins.size(); ++j) {
      EXPECT_EQ(a.cond_bins[j].bin, b.cond_bins[j].bin);
      EXPECT_EQ(a.cond_bins[j].hits, b.cond_bins[j].hits);
    }
    EXPECT_EQ(a.report.raw_count, b.report.raw_count);
    EXPECT_EQ(a.report.mismatches.size(), b.report.mismatches.size());
  }
}

TEST(DistDeterminism, HungWorkerTimesOutAndLeaseReissues) {
  CampaignConfig cfg = small_campaign();
  cfg.dist.num_procs = 2;
  cfg.num_workers = 1;
  cfg.dist.debug_hang_worker = 0;       // worker 0 wedges on its 1st lease
  cfg.dist.lease_timeout_ms = 1500;
  baselines::RandomFuzzer gen(11);
  const std::vector<Program> batch = gen.next_batch(32);
  std::vector<TestArtifact> arts(batch.size());
  dist::Coordinator coord(cfg, false);
  coord.run_batch(batch, 0, arts);
  EXPECT_EQ(coord.stats().workers_lost, 1u);
  EXPECT_GE(coord.stats().leases_reissued, 1u);
  EXPECT_EQ(coord.live_workers(), 1u);
  // The survivor completed everything: every artifact slot was filled.
  for (std::size_t i = 0; i < arts.size(); ++i) {
    EXPECT_GT(arts[i].steps, 0u) << "artifact slot " << i << " never filled";
  }
}

TEST(DistDeterminism, CampaignFailsCleanlyWhenNoWorkerSurvives) {
  CampaignConfig cfg = small_campaign();
  cfg.dist.num_procs = 2;
  // Spawns fine, exits immediately without ever speaking the protocol.
  cfg.dist.worker_exe = "/bin/true";
  baselines::RandomFuzzer gen(11);
  cfg.checkpoint_dir = fresh_dir("dead");
  EXPECT_THROW(run_campaign(gen, cfg), std::runtime_error);
  fs::remove_all(cfg.checkpoint_dir);
}

TEST(DistDeterminism, CheckpointResumeCutCanSwitchTopology) {
  // Pause a 2-process campaign at a lease-aligned checkpoint boundary,
  // resume it with 4 processes (and a different thread count): the stitched
  // run must be bit-identical to an uninterrupted single-process campaign.
  const CampaignConfig cfg = small_campaign();
  const std::string da = fresh_dir("resume_a"), db = fresh_dir("resume_b");
  const CampaignResult uninterrupted = run_with(cfg, 1, 1, da);

  {
    baselines::RandomFuzzer gen(11);
    CampaignConfig first = cfg;
    first.dist.num_procs = 2;
    first.num_workers = 1;
    first.checkpoint_dir = db;
    first.stop_after_tests = 40;
    const CampaignResult partial = run_campaign(gen, first);
    EXPECT_FALSE(partial.completed);
    EXPECT_LT(partial.tests_run, cfg.num_tests);
  }
  baselines::RandomFuzzer gen2(11);  // shell; state restores from disk
  ResumeOptions opts;
  opts.num_workers = 4;
  opts.dist.num_procs = 4;
  opts.dist.lease_tests = cfg.dist.lease_tests;
  const CampaignResult resumed = resume_campaign(gen2, db, opts);
  EXPECT_TRUE(resumed.completed);
  expect_identical(uninterrupted, resumed);
  expect_same_persisted_state(da, db);
  fs::remove_all(da);
  fs::remove_all(db);
}

TEST(DistDeterminism, SuperblockToggleAndBbvCrossProcessBoundary) {
  // The dispatch engine and BBV collection ride the config wire (they are
  // per-run knobs, never checkpointed): a 2-process campaign with
  // superblocks OFF must fold to the same result and persisted bytes as a
  // single-process superblock run, and the coordinator-written BBV files
  // must match byte-for-byte (workers collect, the coordinator writes).
  const CampaignConfig cfg = small_campaign();
  const std::string da = fresh_dir("sb_a"), db = fresh_dir("sb_b");
  CampaignResult a, b;
  {
    baselines::RandomFuzzer gen(11);
    CampaignConfig c = cfg;
    c.dist.num_procs = 1;
    c.num_workers = 1;
    c.checkpoint_dir = da;
    c.bbv_path = da + ".bbv";
    a = run_campaign(gen, c);
  }
  {
    baselines::RandomFuzzer gen(11);
    CampaignConfig c = cfg;
    c.superblocks = false;
    c.dist.num_procs = 2;
    c.num_workers = 2;
    c.checkpoint_dir = db;
    c.bbv_path = db + ".bbv";
    b = run_campaign(gen, c);
  }
  expect_identical(a, b);
  expect_same_persisted_state(da, db);
  const std::string bbv_a = file_bytes(da + ".bbv");
  EXPECT_FALSE(bbv_a.empty());
  EXPECT_EQ(bbv_a, file_bytes(db + ".bbv"));
  fs::remove_all(da);
  fs::remove_all(db);
  fs::remove(da + ".bbv");
  fs::remove(db + ".bbv");
}

// ---------------------------------------------------------------------------
// Wire protocol robustness: malformed input errors, never crashes.
// ---------------------------------------------------------------------------

struct ChannelPair {
  ChannelPair() {
    int sv[2];
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
    a = dist::FrameChannel(sv[0]);
    b = dist::FrameChannel(sv[1]);
  }
  dist::FrameChannel a, b;
};

std::string raw_u32(std::uint32_t v) {
  ser::Writer w;
  w.u32(v);
  return w.take();
}

TEST(DistProtocol, RejectsBadMagic) {
  ChannelPair ch;
  const std::string junk = raw_u32(0xDEADBEEF) + raw_u32(4) + raw_u32(0) +
                           "abcd";
  ASSERT_EQ(::send(ch.b.fd(), junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  std::string payload;
  const ser::Status s = ch.a.recv_frame(&payload, 1000);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("magic"), std::string::npos) << s.message();
}

TEST(DistProtocol, RejectsOversizedLengthPrefix) {
  ChannelPair ch;
  const std::string junk =
      raw_u32(dist::kFrameMagic) + raw_u32(0xFFFFFFFF) + raw_u32(0);
  ASSERT_EQ(::send(ch.b.fd(), junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  std::string payload;
  const ser::Status s = ch.a.recv_frame(&payload, 1000);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("size limit"), std::string::npos) << s.message();
}

TEST(DistProtocol, RejectsCrcMismatch) {
  ChannelPair ch;
  const std::string body = "hello";
  const std::string junk = raw_u32(dist::kFrameMagic) +
                           raw_u32(static_cast<std::uint32_t>(body.size())) +
                           raw_u32(0x12345678) + body;
  ASSERT_EQ(::send(ch.b.fd(), junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  std::string payload;
  const ser::Status s = ch.a.recv_frame(&payload, 1000);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos) << s.message();
}

TEST(DistProtocol, RejectsTruncatedFrame) {
  ChannelPair ch;
  // Header promises 100 payload bytes; the peer dies after 3.
  const std::string junk = raw_u32(dist::kFrameMagic) + raw_u32(100) +
                           raw_u32(0) + "abc";
  ASSERT_EQ(::send(ch.b.fd(), junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  ch.b.close();
  std::string payload;
  const ser::Status s = ch.a.recv_frame(&payload, 1000);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("closed"), std::string::npos) << s.message();
}

TEST(DistProtocol, RecvTimesOutOnSilence) {
  ChannelPair ch;
  std::string payload;
  const ser::Status s = ch.a.recv_frame(&payload, 50);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("timed out"), std::string::npos) << s.message();
}

TEST(DistProtocol, FrameRoundTripSurvivesLargePayloads) {
  ChannelPair ch;
  std::string big(1 << 20, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>(i * 31);
  }
  // A megabyte exceeds the socketpair buffer: the sender must run on its
  // own thread (exactly like a real worker peer) for the partial-write /
  // partial-read resume paths to be exercised.
  std::thread sender([&] { EXPECT_TRUE(ch.a.send_frame(big).ok()); });
  std::string payload;
  const ser::Status s = ch.b.recv_frame(&payload, 5000);
  sender.join();
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(payload, big);
}

TEST(DistProtocol, MessageRoundTrips) {
  dist::LeaseMsg lease;
  lease.lease_id = 42;
  lease.base_index = 1234;
  lease.tests = {{0x00500513u, 0x00b60633u}, {}, {0xdeadbeefu}};
  dist::LeaseMsg lease2;
  ASSERT_TRUE(dist::decode_lease(dist::encode_lease(lease), &lease2).ok());
  EXPECT_EQ(lease2.lease_id, 42u);
  EXPECT_EQ(lease2.base_index, 1234u);
  EXPECT_EQ(lease2.tests, lease.tests);

  dist::ConfigMsg cfg;
  cfg.cfg = small_campaign();
  cfg.cfg.seed = 77;
  cfg.cfg.core = rtl::CoreConfig::boom();
  cfg.cfg.guidance = GuidanceMetric::kFsm;
  cfg.use_suite = true;
  cfg.worker_index = 3;
  cfg.max_lease_tests = 4;
  cfg.superblocks = false;
  cfg.collect_bbv = true;
  dist::ConfigMsg cfg2;
  ASSERT_TRUE(dist::decode_config(dist::encode_config(cfg), &cfg2).ok());
  EXPECT_EQ(cfg2.cfg.seed, 77u);
  EXPECT_EQ(cfg2.cfg.core.name, "boom");
  EXPECT_TRUE(cfg2.cfg.core.superscalar);
  EXPECT_EQ(cfg2.cfg.guidance, GuidanceMetric::kFsm);
  EXPECT_TRUE(cfg2.use_suite);
  EXPECT_EQ(cfg2.worker_index, 3u);
  EXPECT_EQ(cfg2.max_lease_tests, 4u);
  EXPECT_FALSE(cfg2.superblocks);
  EXPECT_TRUE(cfg2.collect_bbv);

  dist::HelloMsg hello;
  hello.pid = 999;
  dist::HelloMsg hello2;
  ASSERT_TRUE(dist::decode_hello(dist::encode_hello(hello), &hello2).ok());
  EXPECT_EQ(hello2.protocol, dist::kProtocolVersion);
  EXPECT_EQ(hello2.pid, 999u);
}

TEST(DistProtocol, ArtifactRoundTripIncludesMismatchRecords) {
  TestArtifact art;
  art.cond_bins = {{3, 7}, {900, 1}};
  art.ctrl_states = {0x1111, 0x2222};
  art.toggle_bins = {1, 5, 9};
  art.fsm_bins = {2};
  art.stmt_bins = {};
  art.cycles = 4242;
  art.steps = 99;
  art.bbv = {{0x8000'0000ull, 3}, {0x8000'0040ull, 1}};
  art.report.raw_count = 5;
  art.report.filtered_count = 1;
  mismatch::Mismatch m;
  m.kind = mismatch::Kind::kRdValue;
  m.index = 17;
  m.dut.pc = 0x80000010;
  m.dut.instr = 0x00500513;
  m.dut.has_rd_write = true;
  m.dut.rd = 10;
  m.dut.rd_value = 5;
  m.golden = m.dut;
  m.golden.rd_value = 6;
  m.signature = "rd-value addi";
  m.finding = mismatch::Finding::kOther;
  // Two identical consecutive records (one wire run) plus a distinct one:
  // the signature-summary encoding must preserve the multiset and order.
  art.report.mismatches.push_back(m);
  art.report.mismatches.push_back(m);
  mismatch::Mismatch m2 = m;
  m2.kind = mismatch::Kind::kLength;
  m2.signature = "length golden-short";
  m2.finding = mismatch::Finding::kBug2TracerMulDiv;
  art.report.mismatches.push_back(m2);

  ser::Writer w;
  dist::write_artifact(w, art);
  const std::string bytes = w.buffer();
  ser::Reader r(bytes);
  TestArtifact back;
  ASSERT_TRUE(dist::read_artifact(r, back));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.cond_bins.size(), 2u);
  EXPECT_EQ(back.cond_bins[1].bin, 900u);
  EXPECT_EQ(back.ctrl_states, art.ctrl_states);
  EXPECT_EQ(back.toggle_bins, art.toggle_bins);
  EXPECT_EQ(back.fsm_bins, art.fsm_bins);
  EXPECT_EQ(back.cycles, 4242u);
  EXPECT_EQ(back.steps, 99u);
  EXPECT_EQ(back.bbv, art.bbv);
  // Mismatches travel as signature summaries: kind/finding/signature and
  // the per-run counts survive (everything campaign accumulation reads);
  // the commit-record details deliberately do not ride the wire.
  EXPECT_EQ(back.report.raw_count, 5u);
  EXPECT_EQ(back.report.filtered_count, 1u);
  ASSERT_EQ(back.report.mismatches.size(), 3u);
  EXPECT_EQ(back.report.mismatches[0].kind, mismatch::Kind::kRdValue);
  EXPECT_EQ(back.report.mismatches[0].signature, "rd-value addi");
  EXPECT_EQ(back.report.mismatches[1].signature, "rd-value addi");
  EXPECT_EQ(back.report.mismatches[2].kind, mismatch::Kind::kLength);
  EXPECT_EQ(back.report.mismatches[2].signature, "length golden-short");
  EXPECT_EQ(back.report.mismatches[2].finding,
            mismatch::Finding::kBug2TracerMulDiv);

  // Corrupt the encoded enum field: decoding must fail, not fabricate.
  std::string evil = bytes;
  // The kind byte is the first byte after the two u64 counters + count.
  // Rather than compute the offset, flip every byte position and require
  // that no mutation crashes; most must fail or decode to something.
  for (std::size_t i = 0; i < evil.size(); i += 7) {
    std::string mutated = evil;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    ser::Reader mr(mutated);
    TestArtifact scratch;
    (void)dist::read_artifact(mr, scratch);  // must not crash/UB
  }
}

TEST(DistProtocol, FullReportRoundTripKeepsCommitRecords) {
  // The full-fidelity sibling of the wire summary: every record field
  // survives, and a corrupted enum byte fails the decode instead of
  // fabricating a value.
  mismatch::Report rep;
  rep.raw_count = 2;
  rep.filtered_count = 1;
  mismatch::Mismatch m;
  m.kind = mismatch::Kind::kMemValue;
  m.index = 5;
  m.dut.pc = 0x80000020;
  m.dut.has_mem = true;
  m.dut.mem_is_store = true;
  m.dut.mem_addr = 0x80001000;
  m.dut.mem_value = 0xabcd;
  m.dut.mem_size = 8;
  m.golden = m.dut;
  m.golden.mem_value = 0xabce;
  m.signature = "mem-value sd";
  rep.mismatches.push_back(m);
  ser::Writer w;
  mismatch::write_report(w, rep);
  ser::Reader r(w.buffer());
  mismatch::Report back;
  ASSERT_TRUE(mismatch::read_report(r, back));
  EXPECT_TRUE(r.done());
  ASSERT_EQ(back.mismatches.size(), 1u);
  EXPECT_EQ(back.mismatches[0].index, 5u);
  EXPECT_EQ(back.mismatches[0].dut.mem_value, 0xabcdu);
  EXPECT_EQ(back.mismatches[0].golden.mem_value, 0xabceu);
  EXPECT_EQ(back.mismatches[0].dut.mem_size, 8u);

  // Corrupt the kind byte (first mismatch field after the three u64s).
  std::string evil = w.buffer();
  evil[24] = static_cast<char>(0x7f);
  ser::Reader er(evil);
  EXPECT_FALSE(mismatch::read_report(er, back));
}

TEST(DistProtocol, DecodersRejectGarbageAndWrongTypes) {
  dist::LeaseMsg lease;
  EXPECT_FALSE(dist::decode_lease("garbage-bytes", &lease).ok());
  EXPECT_FALSE(dist::decode_lease("", &lease).ok());
  dist::LeaseResultMsg res;
  EXPECT_FALSE(dist::decode_lease_result("\x04more-garbage", &res).ok());
  dist::ConfigMsg cfg;
  // A hello frame is not a config frame.
  EXPECT_FALSE(
      dist::decode_config(dist::encode_hello(dist::HelloMsg{}), &cfg).ok());
  dist::HelloMsg hello;
  EXPECT_FALSE(
      dist::decode_hello(dist::encode_shutdown(), &hello).ok());
  // Absurd length prefix inside a lease payload: count says 2^60 tests.
  ser::Writer w;
  w.u8(3);  // kLease
  w.u64(1);
  w.u64(0);
  w.u64(std::uint64_t{1} << 60);
  EXPECT_FALSE(dist::decode_lease(w.buffer(), &lease).ok());
  EXPECT_EQ(dist::peek_type(""), dist::MsgType::kInvalid);
  EXPECT_EQ(dist::peek_type("\x63"), dist::MsgType::kInvalid);
  EXPECT_EQ(dist::peek_type(dist::encode_shutdown()),
            dist::MsgType::kShutdown);
}

}  // namespace
}  // namespace chatfuzz::core

int main(int argc, char** argv) {
  // Worker re-exec: the coordinator spawns /proc/self/exe (this binary)
  // with `worker <fd>`; serve leases instead of running the test suite.
  if (const auto rc = chatfuzz::dist::maybe_worker_main(argc, argv)) {
    return *rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
