// CLINT / interrupt-stimulus tests: the device model, the M-mode interrupt
// entry in both simulators, their lockstep agreement (interrupts must never
// create false mismatches), and the coverage consequence — the DUT's
// irq.pending condition points leave the unreachable tail.
#include <gtest/gtest.h>

#include "isasim/sim.h"
#include "riscv/builder.h"
#include "riscv/csr.h"
#include "riscv/encode.h"
#include "rtlsim/core.h"

namespace chatfuzz::sim {
namespace {

using riscv::Opcode;
namespace csr = riscv::csr;

Platform clint_platform() {
  Platform p;
  p.max_steps = 2048;
  p.clint_enabled = true;
  return p;
}

/// li for full 32-bit CLINT addresses (0x0200_0000 etc.), with the lui/addi
/// carry handled for low parts >= 0x800.
void li_addr(riscv::ProgramBuilder& b, unsigned rd, std::uint64_t addr) {
  const auto value = static_cast<std::int32_t>(addr);
  const std::int32_t hi = (value + 0x800) >> 12;
  const std::int32_t lo = value - (hi << 12);
  b.lui(rd, hi);
  b.addi(rd, rd, lo);
}

/// Program: enable MTIE+MIE, arm the timer at `cmp`, then run `pad` nops.
std::vector<std::uint32_t> timer_program(const Platform& plat,
                                         std::uint64_t cmp, int pad = 8) {
  riscv::ProgramBuilder b(plat.ram_base);
  li_addr(b, 5, plat.clint_base + ClintState::kMtimecmpOff);
  b.li(6, static_cast<std::int32_t>(cmp));
  b.sd(5, 6, 0);                              // mtimecmp = cmp
  b.li(7, 1 << 7);                            // MTIE
  b.csrrs(0, csr::kMie, 7);
  b.li(7, 1 << 3);                            // mstatus.MIE
  b.csrrs(0, csr::kMstatus, 7);
  for (int i = 0; i < pad; ++i) b.addi(0, 0, 0);
  return b.seal();
}

// ---- device model -----------------------------------------------------------

TEST(ClintStateTest, RegisterMapAndPending) {
  Platform plat = clint_platform();
  ClintState c;
  EXPECT_TRUE(c.contains(plat, plat.clint_base));
  EXPECT_TRUE(c.contains(plat, plat.clint_base + ClintState::kMtimeOff));
  EXPECT_FALSE(c.contains(plat, plat.clint_base + ClintState::kWindow));
  EXPECT_FALSE(c.contains(Platform{}, plat.clint_base));  // disabled

  EXPECT_EQ(c.pending_mip(), 0u);
  c.write(plat, plat.clint_base + ClintState::kMsipOff, 4, 1);
  EXPECT_EQ(c.pending_mip(), mip::kMsip);
  c.clear_source(mip::kCauseMsi);
  EXPECT_EQ(c.pending_mip(), 0u);

  c.write(plat, plat.clint_base + ClintState::kMtimecmpOff, 8, 5);
  for (int i = 0; i < 5; ++i) c.tick();
  EXPECT_EQ(c.pending_mip(), mip::kMtip);
  c.clear_source(mip::kCauseMti);
  EXPECT_EQ(c.pending_mip(), 0u);  // mtimecmp re-armed at ~0
}

TEST(ClintStateTest, RejectsBadOffsetsAndSizes) {
  Platform plat = clint_platform();
  ClintState c;
  std::uint64_t v = 0;
  EXPECT_FALSE(c.read(plat, plat.clint_base + 8, 8, v));        // unmapped
  EXPECT_FALSE(c.read(plat, plat.clint_base, 8, v));            // msip is 4B
  EXPECT_FALSE(c.write(plat, plat.clint_base + ClintState::kMtimeOff, 4, 1));
  EXPECT_TRUE(c.read(plat, plat.clint_base + ClintState::kMtimeOff, 8, v));
}

// ---- golden model ------------------------------------------------------------

TEST(IsaSimInterruptTest, TimerInterruptEntersHandlerState) {
  const Platform plat = clint_platform();
  IsaSim sim(plat);
  sim.reset(timer_program(plat, 6));
  sim.run();
  // mcause must show the timer interrupt with the interrupt flag.
  EXPECT_EQ(sim.csr_value(csr::kMcause), mip::kInterruptFlag | mip::kCauseMti);
  // The source was acknowledged: MTIP no longer pending.
  EXPECT_EQ(sim.csr_value(csr::kMip) & mip::kMtip, 0u);
}

TEST(IsaSimInterruptTest, SoftwareInterruptViaMsip) {
  const Platform plat = clint_platform();
  riscv::ProgramBuilder b(plat.ram_base);
  b.li(7, (1 << 3));
  b.csrrs(0, csr::kMie, 7);        // MSIE
  b.csrrs(0, csr::kMstatus, 7);    // mstatus.MIE (same bit position)
  li_addr(b, 5, plat.clint_base + ClintState::kMsipOff);
  b.li(6, 1);
  b.sw(5, 6, 0);                   // msip = 1
  b.addi(0, 0, 0);
  b.addi(0, 0, 0);
  IsaSim sim(plat);
  sim.reset(b.seal());
  sim.run();
  EXPECT_EQ(sim.csr_value(csr::kMcause), mip::kInterruptFlag | mip::kCauseMsi);
}

TEST(IsaSimInterruptTest, MaskedWhenMieClear) {
  const Platform plat = clint_platform();
  riscv::ProgramBuilder b(plat.ram_base);
  li_addr(b, 5, plat.clint_base + ClintState::kMtimecmpOff);
  b.li(6, 2);
  b.sd(5, 6, 0);  // timer pending almost immediately...
  b.li(7, 1 << 7);
  b.csrrs(0, csr::kMie, 7);  // MTIE set, but mstatus.MIE stays 0 in M-mode
  for (int i = 0; i < 6; ++i) b.addi(0, 0, 0);
  IsaSim sim(plat);
  sim.reset(b.seal());
  sim.run();
  EXPECT_EQ(sim.csr_value(csr::kMcause), 0u);          // never taken
  EXPECT_NE(sim.csr_value(csr::kMip) & mip::kMtip, 0u);  // still pending
}

TEST(IsaSimInterruptTest, MmioReadsObserveTickingTime) {
  const Platform plat = clint_platform();
  riscv::ProgramBuilder b(plat.ram_base);
  li_addr(b, 5, plat.clint_base + ClintState::kMtimeOff);
  b.ld(12, 5, 0);   // first read
  b.ld(13, 5, 0);   // later read: strictly larger
  IsaSim sim(plat);
  sim.reset(b.seal());
  sim.run();
  EXPECT_GT(sim.reg(13), sim.reg(12));
}

TEST(IsaSimInterruptTest, ClintDisabledFaultsAsBefore) {
  Platform plat = clint_platform();
  plat.clint_enabled = false;
  IsaSim sim(plat);
  sim.reset(timer_program(plat, 6));
  const RunResult r = sim.run();
  // The sd to the CLINT address must raise a store access fault.
  bool faulted = false;
  for (const CommitRecord& rec : r.trace) {
    faulted = faulted ||
              rec.exception == riscv::Exception::kStoreAccessFault;
  }
  EXPECT_TRUE(faulted);
  EXPECT_EQ(sim.csr_value(csr::kMcause),
            static_cast<std::uint64_t>(
                riscv::Exception::kStoreAccessFault));
}

// ---- DUT model + lockstep ------------------------------------------------------

class InterruptLockstep : public ::testing::Test {
 protected:
  /// Run both simulators (injections off) and require identical traces.
  void lockstep(const std::vector<std::uint32_t>& prog) {
    const Platform plat = clint_platform();
    cov::CoverageDB db;
    rtl::CoreConfig cfg = rtl::CoreConfig::rocket();
    cfg.bugs = rtl::BugInjections::none();
    rtl::RtlCore dut(cfg, db, plat);
    IsaSim golden(plat);
    dut.reset(prog);
    golden.reset(prog);
    const RunResult a = dut.run();
    const RunResult bres = golden.run();
    ASSERT_EQ(a.trace.size(), bres.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      const CommitRecord& x = a.trace[i];
      const CommitRecord& y = bres.trace[i];
      EXPECT_EQ(x.pc, y.pc) << "step " << i;
      EXPECT_EQ(x.instr, y.instr) << "step " << i;
      EXPECT_EQ(x.has_rd_write, y.has_rd_write) << "step " << i;
      EXPECT_EQ(x.rd_value, y.rd_value) << "step " << i;
      EXPECT_EQ(static_cast<int>(x.exception), static_cast<int>(y.exception))
          << "step " << i;
      EXPECT_EQ(static_cast<int>(x.priv), static_cast<int>(y.priv))
          << "step " << i;
    }
  }
};

TEST_F(InterruptLockstep, TimerInterruptProgram) {
  lockstep(timer_program(clint_platform(), 8, 16));
}

TEST_F(InterruptLockstep, SoftwareInterruptProgram) {
  const Platform plat = clint_platform();
  riscv::ProgramBuilder b(plat.ram_base);
  b.li(7, (1 << 3));
  b.csrrs(0, csr::kMie, 7);
  b.csrrs(0, csr::kMstatus, 7);
  li_addr(b, 5, plat.clint_base + ClintState::kMsipOff);
  b.li(6, 1);
  b.sw(5, 6, 0);
  b.mul(12, 11, 13);
  b.addi(12, 12, 7);
  lockstep(b.seal());
}

TEST_F(InterruptLockstep, InterruptDuringUserMode) {
  const Platform plat = clint_platform();
  riscv::ProgramBuilder b(plat.ram_base);
  // Arm the timer, then drop to U-mode; M interrupts fire there regardless
  // of mstatus.MIE.
  li_addr(b, 5, plat.clint_base + ClintState::kMtimecmpOff);
  b.li(6, 14);
  b.sd(5, 6, 0);
  b.li(7, 1 << 7);
  b.csrrs(0, csr::kMie, 7);
  b.li(28, 3);
  b.raw(riscv::enc_shift(Opcode::kSlli, 28, 28, 11));
  b.raw(riscv::enc_csr(Opcode::kCsrrc, 0, csr::kMstatus, 28));  // MPP=U
  b.auipc(29, 0);
  b.addi(29, 29, 16);
  b.csrrw(0, csr::kMepc, 29);
  b.raw(riscv::enc_sys(Opcode::kMret));
  for (int i = 0; i < 12; ++i) b.addi(12, 12, 1);
  lockstep(b.seal());
}

TEST_F(InterruptLockstep, MmioBadOffsetFaultsIdentically) {
  const Platform plat = clint_platform();
  riscv::ProgramBuilder b(plat.ram_base);
  li_addr(b, 5, plat.clint_base + 0x100);  // unmapped hole in the window
  b.ld(12, 5, 0);
  b.addi(0, 0, 0);
  lockstep(b.seal());
}

TEST(RtlInterruptCoverage, IrqPendingPointsBecomeReachable) {
  const Platform plat = clint_platform();
  cov::CoverageDB db;
  rtl::RtlCore dut(rtl::CoreConfig::rocket(), db, plat);
  dut.reset(timer_program(plat, 8, 16));
  dut.run();
  bool any_true = false;
  for (std::size_t i = 0; i < db.num_points(); ++i) {
    if (db.point_name(static_cast<cov::PointId>(i)).starts_with(
            "irq.pending")) {
      any_true = any_true || db.bin_covered(2 * i + 1);
    }
  }
  EXPECT_TRUE(any_true);
}

TEST(RtlInterruptCoverage, UnreachableWithoutClint) {
  Platform plat;
  plat.max_steps = 2048;
  cov::CoverageDB db;
  rtl::RtlCore dut(rtl::CoreConfig::rocket(), db, plat);
  dut.reset(timer_program(plat, 8, 16));  // program faults at the MMIO store
  dut.run();
  for (std::size_t i = 0; i < db.num_points(); ++i) {
    if (db.point_name(static_cast<cov::PointId>(i)).starts_with(
            "irq.pending")) {
      EXPECT_FALSE(db.bin_covered(2 * i + 1));
    }
  }
}

}  // namespace
}  // namespace chatfuzz::sim
