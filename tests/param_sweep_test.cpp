// Parameterized property sweeps:
//  * every privilege-gated decode-chain point (cross.<priv>.op.<mnemonic>)
//    must be solvable by the PointSolver — all ~190 of them, individually;
//  * every mutation operator keeps programs well-formed and bounded;
//  * timer interrupts stay in lockstep across both simulators for a sweep
//    of compare values (interrupts land at different pipeline positions).
#include <gtest/gtest.h>

#include <string>

#include "baselines/mutational.h"
#include "baselines/point_solver.h"
#include "isasim/sim.h"
#include "riscv/builder.h"
#include "riscv/decode.h"
#include "riscv/csr.h"
#include "riscv/encode.h"
#include "riscv/instr.h"
#include "rtlsim/core.h"

namespace chatfuzz {
namespace {

sim::Platform sweep_platform() {
  sim::Platform p;
  p.max_steps = 2048;
  return p;
}

// ---- cross.<priv>.op.<mnemonic> sweep -----------------------------------------

struct OpPrivCase {
  std::size_t op_index;
  bool super;
};

class CrossOpSolve : public ::testing::TestWithParam<OpPrivCase> {};

TEST_P(CrossOpSolve, SolverCoversPoint) {
  const auto [op_index, super] = GetParam();
  const std::string name = std::string("cross.") +
                           (super ? "super" : "user") + ".op." +
                           std::string(riscv::all_specs()[op_index].mnemonic);

  cov::CoverageDB db;
  rtl::RtlCore core(rtl::CoreConfig::rocket(), db, sweep_platform());
  baselines::PointSolver solver(sweep_platform());

  cov::UncoveredPoint up;
  up.name = name;
  up.missing_true = true;
  const auto prog = solver.solve(up);
  ASSERT_TRUE(prog.has_value()) << name;

  core.reset(*prog);
  core.run();
  for (std::size_t i = 0; i < db.num_points(); ++i) {
    if (db.point_name(static_cast<cov::PointId>(i)) == name) {
      EXPECT_TRUE(db.bin_covered(2 * i + 1)) << name;
      return;
    }
  }
  FAIL() << "point not registered: " << name;
}

std::vector<OpPrivCase> all_op_priv_cases() {
  std::vector<OpPrivCase> cases;
  for (std::size_t i = 0; i < riscv::kNumOpcodes; ++i) {
    cases.push_back({i, false});
    cases.push_back({i, true});
  }
  return cases;
}

std::string op_priv_name(const ::testing::TestParamInfo<OpPrivCase>& info) {
  std::string mnem(riscv::all_specs()[info.param.op_index].mnemonic);
  for (char& c : mnem) {
    if (c == '.') c = '_';
  }
  return mnem + (info.param.super ? "_super" : "_user");
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, CrossOpSolve,
                         ::testing::ValuesIn(all_op_priv_cases()),
                         op_priv_name);

// ---- mutation operator sweep ----------------------------------------------------

class MutOpProbe : public baselines::MutationalFuzzer {
 public:
  explicit MutOpProbe(std::uint64_t seed)
      : baselines::MutationalFuzzer({}, seed) {}
  std::string name() const override { return "probe"; }
  using baselines::MutationalFuzzer::apply_mutation;
  using baselines::MutationalFuzzer::kNumMutationOps;
  using baselines::MutationalFuzzer::kOpDelete;
  using baselines::MutationalFuzzer::kOpOperandRerand;

 protected:
  double score(const cov::TestCoverage&, std::uint64_t) const override {
    return 0.0;
  }
};

class MutationOpSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MutationOpSweep, KeepsProgramsBoundedAndNonEmpty) {
  const unsigned op = GetParam();
  MutOpProbe probe(op + 100);
  Rng rng(op);
  for (int trial = 0; trial < 200; ++trial) {
    corpus::Program p =
        corpus::random_valid_program(rng, 1 + static_cast<unsigned>(rng.below(30)));
    const std::size_t before = p.size();
    probe.apply_mutation(p, op);
    EXPECT_LE(p.size(), std::max<std::size_t>(before + 6, 48));
    if (op != MutOpProbe::kOpDelete) {
      EXPECT_GE(p.size(), before > 0 ? before - 1 : 0);
    }
    EXPECT_FALSE(p.empty() && before > 1);
  }
}

TEST_P(MutationOpSweep, OperandRerandKeepsValidity) {
  if (GetParam() != MutOpProbe::kOpOperandRerand) {
    GTEST_SKIP() << "validity preservation only claimed for operand rerand";
  }
  MutOpProbe probe(1);
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    corpus::Program p = corpus::random_valid_program(rng, 8);
    probe.apply_mutation(p, MutOpProbe::kOpOperandRerand);
    for (std::uint32_t w : p) {
      EXPECT_TRUE(riscv::decode(w).valid());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, MutationOpSweep,
                         ::testing::Range(0u, static_cast<unsigned>(MutOpProbe::kNumMutationOps)));

// ---- interrupt timing sweep -------------------------------------------------------

class TimerSweep : public ::testing::TestWithParam<int> {};

TEST_P(TimerSweep, LockstepAtEveryComparePoint) {
  sim::Platform plat = sweep_platform();
  plat.clint_enabled = true;

  riscv::ProgramBuilder b(plat.ram_base);
  // mtimecmp = <param>, MTIE + MIE on, then a mixed instruction tail so the
  // interrupt lands on loads/branches/muldivs depending on the compare.
  b.lui(5, 0x2004);
  b.li(6, GetParam());
  b.sd(5, 6, 0);
  b.li(7, 1 << 7);
  b.csrrs(0, riscv::csr::kMie, 7);
  b.li(7, 1 << 3);
  b.csrrs(0, riscv::csr::kMstatus, 7);
  for (int i = 0; i < 4; ++i) {
    b.ld(12, 10, 0);
    b.mul(13, 12, 11);
    b.raw(riscv::enc_b(riscv::Opcode::kBne, 13, 0, 8));
    b.addi(13, 13, 1);
    b.sd(10, 13, 8);
  }
  const auto prog = b.seal();

  cov::CoverageDB db;
  rtl::CoreConfig cfg = rtl::CoreConfig::rocket();
  cfg.bugs = rtl::BugInjections::none();
  rtl::RtlCore dut(cfg, db, plat);
  sim::IsaSim golden(plat);
  dut.reset(prog);
  golden.reset(prog);
  const sim::RunResult a = dut.run();
  const sim::RunResult g = golden.run();
  ASSERT_EQ(a.trace.size(), g.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].pc, g.trace[i].pc) << i;
    EXPECT_EQ(a.trace[i].rd_value, g.trace[i].rd_value) << i;
    EXPECT_EQ(static_cast<int>(a.trace[i].priv),
              static_cast<int>(g.trace[i].priv)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(CmpValues, TimerSweep,
                         ::testing::Values(1, 3, 5, 8, 9, 10, 12, 15, 20, 26));

}  // namespace
}  // namespace chatfuzz
