// HyPFuzz/PSOFuzz hybrid-baseline tests: the PointSolver's directed
// templates must actually reach the points they claim to solve (that is the
// whole premise of the formal-assisted loop), and the swarm/stagnation
// schedulers must behave deterministically.
#include <gtest/gtest.h>

#include <string>

#include "baselines/hypfuzz.h"
#include "baselines/mutational.h"
#include "baselines/psofuzz.h"
#include "baselines/point_solver.h"
#include "core/campaign.h"
#include "coverage/merge.h"
#include "rtlsim/core.h"

namespace chatfuzz::baselines {
namespace {

sim::Platform test_platform() {
  sim::Platform p;
  p.max_steps = 2048;
  return p;
}

class PointSolverTest : public ::testing::Test {
 protected:
  PointSolverTest()
      : core_(rtl::CoreConfig::rocket(), db_, test_platform()),
        solver_(test_platform()) {}

  /// Solve the named point and run the program; returns true when the
  /// point's true bin is covered afterwards.
  bool solve_and_check(const std::string& name) {
    const auto id = find_point(name);
    if (!id) {
      ADD_FAILURE() << "no such point: " << name;
      return false;
    }
    cov::UncoveredPoint up;
    up.name = name;
    up.missing_true = true;
    const auto prog = solver_.solve(up);
    if (!prog) {
      ADD_FAILURE() << "solver declined point: " << name;
      return false;
    }
    core_.reset(*prog);
    core_.run();
    return db_.bin_covered(2 * *id + 1);
  }

  std::optional<cov::PointId> find_point(const std::string& name) const {
    for (std::size_t i = 0; i < db_.num_points(); ++i) {
      if (db_.point_name(static_cast<cov::PointId>(i)) == name) {
        return static_cast<cov::PointId>(i);
      }
    }
    return std::nullopt;
  }

  cov::CoverageDB db_;
  rtl::RtlCore core_;
  PointSolver solver_;
};

TEST_F(PointSolverTest, UnreachableClassification) {
  EXPECT_TRUE(PointSolver::unreachable("irq.pending3"));
  EXPECT_TRUE(PointSolver::unreachable("debug.halt_req"));
  EXPECT_TRUE(PointSolver::unreachable("ecc.icache"));
  EXPECT_TRUE(PointSolver::unreachable("pmp.fault"));
  EXPECT_FALSE(PointSolver::unreachable("decode.is_load"));
  EXPECT_FALSE(PointSolver::unreachable("cross.user.op.mul"));
  cov::UncoveredPoint up;
  up.name = "irq.pending0";
  EXPECT_FALSE(solver_.solve(up).has_value());
}

// Privilege-gated decode chains: one parameterized check per opcode family
// representative (running all ~190 is redundant with the sweep test below).
TEST_F(PointSolverTest, SolvesPrivilegeOpcodeCross) {
  for (const char* name :
       {"cross.user.op.mul", "cross.super.op.div", "cross.user.op.ld",
        "cross.super.op.sd", "cross.user.op.beq", "cross.super.op.jal",
        "cross.user.op.jalr", "cross.user.op.lui", "cross.super.op.csrrs",
        "cross.user.op.amoadd.d", "cross.super.op.lr.w",
        "cross.user.op.fence.i", "cross.super.op.sc.d"}) {
    EXPECT_TRUE(solve_and_check(name)) << name;
  }
}

TEST_F(PointSolverTest, SolvesPrivilegeClassCross) {
  for (const char* name :
       {"cross.user.load", "cross.user.store", "cross.user.amo",
        "cross.user.lrsc", "cross.user.csr", "cross.user.muldiv",
        "cross.user.fencei", "cross.user.branch", "cross.super.load",
        "cross.super.store", "cross.super.csr", "cross.super.branch"}) {
    EXPECT_TRUE(solve_and_check(name)) << name;
  }
}

TEST_F(PointSolverTest, SolvesTrapCauseCrosses) {
  for (const char* name :
       {"trap.cross.illegal.user", "trap.cross.breakpoint.super",
        "trap.cross.load_misaligned.user", "trap.cross.load_fault.super",
        "trap.cross.store_misaligned.super", "trap.cross.store_fault.user",
        "trap.cross.ecall.user", "trap.cross.ecall.super"}) {
    EXPECT_TRUE(solve_and_check(name)) << name;
  }
}

TEST_F(PointSolverTest, SolvesPlainTrapCauses) {
  for (int cause : {0, 2, 3, 4, 5, 6, 7, 8, 9, 11}) {
    const std::string name = "trap.cause" + std::to_string(cause);
    EXPECT_TRUE(solve_and_check(name)) << name;
  }
}

TEST_F(PointSolverTest, SolvesCsrWrites) {
  for (const char* name :
       {"csr.write.0x300", "csr.write.0x340", "csr.write.0x180",
        "csr.write.0x343", "csr.write.0x105"}) {
    EXPECT_TRUE(solve_and_check(name)) << name;
  }
}

TEST_F(PointSolverTest, SolvesSequencePoints) {
  for (const char* name :
       {"seq.div_after_div", "seq.muldiv_chain",
        "seq.branch_after_taken_branch", "seq.amo_after_amo",
        "seq.store_to_load_forward", "seq.double_mispredict",
        "seq.double_trap", "seq.fencei_after_store",
        "seq.trap_after_csr_write", "seq.load_after_amo",
        "seq.backward_branch_pair", "seq.jump_after_trap"}) {
    EXPECT_TRUE(solve_and_check(name)) << name;
  }
}

TEST_F(PointSolverTest, SolvesCacheCrosses) {
  for (const char* name :
       {"cache.double_dcache_miss", "cache.ic_dc_miss_same_instr",
        "cache.dcache_hit_dirty", "cache.amo_dcache_miss",
        "cache.lrsc_dcache_miss", "cache.store_clobbers_reservation",
        "cache.mem_fault_in_user", "cache.misaligned_store_trap",
        "cache.sc_success_in_super"}) {
    EXPECT_TRUE(solve_and_check(name)) << name;
  }
}

TEST_F(PointSolverTest, SolvesMulDivOperandPoints) {
  for (const char* name :
       {"muldiv.div0_word", "muldiv.overflow_rem", "muldiv.high_sign_mix",
        "muldiv.div_equal_operands", "muldiv.mul_result_zero",
        "muldiv.div_after_load"}) {
    EXPECT_TRUE(solve_and_check(name)) << name;
  }
}

TEST_F(PointSolverTest, SolvesTlbPoints) {
  for (const char* name : {"tlb.lookup", "tlb.hit", "tlb.store_perm",
                           "tlb.asid_nonzero", "tlb.refill_walk"}) {
    EXPECT_TRUE(solve_and_check(name)) << name;
  }
}

// Sweep: across every registered point the solver accepts, its program must
// cover the true bin in the large majority of cases. The deep-tail families
// are asserted individually above; this guards the aggregate behaviour the
// HyPFuzz escalation loop depends on.
TEST_F(PointSolverTest, SweepMajorityOfAcceptedPointsSolved) {
  std::size_t attempted = 0, solved = 0;
  std::string failed_names;
  for (std::size_t i = 0; i < db_.num_points(); ++i) {
    const auto id = static_cast<cov::PointId>(i);
    cov::UncoveredPoint up;
    up.name = db_.point_name(id);
    up.missing_true = true;
    if (PointSolver::unreachable(up.name)) continue;
    const auto prog = solver_.solve(up);
    if (!prog) continue;
    ++attempted;
    core_.reset(*prog);
    core_.run();
    if (db_.bin_covered(2 * i + 1)) {
      ++solved;
    } else if (failed_names.size() < 2000) {
      failed_names += up.name + " ";
    }
  }
  ASSERT_GT(attempted, 100u);
  EXPECT_GE(static_cast<double>(solved) / static_cast<double>(attempted), 0.75)
      << solved << "/" << attempted << " unsolved: " << failed_names;
}

// ---- HyPFuzz scheduler ------------------------------------------------------

TEST(HypFuzzTest, EscalatesOnStagnationAndSolvesPoints) {
  HypFuzzConfig cfg;
  cfg.stagnation_batches = 1;
  HypFuzzer fuzzer(7, cfg, test_platform());

  core::CampaignConfig cc;
  cc.num_tests = 600;
  cc.batch_size = 32;
  cc.platform = test_platform();
  cc.mismatch_detection = false;
  const core::CampaignResult res = core::run_campaign(fuzzer, cc);

  EXPECT_GT(fuzzer.escalations(), 0u);
  EXPECT_GT(fuzzer.solved_points(), 0u);
  EXPECT_GT(fuzzer.unreachable_points(), 0u);
  EXPECT_GT(res.final_cov_percent, 50.0);
}

TEST(HypFuzzTest, BeatsTheHuzzAtEqualTests) {
  core::CampaignConfig cc;
  cc.num_tests = 800;
  cc.batch_size = 32;
  cc.platform = test_platform();
  cc.mismatch_detection = false;

  HypFuzzConfig hcfg;
  hcfg.stagnation_batches = 1;
  HypFuzzer hyp(11, hcfg, test_platform());
  TheHuzzFuzzer huzz(11);
  const double hyp_cov = core::run_campaign(hyp, cc).final_cov_percent;
  const double huzz_cov = core::run_campaign(huzz, cc).final_cov_percent;
  // The formal assist must pay for itself on the deep tail.
  EXPECT_GT(hyp_cov, huzz_cov);
}

TEST(HypFuzzTest, DirectedQueueDrainsIntoBatches) {
  HypFuzzConfig cfg;
  cfg.stagnation_batches = 1;
  cfg.points_per_escalation = 4;
  HypFuzzer fuzzer(3, cfg, test_platform());

  // Simulate one stagnant feedback round with a live DB.
  cov::CoverageDB db;
  rtl::RtlCore core(rtl::CoreConfig::rocket(), db, test_platform());
  std::vector<core::Program> batch = fuzzer.next_batch(4);
  std::vector<cov::TestCoverage> covs(4);  // all-zero: no incremental bins
  std::vector<std::uint64_t> ctrl(4, 0);
  core::Feedback fb;
  fb.batch = &batch;
  fb.coverages = &covs;
  fb.ctrl_new_states = &ctrl;
  fb.db = &db;
  fuzzer.feedback(fb);

  EXPECT_GT(fuzzer.queued_directed(), 0u);
  const std::size_t queued = fuzzer.queued_directed();
  const auto next = fuzzer.next_batch(2);
  EXPECT_EQ(next.size(), 2u);
  EXPECT_EQ(fuzzer.queued_directed(), queued - 2);
}

// ---- PSOFuzz swarm ----------------------------------------------------------

TEST(PsoFuzzTest, WeightsStayInBounds) {
  PsoConfig cfg;
  cfg.num_particles = 4;
  PsoFuzzer fuzzer(5, cfg);

  core::CampaignConfig cc;
  cc.num_tests = 300;
  cc.batch_size = 16;
  cc.platform = test_platform();
  cc.mismatch_detection = false;
  core::run_campaign(fuzzer, cc);

  EXPECT_GT(fuzzer.swarm_updates(), 0u);
  for (std::size_t i = 0; i < fuzzer.num_particles(); ++i) {
    const auto& w = fuzzer.particle_weights(i);
    for (std::size_t d = 0; d + 1 < w.size(); ++d) {
      EXPECT_GE(w[d], cfg.weight_min);
      EXPECT_LE(w[d], cfg.weight_max);
    }
    EXPECT_GE(w.back(), 0.05);
    EXPECT_LE(w.back(), 0.9);
  }
}

TEST(PsoFuzzTest, GlobalBestImproves) {
  PsoFuzzer fuzzer(9);
  core::CampaignConfig cc;
  cc.num_tests = 200;
  cc.batch_size = 16;
  cc.platform = test_platform();
  cc.mismatch_detection = false;
  core::run_campaign(fuzzer, cc);
  // Early campaign always discovers points, so some particle earned fitness.
  EXPECT_GT(fuzzer.global_best_fitness(), 0.0);
}

TEST(PsoFuzzTest, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    PsoFuzzer f(seed);
    core::CampaignConfig cc;
    cc.num_tests = 150;
    cc.batch_size = 16;
    cc.platform = test_platform();
    cc.mismatch_detection = false;
    return core::run_campaign(f, cc).final_cov_percent;
  };
  EXPECT_DOUBLE_EQ(run(21), run(21));
  EXPECT_NE(run(21), run(22));
}

TEST(PsoFuzzTest, ReachesReasonableCoverage) {
  PsoFuzzer fuzzer(13);
  core::CampaignConfig cc;
  cc.num_tests = 600;
  cc.batch_size = 32;
  cc.platform = test_platform();
  cc.mismatch_detection = false;
  const auto res = core::run_campaign(fuzzer, cc);
  EXPECT_GT(res.final_cov_percent, 50.0);
}

}  // namespace
}  // namespace chatfuzz::baselines
