// Multi-metric coverage tests: toggle/FSM/statement semantics, the DUT
// hooks, and the campaign guidance ablation plumbing.
#include <gtest/gtest.h>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "coverage/multi.h"
#include "riscv/builder.h"
#include "riscv/encode.h"
#include "rtlsim/core.h"

namespace chatfuzz::cov {
namespace {

using riscv::Opcode;

TEST(ToggleCoverageTest, CountsEachDirectionOnce) {
  ToggleCoverage t(2);
  EXPECT_EQ(t.universe(), 2u * 64 * 2);
  t.observe_write(0, 0, 1);  // bit0 rises
  EXPECT_EQ(t.covered(), 1u);
  t.observe_write(0, 0, 1);  // same rise again: no new bin
  EXPECT_EQ(t.covered(), 1u);
  t.observe_write(0, 1, 0);  // bit0 falls
  EXPECT_EQ(t.covered(), 2u);
  t.observe_write(1, 0, 0xff);  // 8 rises on reg 1
  EXPECT_EQ(t.covered(), 10u);
}

TEST(ToggleCoverageTest, IgnoresOutOfRangeRegAndNoChange) {
  ToggleCoverage t(1);
  t.observe_write(5, 0, ~0ull);
  EXPECT_EQ(t.covered(), 0u);
  t.observe_write(0, 42, 42);
  EXPECT_EQ(t.covered(), 0u);
}

TEST(ToggleCoverageTest, PerTestSetResets) {
  ToggleCoverage t(1);
  t.observe_write(0, 0, 3);
  EXPECT_EQ(t.test_covered(), 2u);
  t.begin_test();
  EXPECT_EQ(t.test_covered(), 0u);
  EXPECT_EQ(t.covered(), 2u);  // cumulative survives
  t.observe_write(0, 0, 3);    // already-covered bins still count per test
  EXPECT_EQ(t.test_covered(), 2u);
}

TEST(FsmCoverageTest, StatesAndDeclaredTransitions) {
  FsmCoverage f;
  const auto id = f.register_fsm("demo", 3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(f.universe(), 3u + 3u);
  f.observe(id, 0, 1);
  EXPECT_EQ(f.fsm_states_covered(id), 1u);  // state 1 entered
  EXPECT_EQ(f.fsm_transitions_covered(id), 1u);
  f.observe(id, 1, 0);  // undeclared arc: state counts, arc does not
  EXPECT_EQ(f.fsm_states_covered(id), 2u);
  EXPECT_EQ(f.fsm_transitions_covered(id), 1u);
  f.observe(id, 1, 2);
  f.observe(id, 2, 0);
  EXPECT_EQ(f.covered(), f.universe());
}

TEST(StatementCoverageTest, SingleBinPerBlock) {
  StatementCoverage s;
  const auto a = s.register_stmt("a");
  const auto b = s.register_stmt("b");
  EXPECT_EQ(s.universe(), 2u);
  s.hit(a);
  s.hit(a);
  EXPECT_EQ(s.covered(), 1u);
  EXPECT_TRUE(s.stmt_covered(a));
  EXPECT_FALSE(s.stmt_covered(b));
  EXPECT_EQ(s.stmt_name(b), "b");
}

// ---- DUT hook integration ----------------------------------------------------

class MetricHooks : public ::testing::Test {
 protected:
  MetricHooks() : core_(rtl::CoreConfig::rocket(), db_, plat()) {
    core_.attach_metrics(&suite_);
  }
  static sim::Platform plat() {
    sim::Platform p;
    p.max_steps = 2048;
    return p;
  }
  void run(const std::vector<std::uint32_t>& prog) {
    suite_.begin_test();
    core_.reset(prog);
    core_.run();
  }

  cov::CoverageDB db_;
  MetricSuite suite_;
  rtl::RtlCore core_;
};

TEST_F(MetricHooks, AluProgramTogglesDestinationBits) {
  riscv::ProgramBuilder b;
  b.li(12, 0x7ff);   // many rising bits on x12
  b.li(12, 0);       // falls
  run(b.seal());
  EXPECT_GT(suite_.toggle().covered(), 8u);
  EXPECT_GT(suite_.toggle().test_covered(), 8u);
}

TEST_F(MetricHooks, StatementsReflectInstructionMix) {
  riscv::ProgramBuilder b;
  b.ld(12, 10, 0).sd(10, 12, 8).mul(12, 11, 13).div(12, 11, 13);
  b.addi(12, 12, 1);  // pure-ALU block
  b.jal(1, 4);        // jump block
  b.raw(riscv::enc_amo(Opcode::kAmoAddD, 12, 10, 11, false, false));
  b.raw(riscv::enc_b(Opcode::kBeq, 0, 0, 4));
  b.csrrw(12, riscv::csr::kMscratch, 11);
  b.fence_i();
  b.ebreak();
  run(b.seal());
  const auto& st = suite_.statement();
  // Every registered block fires for this mix except none: expect full.
  EXPECT_EQ(st.covered(), st.universe())
      << st.covered() << "/" << st.universe();
}

TEST_F(MetricHooks, PrivilegeFsmSeesDropAndTrapReturn) {
  riscv::ProgramBuilder b;
  // M -> U via mret, then ecall back to M (magic handler).
  b.li(5, 3);
  b.raw(riscv::enc_shift(Opcode::kSlli, 5, 5, 11));
  b.raw(riscv::enc_csr(Opcode::kCsrrc, 0, riscv::csr::kMstatus, 5));
  b.auipc(7, 0);
  b.addi(7, 7, 16);
  b.csrrw(0, riscv::csr::kMepc, 7);
  b.raw(riscv::enc_sys(Opcode::kMret));
  b.ecall();
  b.addi(0, 0, 0);
  run(b.seal());
  // At least: M self-arcs, M->U, U->M == 2 transitions + states M,U.
  EXPECT_GE(suite_.fsm().covered(), 5u);
}

TEST_F(MetricHooks, MuldivFsmWalksBusyStates) {
  riscv::ProgramBuilder b;
  b.mul(12, 11, 13).mul(12, 12, 11).div(12, 11, 13).addi(0, 0, 0);
  run(b.seal());
  // idle->mul, mul->mul, mul->div? (div after mul arcs through idle in this
  // program: mul,mul,div,addi => idle->mul, mul->mul, mul->div, div->idle).
  EXPECT_GE(suite_.fsm().covered(), 7u);
}

TEST_F(MetricHooks, DetachStopsObservation) {
  core_.attach_metrics(nullptr);
  riscv::ProgramBuilder b;
  b.li(12, 0x7ff);
  run(b.seal());
  EXPECT_EQ(suite_.toggle().covered(), 0u);
}

// ---- campaign guidance ablation ----------------------------------------------

core::CampaignConfig guided(core::GuidanceMetric g, std::size_t tests = 300) {
  core::CampaignConfig cfg;
  cfg.num_tests = tests;
  cfg.batch_size = 16;
  cfg.platform.max_steps = 512;
  cfg.mismatch_detection = false;
  cfg.guidance = g;
  return cfg;
}

TEST(GuidanceTest, AllMetricsProduceRunnableCampaigns) {
  for (const auto g :
       {core::GuidanceMetric::kCondition, core::GuidanceMetric::kToggle,
        core::GuidanceMetric::kStatement, core::GuidanceMetric::kFsm,
        core::GuidanceMetric::kCtrlReg}) {
    baselines::TheHuzzFuzzer fuzzer(17);
    const auto res = core::run_campaign(fuzzer, guided(g, 150));
    EXPECT_GT(res.final_cov_percent, 30.0) << core::guidance_name(g);
  }
}

TEST(GuidanceTest, MultiMetricsReportedWhenCollected) {
  baselines::TheHuzzFuzzer fuzzer(19);
  auto cfg = guided(core::GuidanceMetric::kCondition, 150);
  cfg.collect_multi_metrics = true;
  const auto res = core::run_campaign(fuzzer, cfg);
  EXPECT_GT(res.toggle_percent, 0.0);
  EXPECT_GT(res.fsm_percent, 0.0);
  EXPECT_GT(res.statement_percent, 0.0);
  EXPECT_LE(res.toggle_percent, 100.0);
  // Statement coverage saturates almost immediately — the reason it is a
  // weak guidance signal (and why the paper fuzzes condition coverage).
  EXPECT_GT(res.statement_percent, 90.0);
}

TEST(GuidanceTest, NamesAreStable) {
  EXPECT_STREQ(core::guidance_name(core::GuidanceMetric::kCondition),
               "condition");
  EXPECT_STREQ(core::guidance_name(core::GuidanceMetric::kToggle), "toggle");
  EXPECT_STREQ(core::guidance_name(core::GuidanceMetric::kCtrlReg),
               "ctrl-reg");
}

}  // namespace
}  // namespace chatfuzz::cov
