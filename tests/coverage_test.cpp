// Coverage substrate tests: DB bin accounting, the Coverage Calculator's
// stand-alone / incremental / total values (§IV-B), report round-trip, and
// the DifuzzRTL-style control-register coverage set.
#include <gtest/gtest.h>

#include "coverage/cover.h"

namespace chatfuzz::cov {
namespace {

TEST(CoverageDB, RegistrationCreatesTwoBinsPerPoint) {
  CoverageDB db;
  db.register_cond("a");
  db.register_cond("b");
  EXPECT_EQ(db.num_points(), 2u);
  EXPECT_EQ(db.num_bins(), 4u);
  EXPECT_EQ(db.total_covered(), 0u);
}

TEST(CoverageDB, HitSetsTheRightBin) {
  CoverageDB db;
  const PointId p = db.register_cond("x");
  db.begin_test();
  db.hit(p, true);
  EXPECT_TRUE(db.bin_covered(2 * p + 1));
  EXPECT_FALSE(db.bin_covered(2 * p));
  db.hit(p, false);
  EXPECT_TRUE(db.bin_covered(2 * p));
  EXPECT_EQ(db.total_covered(), 2u);
  EXPECT_DOUBLE_EQ(db.total_percent(), 100.0);
}

TEST(CoverageDB, HitsAccumulateCounts) {
  CoverageDB db;
  const PointId p = db.register_cond("x");
  db.begin_test();
  for (int i = 0; i < 5; ++i) db.hit(p, true);
  EXPECT_EQ(db.bin_hits(2 * p + 1), 5u);
}

TEST(CoverageDB, BeginTestClearsStandaloneOnly) {
  CoverageDB db;
  const PointId p = db.register_cond("x");
  db.begin_test();
  db.hit(p, true);
  EXPECT_EQ(db.test_covered(), 1u);
  db.begin_test();
  EXPECT_EQ(db.test_covered(), 0u);
  EXPECT_EQ(db.total_covered(), 1u);  // cumulative survives
}

TEST(CoverageDB, ResetHitsKeepsPoints) {
  CoverageDB db;
  const PointId p = db.register_cond("x");
  db.hit(p, true);
  db.reset_hits();
  EXPECT_EQ(db.num_points(), 1u);
  EXPECT_EQ(db.total_covered(), 0u);
}

TEST(Calculator, StandaloneIncrementalTotal) {
  CoverageDB db;
  const PointId a = db.register_cond("a");
  const PointId b = db.register_cond("b");
  CoverageCalculator calc(db);

  calc.begin_test();
  db.hit(a, true);
  TestCoverage t1 = calc.end_test();
  EXPECT_EQ(t1.standalone_bins, 1u);
  EXPECT_EQ(t1.incremental_bins, 1u);
  EXPECT_EQ(t1.total_bins, 1u);
  EXPECT_EQ(t1.universe_bins, 4u);

  // Second test re-hits a known bin and adds one new bin.
  calc.begin_test();
  db.hit(a, true);
  db.hit(b, false);
  TestCoverage t2 = calc.end_test();
  EXPECT_EQ(t2.standalone_bins, 2u);
  EXPECT_EQ(t2.incremental_bins, 1u);  // only b:false is new
  EXPECT_EQ(t2.total_bins, 2u);
}

TEST(Calculator, IncrementalSumsToTotal) {
  // Property: sum of incremental values across tests == final total.
  CoverageDB db;
  std::vector<PointId> ps;
  for (int i = 0; i < 16; ++i) ps.push_back(db.register_cond("p"));
  CoverageCalculator calc(db);
  std::size_t inc_sum = 0;
  std::uint64_t lcg = 12345;
  for (int t = 0; t < 20; ++t) {
    calc.begin_test();
    for (int h = 0; h < 10; ++h) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      db.hit(ps[(lcg >> 33) % ps.size()], (lcg >> 62) & 1);
    }
    inc_sum += calc.end_test().incremental_bins;
  }
  EXPECT_EQ(inc_sum, db.total_covered());
}

TEST(Calculator, PercentagesAreConsistent) {
  CoverageDB db;
  const PointId a = db.register_cond("a");
  db.register_cond("b");
  CoverageCalculator calc(db);
  calc.begin_test();
  db.hit(a, true);
  db.hit(a, false);
  const TestCoverage tc = calc.end_test();
  EXPECT_DOUBLE_EQ(tc.standalone_percent(), 50.0);
  EXPECT_DOUBLE_EQ(tc.total_percent(), 50.0);
}

TEST(Report, RoundTrip) {
  CoverageDB db;
  const PointId a = db.register_cond("fetch.icache.hit");
  const PointId b = db.register_cond("mem.dcache.hit");
  db.hit(a, true);
  db.hit(a, true);
  db.hit(b, false);
  const std::string text = write_report(db);
  const auto entries = parse_report(text);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "fetch.icache.hit");
  EXPECT_EQ(entries[0].true_hits, 2u);
  EXPECT_EQ(entries[0].false_hits, 0u);
  EXPECT_EQ(entries[1].name, "mem.dcache.hit");
  EXPECT_EQ(entries[1].true_hits, 0u);
  EXPECT_EQ(entries[1].false_hits, 1u);
}

TEST(Report, ParserIgnoresGarbage) {
  const auto entries = parse_report("# comment\nnot a line\nCOND bad\n");
  EXPECT_TRUE(entries.empty());
}

TEST(CtrlReg, CountsDistinctStates) {
  CtrlRegCoverage c;
  EXPECT_TRUE(c.observe(1));
  EXPECT_TRUE(c.observe(2));
  EXPECT_FALSE(c.observe(1));
  EXPECT_EQ(c.distinct_states(), 2u);
}

TEST(CtrlReg, PerTestNewStates) {
  CtrlRegCoverage c;
  c.begin_test();
  c.observe(1);
  c.observe(1);
  c.observe(2);
  EXPECT_EQ(c.test_new_states(), 2u);
  c.begin_test();
  c.observe(1);
  EXPECT_EQ(c.test_new_states(), 0u);
  c.observe(3);
  EXPECT_EQ(c.test_new_states(), 1u);
}

TEST(CtrlReg, ResetClears) {
  CtrlRegCoverage c;
  c.observe(1);
  c.reset();
  EXPECT_EQ(c.distinct_states(), 0u);
  EXPECT_TRUE(c.observe(1));
}

TEST(CtrlReg, ManyStatesStayDistinct) {
  // Membership is exact (the table grows instead of dropping inserts):
  // sharded campaigns rely on "counts" being independent of insertion
  // order, so no probe-limit collisions are tolerated.
  CtrlRegCoverage c;
  for (std::uint64_t i = 0; i < 5000; ++i) c.observe(i * 7919);
  EXPECT_EQ(c.distinct_states(), 5000u);
}

TEST(CtrlReg, GrowthRegimeIsInsertionOrderInvariant) {
  // Push two sets well past the initial table's 50%-load growth trigger
  // (32768 states) in opposite insertion orders; exact membership means
  // they must agree on every count.
  const std::uint64_t n = 50000;
  CtrlRegCoverage fwd, rev;
  for (std::uint64_t i = 0; i < n; ++i) fwd.observe(i * 0x9e3779b9ull);
  for (std::uint64_t i = n; i-- > 0;) rev.observe(i * 0x9e3779b9ull);
  EXPECT_EQ(fwd.distinct_states(), n);
  EXPECT_EQ(fwd.distinct_states(), rev.distinct_states());
  // Re-observing in either order finds nothing new.
  fwd.begin_test();
  for (std::uint64_t i = 0; i < n; ++i) fwd.observe(i * 0x9e3779b9ull);
  EXPECT_EQ(fwd.test_new_states(), 0u);
}

}  // namespace
}  // namespace chatfuzz::cov
