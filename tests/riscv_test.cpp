// Unit tests for the RISC-V ISA layer: encode/decode round-trips over the
// whole instruction table, immediate packing at boundary values,
// disassembler output, validity classification, and the program builder.
#include <gtest/gtest.h>

#include "riscv/alu.h"
#include "riscv/builder.h"
#include "riscv/decode.h"
#include "riscv/disasm.h"
#include "riscv/encode.h"

namespace chatfuzz::riscv {
namespace {

// ---- parameterized encode/decode round-trip over every opcode -------------

class OpcodeRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OpcodeRoundTrip, EncodeDecodeIdentity) {
  const InstrSpec& s = all_specs()[GetParam()];
  Decoded d;
  d.op = s.op;
  d.rd = 11;
  d.rs1 = 7;
  d.rs2 = 19;
  switch (s.format) {
    case Format::kI: d.imm = -77; break;
    case Format::kS: d.imm = 1001; break;
    case Format::kIShift64: d.imm = 43; break;
    case Format::kIShift32: d.imm = 17; break;
    case Format::kB: d.imm = -260; break;
    case Format::kU: d.imm = static_cast<std::int64_t>(0x12345) << 12; break;
    case Format::kJ: d.imm = 2048; break;
    case Format::kCsr: case Format::kCsrImm: d.csr = 0x340; break;
    case Format::kAmo: case Format::kLoadRes: d.aq = true; break;
    default: break;
  }
  // Fields not carried by the format must be zeroed to compare.
  Decoded expect = d;
  switch (s.format) {
    case Format::kR: expect.imm = 0; break;
    case Format::kI: case Format::kIShift64: case Format::kIShift32:
      expect.rs2 = 0; break;
    case Format::kS: case Format::kB: expect.rd = 0; break;
    case Format::kU: case Format::kJ: expect.rs1 = 0; expect.rs2 = 0; break;
    case Format::kFence: case Format::kSystem:
      expect.rd = 0; expect.rs1 = 0; expect.rs2 = 0; break;
    case Format::kSfence: expect.rd = 0; break;
    case Format::kCsr: case Format::kCsrImm: expect.rs2 = 0; break;
    case Format::kLoadRes: expect.rs2 = 0; break;
    default: break;
  }
  const std::uint32_t word = encode(d);
  const Decoded back = decode(word);
  EXPECT_EQ(back.op, s.op) << s.mnemonic;
  EXPECT_EQ(back.rd, expect.rd) << s.mnemonic;
  EXPECT_EQ(back.rs1, expect.rs1) << s.mnemonic;
  EXPECT_EQ(back.rs2, expect.rs2) << s.mnemonic;
  EXPECT_EQ(back.imm, expect.imm) << s.mnemonic;
  EXPECT_EQ(back.csr, expect.csr) << s.mnemonic;
  EXPECT_EQ(back.aq, expect.aq) << s.mnemonic;
  EXPECT_EQ(back.raw, word) << s.mnemonic;
}

TEST_P(OpcodeRoundTrip, MatchBitsAreSelfConsistent) {
  const InstrSpec& s = all_specs()[GetParam()];
  EXPECT_EQ(s.match & ~s.mask, 0u) << s.mnemonic << ": match outside mask";
  EXPECT_TRUE(is_valid(s.match)) << s.mnemonic;
  EXPECT_EQ(decode(s.match).op, s.op) << s.mnemonic;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::Range<std::size_t>(0, kNumOpcodes),
                         [](const auto& info) {
                           std::string n(
                               all_specs()[info.param].mnemonic);
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

// ---- immediates at boundaries ----------------------------------------------

TEST(Immediates, ITypeBoundaries) {
  for (std::int32_t imm : {-2048, -1, 0, 1, 2047}) {
    const Decoded d = decode(enc_i(Opcode::kAddi, 1, 2, imm));
    EXPECT_EQ(d.imm, imm);
  }
}

TEST(Immediates, STypeBoundaries) {
  for (std::int32_t imm : {-2048, -5, 0, 2047}) {
    const Decoded d = decode(enc_s(Opcode::kSd, 2, 3, imm));
    EXPECT_EQ(d.imm, imm);
  }
}

TEST(Immediates, BTypeBoundaries) {
  for (std::int32_t imm : {-4096, -2, 0, 2, 4094}) {
    const Decoded d = decode(enc_b(Opcode::kBeq, 1, 2, imm));
    EXPECT_EQ(d.imm, imm) << imm;
  }
}

TEST(Immediates, JTypeBoundaries) {
  for (std::int32_t imm : {-(1 << 20), -2, 0, 2, (1 << 20) - 2}) {
    const Decoded d = decode(enc_j(Opcode::kJal, 1, imm));
    EXPECT_EQ(d.imm, imm) << imm;
  }
}

TEST(Immediates, UTypeCarriesUpper20) {
  const Decoded neg = decode(enc_u(Opcode::kLui, 5, -1));
  EXPECT_EQ(neg.imm, -4096);  // 0xfffff000 sign-extended
  const Decoded pos = decode(enc_u(Opcode::kLui, 5, 0x7ffff));
  EXPECT_EQ(pos.imm, 0x7ffff000ll);
}

TEST(Immediates, FitsImm) {
  EXPECT_TRUE(fits_imm(Opcode::kAddi, 2047));
  EXPECT_FALSE(fits_imm(Opcode::kAddi, 2048));
  EXPECT_TRUE(fits_imm(Opcode::kBeq, -4096));
  EXPECT_FALSE(fits_imm(Opcode::kBeq, 3));  // odd branch offset
  EXPECT_TRUE(fits_imm(Opcode::kSlli, 63));
  EXPECT_FALSE(fits_imm(Opcode::kSlli, 64));
  EXPECT_FALSE(fits_imm(Opcode::kSlliw, 32));
}

// ---- validity classification ----------------------------------------------

TEST(Decode, ZeroWordIsInvalid) { EXPECT_FALSE(is_valid(0)); }
TEST(Decode, AllOnesIsInvalid) { EXPECT_FALSE(is_valid(0xffffffffu)); }

TEST(Decode, CompressedEncodingsAreInvalid) {
  // Low two bits != 0b11 denote RVC, which the model does not implement.
  EXPECT_FALSE(is_valid(0x00000001u));
  EXPECT_FALSE(is_valid(0x00008082u));
}

TEST(Decode, ReservedFunctFieldsAreInvalid) {
  // addi has funct3=0 under opcode 0x13; funct3=1 requires funct6=0 (slli).
  const std::uint32_t bad_slli = enc_shift(Opcode::kSlli, 1, 1, 1) | (1u << 30);
  EXPECT_FALSE(is_valid(bad_slli));
  // R-type with unknown funct7.
  const std::uint32_t bad_add = enc_r(Opcode::kAdd, 1, 2, 3) | (1u << 29);
  EXPECT_FALSE(is_valid(bad_add));
  // LR with rs2 != 0 is reserved.
  const std::uint32_t bad_lr = enc_amo(Opcode::kLrW, 1, 2, 0) | (5u << 20);
  EXPECT_FALSE(is_valid(bad_lr));
}

TEST(Decode, CountInvalid) {
  const std::vector<std::uint32_t> prog = {
      enc_i(Opcode::kAddi, 1, 0, 5), 0u, enc_r(Opcode::kAdd, 1, 1, 1),
      0xffffffffu};
  EXPECT_EQ(count_invalid(prog), 2u);
}

// ---- disassembler -----------------------------------------------------------

TEST(Disasm, BasicForms) {
  EXPECT_EQ(disasm(enc_i(Opcode::kAddi, 10, 11, -5)), "addi a0, a1, -5");
  EXPECT_EQ(disasm(enc_i(Opcode::kLw, 5, 2, 8)), "lw t0, 8(sp)");
  EXPECT_EQ(disasm(enc_s(Opcode::kSd, 2, 8, -16)), "sd s0, -16(sp)");
  EXPECT_EQ(disasm(enc_b(Opcode::kBne, 10, 0, -12)), "bne a0, zero, -12");
  EXPECT_EQ(disasm(enc_u(Opcode::kLui, 5, 0x12345)), "lui t0, 0x12345");
  EXPECT_EQ(disasm(enc_sys(Opcode::kEcall)), "ecall");
  EXPECT_EQ(disasm(enc_sys(Opcode::kMret)), "mret");
  EXPECT_EQ(disasm(enc_amo(Opcode::kAmoOrD, 8, 10, 9)), "amoor.d s0, s1, (a0)");
  EXPECT_EQ(disasm(enc_amo(Opcode::kLrW, 5, 10, 0)), "lr.w t0, (a0)");
  EXPECT_EQ(disasm(0u), ".word 0x00000000");
}

TEST(Disasm, PrivilegedForms) {
  // S-mode instructions and CSR names: these feed mismatch reports and
  // corpus dumps for the privileged/Sv39 surface, so a wrong rendering
  // makes trap-path triage actively misleading.
  EXPECT_EQ(disasm(enc_sys(Opcode::kSret)), "sret");
  EXPECT_EQ(disasm(enc_sys(Opcode::kWfi)), "wfi");
  EXPECT_EQ(disasm(enc_sfence(0, 0)), "sfence.vma");
  EXPECT_EQ(disasm(enc_sfence(10, 11)), "sfence.vma a0, a1");
  EXPECT_EQ(disasm(enc_csr(Opcode::kCsrrw, 0, csr::kSatp, 5)),
            "csrrw zero, satp, t0");
  EXPECT_EQ(disasm(enc_csr(Opcode::kCsrrs, 10, csr::kSepc, 0)),
            "csrrs a0, sepc, zero");
  EXPECT_EQ(disasm(enc_csr(Opcode::kCsrrs, 10, csr::kScause, 0)),
            "csrrs a0, scause, zero");
  EXPECT_EQ(disasm(enc_csr(Opcode::kCsrrs, 10, csr::kStvec, 0)),
            "csrrs a0, stvec, zero");
  EXPECT_EQ(disasm(enc_csr(Opcode::kCsrrs, 10, csr::kSstatus, 0)),
            "csrrs a0, sstatus, zero");
  EXPECT_EQ(disasm(enc_csr(Opcode::kCsrrw, 0, csr::kMedeleg, 6)),
            "csrrw zero, medeleg, t1");
  // Round trip: the rendered forms decode back to the same instruction.
  for (const std::uint32_t raw :
       {enc_sys(Opcode::kSret), enc_sfence(10, 11),
        enc_csr(Opcode::kCsrrw, 0, csr::kSatp, 5)}) {
    const Decoded d = decode(raw);
    ASSERT_TRUE(d.valid());
    EXPECT_EQ(encode(d), raw);
  }
}

TEST(Disasm, AqRlSuffixes) {
  EXPECT_EQ(disasm(enc_amo(Opcode::kAmoSwapW, 5, 6, 7, true, false)),
            "amoswap.w.aq t0, t2, (t1)");
  EXPECT_EQ(disasm(enc_amo(Opcode::kAmoSwapW, 5, 6, 7, true, true)),
            "amoswap.w.aqrl t0, t2, (t1)");
}

TEST(Disasm, AuditImplementsEq1) {
  const std::vector<std::uint32_t> prog = {
      enc_i(Opcode::kAddi, 1, 0, 5), 0u, enc_r(Opcode::kAdd, 1, 1, 1)};
  const DisasmAudit a = audit(prog);
  EXPECT_EQ(a.total, 3u);
  EXPECT_EQ(a.invalid, 1u);
  EXPECT_DOUBLE_EQ(a.reward(), 3.0 - 5.0 * 1.0);
}

// ---- builder ----------------------------------------------------------------

TEST(Builder, ForwardAndBackwardLabels) {
  ProgramBuilder b;
  b.li(10, 3);
  b.label("loop");
  b.addi(10, 10, -1);
  b.branch_to(Opcode::kBne, 10, 0, "loop");
  b.jal_to(0, "end");
  b.addi(11, 11, 1);  // skipped
  b.label("end");
  b.ecall();
  const auto prog = b.seal();
  ASSERT_EQ(prog.size(), 6u);
  const Decoded br = decode(prog[2]);
  EXPECT_EQ(br.op, Opcode::kBne);
  EXPECT_EQ(br.imm, -4);
  const Decoded j = decode(prog[3]);
  EXPECT_EQ(j.op, Opcode::kJal);
  EXPECT_EQ(j.imm, 8);
}

TEST(Builder, LiSplitsLargeConstants) {
  ProgramBuilder b;
  b.li(10, 0x12345678);
  const auto prog = b.seal();
  ASSERT_EQ(prog.size(), 2u);
  EXPECT_EQ(decode(prog[0]).op, Opcode::kLui);
  EXPECT_EQ(decode(prog[1]).op, Opcode::kAddi);
}

TEST(Builder, UndefinedLabelThrows) {
  ProgramBuilder b;
  b.branch_to(Opcode::kBeq, 0, 0, "nowhere");
  EXPECT_THROW(b.seal(), std::out_of_range);
}

// ---- shared ALU table -------------------------------------------------------

TEST(Alu, DivisionCornerCases) {
  EXPECT_EQ(alu_eval(Opcode::kDiv, 7, 0), ~0ull);
  EXPECT_EQ(alu_eval(Opcode::kDivu, 7, 0), ~0ull);
  EXPECT_EQ(alu_eval(Opcode::kRem, 7, 0), 7ull);
  EXPECT_EQ(alu_eval(Opcode::kRemu, 7, 0), 7ull);
  const auto int_min = static_cast<std::uint64_t>(INT64_MIN);
  EXPECT_EQ(alu_eval(Opcode::kDiv, int_min, static_cast<std::uint64_t>(-1)),
            int_min);
  EXPECT_EQ(alu_eval(Opcode::kRem, int_min, static_cast<std::uint64_t>(-1)), 0u);
}

TEST(Alu, WordOpsSignExtend) {
  EXPECT_EQ(alu_eval(Opcode::kAddw, 0x7fffffffull, 1),
            0xffffffff80000000ull);
  EXPECT_EQ(alu_eval(Opcode::kSubw, 0, 1), ~0ull);
  EXPECT_EQ(alu_eval(Opcode::kDivw, static_cast<std::uint32_t>(INT32_MIN),
                     static_cast<std::uint64_t>(-1)),
            static_cast<std::uint64_t>(INT32_MIN));
}

TEST(Alu, MulHighHalves) {
  EXPECT_EQ(alu_eval(Opcode::kMulhu, ~0ull, ~0ull), ~0ull - 1);
  EXPECT_EQ(alu_eval(Opcode::kMulh, static_cast<std::uint64_t>(-1), 2),
            ~0ull);  // -1*2 = -2, high half all ones
}

TEST(Alu, Classifiers) {
  EXPECT_TRUE(is_muldiv(Opcode::kMul));
  EXPECT_TRUE(is_muldiv(Opcode::kRemuw));
  EXPECT_FALSE(is_muldiv(Opcode::kAdd));
  EXPECT_TRUE(is_div(Opcode::kDivu));
  EXPECT_FALSE(is_div(Opcode::kMul));
}

}  // namespace
}  // namespace chatfuzz::riscv
