// Test-case minimizer tests: reductions must preserve the exact mismatch
// signature, shrink padded reproducers back to their kernel, and leave
// clean inputs alone.
#include <gtest/gtest.h>

#include "mismatch/minimize.h"
#include "riscv/builder.h"
#include "riscv/decode.h"
#include "riscv/encode.h"
#include "util/rng.h"
#include "corpus/generator.h"

namespace chatfuzz::mismatch {
namespace {

using riscv::Opcode;

Program padded_mul_repro(unsigned pad) {
  // A mul (Bug2 trigger) buried in ALU noise.
  riscv::ProgramBuilder b;
  Rng rng(3);
  for (unsigned i = 0; i < pad; ++i) {
    b.addi(static_cast<unsigned>(5 + i % 8),
           static_cast<unsigned>(5 + (i + 1) % 8),
           static_cast<std::int32_t>(rng.range(-100, 100)));
  }
  b.mul(12, 10, 11);
  for (unsigned i = 0; i < pad; ++i) {
    b.add(static_cast<unsigned>(5 + i % 8), 10, 11);
  }
  return b.seal();
}

TEST(Minimize, CleanInputReportsNoRepro) {
  riscv::ProgramBuilder b;
  b.li(10, 5).add(11, 10, 10);
  const MinimizeResult r = minimize(b.seal());
  EXPECT_FALSE(r.reproduced);
  EXPECT_TRUE(r.signature.empty());
}

TEST(Minimize, ShrinksPaddedBug2ReproToTheKernel) {
  const Program fat = padded_mul_repro(10);
  const MinimizeResult r = minimize(fat);
  ASSERT_TRUE(r.reproduced);
  EXPECT_EQ(r.signature, "rd-presence:mul:dut-missing");
  EXPECT_LE(r.reduced.size(), 2u) << "mul plus at most one residual word";
  // The kernel instruction must survive.
  bool has_mul = false;
  for (std::uint32_t w : r.reduced) {
    if (riscv::decode(w).op == Opcode::kMul) has_mul = true;
  }
  EXPECT_TRUE(has_mul);
  EXPECT_EQ(r.original_size, fat.size());
  EXPECT_GT(r.tests_run, 1u);
}

TEST(Minimize, ReducedInputStillReproducesSameSignature) {
  const Program fat = padded_mul_repro(6);
  const MinimizeResult r = minimize(fat);
  ASSERT_TRUE(r.reproduced);
  EXPECT_EQ(first_signature(r.reduced), r.signature);
}

TEST(Minimize, PreservesFinding1Signature) {
  riscv::ProgramBuilder b;
  b.li(9, 123);
  b.li(10, 0x1001);
  b.li(11, 77);
  b.lw(12, 10, 0);  // misaligned + out of range: Finding1
  b.add(13, 11, 9);
  const MinimizeResult r = minimize(b.seal());
  ASSERT_TRUE(r.reproduced);
  EXPECT_NE(r.signature.find("exception:lw"), std::string::npos);
  EXPECT_LT(r.reduced.size(), 7u);
  EXPECT_EQ(first_signature(r.reduced), r.signature);
}

TEST(Minimize, HandlesFuzzGeneratedMismatches) {
  // Property: for random fuzz inputs that mismatch, the minimizer always
  // returns a smaller-or-equal reproducer with the identical signature.
  Rng rng(9);
  int minimized = 0;
  for (int i = 0; i < 30 && minimized < 5; ++i) {
    const Program test = corpus::random_valid_program(rng, 24);
    const std::string sig = first_signature(test);
    if (sig.empty()) continue;
    const MinimizeResult r = minimize(test);
    ASSERT_TRUE(r.reproduced);
    EXPECT_EQ(r.signature, sig);
    EXPECT_LE(r.reduced.size(), test.size());
    EXPECT_EQ(first_signature(r.reduced), sig);
    ++minimized;
  }
  EXPECT_GE(minimized, 3) << "fuzz inputs stopped producing mismatches?";
}

}  // namespace
}  // namespace chatfuzz::mismatch
