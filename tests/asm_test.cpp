// Assembler tests: parse each syntactic form, round-trip disasm -> asm over
// the whole opcode table, and error reporting.
#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "riscv/asm.h"
#include "riscv/disasm.h"
#include "riscv/encode.h"
#include "util/rng.h"

namespace chatfuzz::riscv {
namespace {

TEST(Asm, RegisterNames) {
  EXPECT_EQ(parse_reg("zero"), 0);
  EXPECT_EQ(parse_reg("ra"), 1);
  EXPECT_EQ(parse_reg("sp"), 2);
  EXPECT_EQ(parse_reg("a0"), 10);
  EXPECT_EQ(parse_reg("t6"), 31);
  EXPECT_EQ(parse_reg("x0"), 0);
  EXPECT_EQ(parse_reg("x31"), 31);
  EXPECT_FALSE(parse_reg("x32").has_value());
  EXPECT_FALSE(parse_reg("q7").has_value());
}

TEST(Asm, BasicForms) {
  EXPECT_EQ(assemble_line("addi a0, a1, -5"), enc_i(Opcode::kAddi, 10, 11, -5));
  EXPECT_EQ(assemble_line("add a0, a1, a2"), enc_r(Opcode::kAdd, 10, 11, 12));
  EXPECT_EQ(assemble_line("lw t0, 8(sp)"), enc_i(Opcode::kLw, 5, 2, 8));
  EXPECT_EQ(assemble_line("sd s0, -16(sp)"), enc_s(Opcode::kSd, 2, 8, -16));
  EXPECT_EQ(assemble_line("beq a0, zero, -12"), enc_b(Opcode::kBeq, 10, 0, -12));
  EXPECT_EQ(assemble_line("jal ra, 2048"), enc_j(Opcode::kJal, 1, 2048));
  EXPECT_EQ(assemble_line("lui t0, 0x12345"), enc_u(Opcode::kLui, 5, 0x12345));
  EXPECT_EQ(assemble_line("slli a0, a0, 63"), enc_shift(Opcode::kSlli, 10, 10, 63));
  EXPECT_EQ(assemble_line("ecall"), enc_sys(Opcode::kEcall));
  EXPECT_EQ(assemble_line("mret"), enc_sys(Opcode::kMret));
  EXPECT_EQ(assemble_line("fence.i"), enc_sys(Opcode::kFenceI));
  EXPECT_EQ(assemble_line("csrrw t0, 0x340, a0"),
            enc_csr(Opcode::kCsrrw, 5, 0x340, 10));
  EXPECT_EQ(assemble_line("csrrwi zero, 0x305, 17"),
            enc_csr(Opcode::kCsrrwi, 0, 0x305, 17));
  EXPECT_EQ(assemble_line("amoor.d s0, s1, (a0)"),
            enc_amo(Opcode::kAmoOrD, 8, 10, 9));
  EXPECT_EQ(assemble_line("lr.w t0, (a0)"), enc_amo(Opcode::kLrW, 5, 10, 0));
  EXPECT_EQ(assemble_line(".word 0xdeadbeef"), 0xdeadbeefu);
}

TEST(Asm, AmoOrderingSuffixes) {
  EXPECT_EQ(assemble_line("amoswap.w.aq t0, t2, (t1)"),
            enc_amo(Opcode::kAmoSwapW, 5, 6, 7, true, false));
  EXPECT_EQ(assemble_line("amoswap.w.aqrl t0, t2, (t1)"),
            enc_amo(Opcode::kAmoSwapW, 5, 6, 7, true, true));
  EXPECT_EQ(assemble_line("lr.d.rl a0, (a1)"),
            enc_amo(Opcode::kLrD, 10, 11, 0, false, true));
}

TEST(Asm, Errors) {
  std::string err;
  EXPECT_FALSE(assemble_line("frobnicate a0, a1", &err).has_value());
  EXPECT_NE(err.find("unknown mnemonic"), std::string::npos);
  EXPECT_FALSE(assemble_line("addi a0, a1", &err).has_value());
  EXPECT_FALSE(assemble_line("addi a0, a1, 99999", &err).has_value());
  EXPECT_NE(err.find("out of range"), std::string::npos);
  EXPECT_FALSE(assemble_line("beq a0, a1, 3", &err).has_value());  // odd offset
  EXPECT_FALSE(assemble_line("lw t0, 8[sp]", &err).has_value());
  EXPECT_FALSE(assemble_line("addi q0, a1, 0", &err).has_value());
}

TEST(Asm, ProgramWithCommentsAndBlanks) {
  const auto prog = assemble(R"(
      # set up
      addi a0, zero, 5
      addi a1, zero, 3   // operands
      add  a2, a0, a1
      ecall
  )");
  ASSERT_TRUE(prog.has_value());
  ASSERT_EQ(prog->size(), 4u);
  EXPECT_EQ((*prog)[2], enc_r(Opcode::kAdd, 12, 10, 11));
}

TEST(Asm, ProgramErrorReportsLine) {
  std::string err;
  const auto prog = assemble("addi a0, zero, 1\nbogus x, y\n", &err);
  EXPECT_FALSE(prog.has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
}

// Round-trip property: disassemble -> assemble is the identity for every
// opcode with representative operands, and for random valid programs.
class AsmRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AsmRoundTrip, DisasmThenAsmIsIdentity) {
  const InstrSpec& s = all_specs()[GetParam()];
  Decoded d;
  d.op = s.op;
  d.rd = 9;
  d.rs1 = 17;
  d.rs2 = 25;
  switch (s.format) {
    case Format::kI: d.imm = -300; break;
    case Format::kS: d.imm = 777; break;
    case Format::kIShift64: d.imm = 13; break;
    case Format::kIShift32: d.imm = 7; break;
    case Format::kB: d.imm = -64; break;
    case Format::kU: d.imm = static_cast<std::int64_t>(0xabcde) << 12;
                     d.imm = static_cast<std::int32_t>(d.imm); break;
    case Format::kJ: d.imm = 4096; break;
    case Format::kCsr: case Format::kCsrImm: d.csr = 0x300; d.rs1 = 14; break;
    case Format::kAmo: d.aq = true; d.rl = true; break;
    default: break;
  }
  const std::uint32_t word = encode(d);
  std::string err;
  const auto back = assemble_line(disasm(word), &err);
  ASSERT_TRUE(back.has_value()) << disasm(word) << ": " << err;
  EXPECT_EQ(*back, word) << disasm(word);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, AsmRoundTrip,
                         ::testing::Range<std::size_t>(0, kNumOpcodes));

TEST(AsmRoundTripFuzz, RandomValidPrograms) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto prog = corpus::random_valid_program(rng, 32);
    for (std::uint32_t w : prog) {
      std::string err;
      const auto back = assemble_line(disasm(w), &err);
      ASSERT_TRUE(back.has_value()) << disasm(w) << ": " << err;
      EXPECT_EQ(*back, w) << disasm(w);
    }
  }
}

}  // namespace
}  // namespace chatfuzz::riscv
