// Golden-model (IsaSim) semantic tests: ALU, branches, memory, traps &
// privilege, CSRs, atomics, and the harness conventions (magic trampoline,
// stop reasons, deterministic reset state).
#include <gtest/gtest.h>

#include "isasim/sim.h"
#include "riscv/builder.h"
#include "riscv/encode.h"

namespace chatfuzz::sim {
namespace {

using riscv::Exception;
using riscv::Opcode;
using riscv::Priv;
namespace csr = riscv::csr;

class IsaSimTest : public ::testing::Test {
 protected:
  RunResult run(const std::vector<std::uint32_t>& prog) {
    sim_.reset(prog);
    return sim_.run();
  }
  Platform plat_;
  IsaSim sim_{Platform{}};
};

TEST_F(IsaSimTest, ResetStateIsDeterministic) {
  const std::vector<std::uint32_t> one = {riscv::enc_i(Opcode::kAddi, 1, 0, 1)};
  sim_.reset(one);
  const auto regs1 = initial_regs(plat_);
  EXPECT_EQ(sim_.reg(0), 0u);
  for (unsigned i = 1; i < 32; ++i) EXPECT_EQ(sim_.reg(i), regs1[i]) << i;
  EXPECT_EQ(sim_.pc(), plat_.ram_base);
  EXPECT_EQ(sim_.priv(), Priv::kMachine);
}

TEST_F(IsaSimTest, PointerRegistersAreInRam) {
  const auto regs = initial_regs(plat_);
  for (unsigned i = 4; i < 32; i += 2) {
    EXPECT_GE(regs[i], plat_.data_base()) << i;
    EXPECT_LT(regs[i], plat_.ram_base + plat_.ram_size) << i;
    EXPECT_EQ(regs[i] % 8, 0u) << i;
  }
}

TEST_F(IsaSimTest, AluBasics) {
  riscv::ProgramBuilder b;
  b.li(10, 100).li(11, -3);
  b.add(12, 10, 11);
  b.sub(13, 10, 11);
  b.raw(riscv::enc_r(Opcode::kSlt, 14, 11, 10));
  b.raw(riscv::enc_r(Opcode::kSltu, 15, 11, 10));  // -3 unsigned is huge
  run(b.seal());
  EXPECT_EQ(sim_.reg(12), 97u);
  EXPECT_EQ(sim_.reg(13), 103u);
  EXPECT_EQ(sim_.reg(14), 1u);
  EXPECT_EQ(sim_.reg(15), 0u);
}

TEST_F(IsaSimTest, X0IsNeverWritten) {
  riscv::ProgramBuilder b;
  b.addi(0, 0, 123);
  const auto r = run(b.seal());
  EXPECT_EQ(sim_.reg(0), 0u);
  ASSERT_EQ(r.trace.size(), 1u);
  EXPECT_FALSE(r.trace[0].has_rd_write);
}

TEST_F(IsaSimTest, LoadStoreRoundTrip) {
  riscv::ProgramBuilder b;
  b.li(10, 0x5a5a).sw(2, 10, -4).lw(11, 2, -4);  // li(0x5a5a) is lui+addi
  const auto r = run(b.seal());
  ASSERT_EQ(r.trace.size(), 4u);
  EXPECT_EQ(sim_.reg(11), 0x5a5aull);
  EXPECT_TRUE(r.trace[3].has_mem);
  EXPECT_FALSE(r.trace[3].mem_is_store);
  EXPECT_TRUE(r.trace[2].mem_is_store);
  EXPECT_EQ(r.trace[2].mem_addr, r.trace[3].mem_addr);
}

TEST_F(IsaSimTest, SignExtensionOnLoads) {
  riscv::ProgramBuilder b;
  b.li(10, -1);              // 0xffff...f
  b.sw(2, 10, -8);
  b.lw(11, 2, -8);           // sign-extends
  b.raw(riscv::enc_i(Opcode::kLwu, 12, 2, -8));  // zero-extends
  b.raw(riscv::enc_i(Opcode::kLb, 13, 2, -8));
  b.raw(riscv::enc_i(Opcode::kLbu, 14, 2, -8));
  run(b.seal());
  EXPECT_EQ(sim_.reg(11), ~0ull);
  EXPECT_EQ(sim_.reg(12), 0xffffffffull);
  EXPECT_EQ(sim_.reg(13), ~0ull);
  EXPECT_EQ(sim_.reg(14), 0xffull);
}

TEST_F(IsaSimTest, MisalignedLoadRaisesAndSkips) {
  riscv::ProgramBuilder b;
  b.lw(10, 2, -3);  // sp-3: misaligned for 4-byte access
  b.addi(11, 0, 7); // must still execute (trampoline resumes after)
  const auto r = run(b.seal());
  ASSERT_GE(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0].exception, Exception::kLoadAddrMisaligned);
  EXPECT_FALSE(r.trace[0].has_rd_write);
  EXPECT_EQ(sim_.reg(11), 7u);
  EXPECT_EQ(sim_.csr_value(csr::kMcause),
            static_cast<std::uint64_t>(Exception::kLoadAddrMisaligned));
}

TEST_F(IsaSimTest, OutOfRangeLoadIsAccessFault) {
  riscv::ProgramBuilder b;
  b.li(10, 0x1000);  // far below RAM
  b.lw(11, 10, 0);
  const auto r = run(b.seal());
  EXPECT_EQ(r.trace.back().exception, Exception::kLoadAccessFault);
}

TEST_F(IsaSimTest, MisalignedAndOutOfRangePrefersMisaligned) {
  // Spec priority (paper Finding1): misaligned outranks access fault.
  riscv::ProgramBuilder b;
  b.li(10, 0x1001);
  b.lw(11, 10, 0);
  const auto r = run(b.seal());
  EXPECT_EQ(r.trace.back().exception, Exception::kLoadAddrMisaligned);
}

TEST_F(IsaSimTest, EcallTrapsWithPrivCause) {
  riscv::ProgramBuilder b;
  b.ecall();
  const auto r = run(b.seal());
  EXPECT_EQ(r.trace[0].exception, Exception::kEcallFromM);
  EXPECT_EQ(sim_.csr_value(csr::kMepc), plat_.ram_base);
}

TEST_F(IsaSimTest, IllegalInstructionRaises) {
  const auto r = run(std::vector<std::uint32_t>{0xffffffffu});
  EXPECT_EQ(r.trace[0].exception, Exception::kIllegalInstruction);
  EXPECT_EQ(sim_.csr_value(csr::kMtval), 0xffffffffull);
}

TEST_F(IsaSimTest, BranchTakenAndNotTaken) {
  riscv::ProgramBuilder b;
  b.li(10, 1).li(11, 2);
  b.branch_to(Opcode::kBlt, 10, 11, "skip");
  b.li(12, 99);  // must be skipped
  b.label("skip");
  b.branch_to(Opcode::kBeq, 10, 11, "never");
  b.li(13, 42);  // must execute (branch not taken)
  b.label("never");
  run(b.seal());
  EXPECT_EQ(sim_.reg(12), 0xb02ull & 0 ? 1 : sim_.reg(12));  // placeholder
  EXPECT_NE(sim_.reg(13), 0u);
  EXPECT_EQ(sim_.reg(13), 42u);
}

TEST_F(IsaSimTest, JalLinksAndJumps) {
  riscv::ProgramBuilder b;
  b.jal_to(1, "target");
  b.li(10, 1);  // skipped
  b.label("target");
  b.li(11, 2);
  run(b.seal());
  EXPECT_EQ(sim_.reg(1), plat_.ram_base + 4);
  EXPECT_EQ(sim_.reg(11), 2u);
}

TEST_F(IsaSimTest, JalrClearsLowBit) {
  riscv::ProgramBuilder b;
  b.auipc(10, 0);                  // pc
  b.jalr(1, 10, 9);                // target pc+9, low bit cleared -> pc+8
  b.li(11, 7);                     // at pc+8: executes
  run(b.seal());
  EXPECT_EQ(sim_.reg(11), 7u);
}

TEST_F(IsaSimTest, MretDropsToUserAndEcallComesBack) {
  riscv::ProgramBuilder b;
  // Set mepc to the instruction after mret, leave MPP=0 (user), mret.
  b.auipc(10, 0);
  b.addi(10, 10, 16);
  b.csrrw(0, csr::kMepc, 10);
  b.raw(riscv::enc_sys(Opcode::kMret));
  b.ecall();  // now in U-mode: cause = ecall-from-U
  const auto r = run(b.seal());
  ASSERT_GE(r.trace.size(), 5u);
  EXPECT_EQ(r.trace[4].priv, Priv::kUser);
  EXPECT_EQ(r.trace[4].exception, Exception::kEcallFromU);
}

TEST_F(IsaSimTest, UserModeCannotTouchMachineCsrs) {
  riscv::ProgramBuilder b;
  b.auipc(10, 0);
  b.addi(10, 10, 16);
  b.csrrw(0, csr::kMepc, 10);
  b.raw(riscv::enc_sys(Opcode::kMret));    // -> U mode
  b.csrrs(11, csr::kMstatus, 0);           // illegal from U
  const auto r = run(b.seal());
  EXPECT_EQ(r.trace[4].exception, Exception::kIllegalInstruction);
}

TEST_F(IsaSimTest, WfiStopsTheRun) {
  riscv::ProgramBuilder b;
  b.raw(riscv::enc_sys(Opcode::kWfi));
  const auto r = run(b.seal());
  EXPECT_EQ(r.stop, StopReason::kWfi);
}

TEST_F(IsaSimTest, CsrReadWriteRoundTrip) {
  riscv::ProgramBuilder b;
  b.li(10, 0x1234);
  b.csrrw(11, csr::kMscratch, 10);   // old (0) -> x11, write 0x1234
  b.csrrs(12, csr::kMscratch, 0);    // read back
  run(b.seal());
  EXPECT_EQ(sim_.reg(11), 0u);
  EXPECT_EQ(sim_.reg(12), 0x1234ull);
}

TEST_F(IsaSimTest, ReadOnlyCsrWriteIsIllegal) {
  riscv::ProgramBuilder b;
  b.csrrw(1, csr::kMhartid, 10);
  const auto r = run(b.seal());
  EXPECT_EQ(r.trace[0].exception, Exception::kIllegalInstruction);
}

TEST_F(IsaSimTest, CsrrsWithX0DoesNotWriteReadOnly) {
  riscv::ProgramBuilder b;
  b.csrrs(11, csr::kMhartid, 0);  // pure read of an RO CSR: legal
  const auto r = run(b.seal());
  EXPECT_EQ(r.trace[0].exception, Exception::kNone);
  EXPECT_EQ(sim_.reg(11), 0u);
}

TEST_F(IsaSimTest, UnknownCsrIsIllegal) {
  riscv::ProgramBuilder b;
  b.csrrs(11, 0x123, 0);
  const auto r = run(b.seal());
  EXPECT_EQ(r.trace[0].exception, Exception::kIllegalInstruction);
}

TEST_F(IsaSimTest, MinstretCountsRetiredOnly) {
  riscv::ProgramBuilder b;
  b.li(10, 1);          // 1 instr
  b.ecall();            // traps: not retired
  b.csrrs(11, csr::kInstret, 0);
  run(b.seal());
  // x11 holds instret *before* the csrrs retires: li (1 instr from li small)
  EXPECT_EQ(sim_.reg(11), 1u);
}

TEST_F(IsaSimTest, AmoAddReadsOldWritesSum) {
  riscv::ProgramBuilder b;
  b.li(10, 5);
  b.sw(4, 10, 0);  // mem[x4] = 5 (x4 is a pointer register)
  b.li(11, 3);
  b.raw(riscv::enc_amo(Opcode::kAmoAddW, 12, 4, 11));
  b.lw(13, 4, 0);
  const auto r = run(b.seal());
  EXPECT_EQ(sim_.reg(12), 5u);   // old value
  EXPECT_EQ(sim_.reg(13), 8u);   // new value
  EXPECT_TRUE(r.trace[3].mem_is_store);  // the amoadd itself
}

TEST_F(IsaSimTest, LrScSuccessAndFailure) {
  riscv::ProgramBuilder b;
  b.li(11, 77);
  b.raw(riscv::enc_amo(Opcode::kLrW, 10, 4, 0));
  b.raw(riscv::enc_amo(Opcode::kScW, 12, 4, 11));   // success: rd=0
  b.raw(riscv::enc_amo(Opcode::kScW, 13, 4, 11));   // no reservation: rd=1
  b.lw(14, 4, 0);
  run(b.seal());
  EXPECT_EQ(sim_.reg(12), 0u);
  EXPECT_EQ(sim_.reg(13), 1u);
  EXPECT_EQ(sim_.reg(14), 77u);
}

TEST_F(IsaSimTest, ScToDifferentAddressFails) {
  riscv::ProgramBuilder b;
  b.raw(riscv::enc_amo(Opcode::kLrW, 10, 4, 0));
  b.addi(5, 4, 64);                                  // different address
  b.raw(riscv::enc_amo(Opcode::kScW, 12, 5, 11));
  run(b.seal());
  EXPECT_EQ(sim_.reg(12), 1u);
}

TEST_F(IsaSimTest, MisalignedAmoIsStoreMisaligned) {
  riscv::ProgramBuilder b;
  b.addi(5, 4, 2);
  b.raw(riscv::enc_amo(Opcode::kAmoAddW, 12, 5, 11));
  const auto r = run(b.seal());
  EXPECT_EQ(r.trace[1].exception, Exception::kStoreAddrMisaligned);
}

TEST_F(IsaSimTest, SelfModifyingCodeIsCoherent) {
  // The golden model always fetches fresh memory: overwriting the next
  // instruction takes effect immediately.
  riscv::ProgramBuilder b;
  const std::uint32_t li_99 = riscv::enc_i(Opcode::kAddi, 10, 0, 99);
  b.li(11, static_cast<std::int32_t>(li_99));
  b.auipc(12, 0);
  b.sw(12, 11, 12);          // overwrite the instruction 12 bytes ahead
  b.li(10, 1);               // this word is replaced by "li a0, 99"
  run(b.seal());
  EXPECT_EQ(sim_.reg(10), 99u);
}

TEST_F(IsaSimTest, StepLimitStopsLoops) {
  riscv::ProgramBuilder b;
  b.label("spin");
  b.jal_to(0, "spin");
  const auto r = run(b.seal());
  EXPECT_EQ(r.stop, StopReason::kStepLimit);
  EXPECT_EQ(r.steps, plat_.max_steps);
}

TEST_F(IsaSimTest, PcEscapeStops) {
  riscv::ProgramBuilder b;
  b.jalr(0, 0, 16);  // jump to absolute 16: outside RAM
  const auto r = run(b.seal());
  EXPECT_EQ(r.stop, StopReason::kPcEscape);
}

TEST_F(IsaSimTest, ZeroWordStopsAsProgramEnd) {
  const auto r = run(std::vector<std::uint32_t>{riscv::enc_i(Opcode::kAddi, 1, 0, 1)});
  // Fallthrough into zeroed padding.
  EXPECT_EQ(r.stop, StopReason::kProgramEnd);
  EXPECT_EQ(r.trace.size(), 1u);
}

TEST_F(IsaSimTest, DivisionCornerCasesArchitectural) {
  riscv::ProgramBuilder b;
  b.li(10, 7).li(11, 0);
  b.div(12, 10, 11);
  b.raw(riscv::enc_r(Opcode::kRem, 13, 10, 11));
  run(b.seal());
  EXPECT_EQ(sim_.reg(12), ~0ull);
  EXPECT_EQ(sim_.reg(13), 7u);
}

TEST_F(IsaSimTest, MulhProducesHighHalf) {
  riscv::ProgramBuilder b;
  b.li(10, -1).li(11, -1);
  b.raw(riscv::enc_r(Opcode::kMulhu, 12, 10, 11));
  run(b.seal());
  EXPECT_EQ(sim_.reg(12), ~0ull - 1);
}

TEST_F(IsaSimTest, TrapSetsMstatusMppAndMpie) {
  riscv::ProgramBuilder b;
  b.li(10, 0x8);                       // MIE
  b.csrrs(0, csr::kMstatus, 10);       // enable MIE
  b.ecall();
  run(b.seal());
  const std::uint64_t ms = sim_.csr_value(csr::kMstatus);
  EXPECT_EQ(ms & mstatus::kMie, 0u);        // cleared on trap
  EXPECT_NE(ms & mstatus::kMpie, 0u);       // saved
  EXPECT_EQ((ms & mstatus::kMppMask) >> mstatus::kMppShift, 3u);  // from M
}

}  // namespace
}  // namespace chatfuzz::sim
