// Tests for the ML-stack extensions: BPE tokenizer, nucleus sampling,
// learning-rate schedules, and the PPO entropy bonus.
#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "ml/bpe.h"
#include "ml/gpt.h"
#include "ml/ppo.h"
#include "ml/sampler.h"
#include "ml/schedule.h"
#include "ml/tokenizer.h"

namespace chatfuzz::ml {
namespace {

std::vector<std::vector<std::uint32_t>> small_corpus(std::size_t n,
                                                     std::uint64_t seed = 3) {
  corpus::CorpusGenerator gen({}, seed);
  return gen.dataset(n);
}

// ---- BPE ---------------------------------------------------------------------

TEST(BpeTest, RoundTripsPrograms) {
  const auto corpus = small_corpus(60);
  const auto tok = BpeTokenizer::train(corpus, 400);
  corpus::CorpusGenerator fresh({}, 77);
  for (int i = 0; i < 20; ++i) {
    const auto prog = fresh.function();
    const auto enc = tok.encode(prog, true, true);
    EXPECT_EQ(tok.decode(enc), prog);
  }
}

TEST(BpeTest, LearnsCompressingMerges) {
  const auto corpus = small_corpus(80);
  const auto tok = BpeTokenizer::train(corpus, 600);
  EXPECT_GT(tok.num_merges(), 0);
  // Machine code is highly repetitive: merges must compress the corpus they
  // were trained on by a solid margin over byte level.
  EXPECT_GT(tok.compression_ratio(corpus), 1.3);
}

TEST(BpeTest, VocabAccountingAndSpecials) {
  const auto tok = BpeTokenizer::train(small_corpus(30), 300);
  EXPECT_EQ(tok.vocab_size(), 256 + tok.num_merges() + 3);
  EXPECT_EQ(tok.eos(), tok.bos() + 1);
  EXPECT_EQ(tok.pad(), tok.bos() + 2);
  const auto enc = tok.encode(small_corpus(1, 9)[0], true, true);
  EXPECT_EQ(enc.front(), tok.bos());
  EXPECT_EQ(enc.back(), tok.eos());
}

TEST(BpeTest, DecodeStopsAtEosAndSkipsSpecials) {
  const auto tok = BpeTokenizer::train(small_corpus(30), 300);
  const std::vector<std::uint32_t> prog = {0x00000013u};  // addi x0,x0,0
  auto enc = tok.encode(prog, true, true);
  enc.push_back(0x42);  // garbage after EOS must be ignored
  EXPECT_EQ(tok.decode(enc), prog);
}

TEST(BpeTest, SerializeRoundTrip) {
  const auto corpus = small_corpus(50);
  const auto tok = BpeTokenizer::train(corpus, 500);
  const auto back = BpeTokenizer::deserialize(tok.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_merges(), tok.num_merges());
  const auto prog = small_corpus(1, 5)[0];
  EXPECT_EQ(back->encode(prog), tok.encode(prog));
}

TEST(BpeTest, DeserializeRejectsMalformed) {
  EXPECT_FALSE(BpeTokenizer::deserialize("").has_value());
  EXPECT_FALSE(BpeTokenizer::deserialize("xxx v1 2\n1 2\n3 4\n").has_value());
  EXPECT_FALSE(BpeTokenizer::deserialize("bpe v2 0\n").has_value());
  // Merge referencing a not-yet-created id.
  EXPECT_FALSE(BpeTokenizer::deserialize("bpe v1 1\n300 4\n").has_value());
  // Truncated merge list.
  EXPECT_FALSE(BpeTokenizer::deserialize("bpe v1 2\n1 2\n").has_value());
}

TEST(BpeTest, MinimalVocabMeansNoMerges) {
  const auto tok = BpeTokenizer::train(small_corpus(20), 259);
  EXPECT_EQ(tok.num_merges(), 0);
  const auto prog = small_corpus(1, 6)[0];
  // Pure byte-level: 4 tokens per instruction.
  EXPECT_EQ(tok.encode(prog, false, false).size(), prog.size() * 4);
}

// ---- LR schedule ---------------------------------------------------------------

TEST(LrScheduleTest, WarmupRampsLinearly) {
  LrSchedule s;
  s.base_lr = 1.0f;
  s.warmup_steps = 10;
  s.total_steps = 100;
  EXPECT_FLOAT_EQ(s.at(0), 0.1f);
  EXPECT_FLOAT_EQ(s.at(4), 0.5f);
  EXPECT_FLOAT_EQ(s.at(9), 1.0f);
}

TEST(LrScheduleTest, ConstantHoldsAfterWarmup) {
  LrSchedule s;
  s.base_lr = 2.0f;
  s.warmup_steps = 5;
  EXPECT_FLOAT_EQ(s.at(5), 2.0f);
  EXPECT_FLOAT_EQ(s.at(500), 2.0f);
}

TEST(LrScheduleTest, CosineDecaysToFloor) {
  LrSchedule s;
  s.kind = LrSchedule::Kind::kCosine;
  s.base_lr = 1.0f;
  s.min_lr = 0.1f;
  s.total_steps = 100;
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_NEAR(s.at(50), 0.55f, 1e-4);
  EXPECT_NEAR(s.at(100), 0.1f, 1e-5);
  EXPECT_NEAR(s.at(1000), 0.1f, 1e-5);  // clamped past the horizon
  // Monotone decreasing.
  for (int t = 1; t <= 100; ++t) EXPECT_LE(s.at(t), s.at(t - 1) + 1e-6f);
}

TEST(LrScheduleTest, LinearDecay) {
  LrSchedule s;
  s.kind = LrSchedule::Kind::kLinear;
  s.base_lr = 1.0f;
  s.total_steps = 10;
  EXPECT_NEAR(s.at(5), 0.5f, 1e-5);
  EXPECT_NEAR(s.at(10), 0.0f, 1e-6);
}

// ---- nucleus sampling ------------------------------------------------------------

GptConfig tiny_config() {
  GptConfig cfg;
  cfg.vocab = Tokenizer::kVocabSize;
  cfg.ctx = 32;
  cfg.n_embd = 32;
  cfg.n_head = 2;
  cfg.n_layer = 1;
  return cfg;
}

TEST(TopPTest, TinyTopPIsGreedy) {
  Gpt model(tiny_config(), 123);
  SampleConfig greedy_cfg;
  greedy_cfg.temperature = 1.0f;
  greedy_cfg.top_k = 0;
  greedy_cfg.top_p = 1e-6f;  // nucleus collapses to argmax
  greedy_cfg.max_new_tokens = 8;
  greedy_cfg.stop_at_eos = false;
  Sampler s(greedy_cfg);
  Rng r1(1), r2(999);
  const auto a = s.generate(model, {{Tokenizer::kBos}}, r1);
  const auto b = s.generate(model, {{Tokenizer::kBos}}, r2);
  // Argmax sampling is RNG-independent.
  EXPECT_EQ(a[0].response, b[0].response);
}

TEST(TopPTest, FullTopPMatchesDisabled) {
  Gpt model(tiny_config(), 123);
  SampleConfig c1, c2;
  c1.top_p = 1.0f;
  c2.top_p = 0.9999999f;  // numerically full nucleus
  c1.max_new_tokens = c2.max_new_tokens = 8;
  Rng r1(7), r2(7);
  const auto a = Sampler(c1).generate(model, {{Tokenizer::kBos}}, r1);
  const auto b = Sampler(c2).generate(model, {{Tokenizer::kBos}}, r2);
  EXPECT_EQ(a[0].response, b[0].response);
}

// ---- PPO entropy bonus ------------------------------------------------------------

TEST(EntropyBonusTest, ReportsEntropyAndKeepsItHigher) {
  // Train two policies toward a degenerate reward (always prefer token 0);
  // the entropy-regularized one must stay measurably more entropic.
  const auto corpus = small_corpus(24);
  auto run = [&](float coef) {
    Gpt policy(tiny_config(), 5);
    Gpt reference(tiny_config(), 5);
    PpoConfig cfg;
    cfg.entropy_coef = coef;
    cfg.kl_beta = 0.0f;  // isolate the entropy effect
    cfg.lr = 5e-3f;
    PpoTrainer trainer(policy, reference, cfg);
    SampleConfig sc;
    sc.max_new_tokens = 8;
    sc.min_new_tokens = 4;
    Sampler sampler(sc);
    Rng rng(11);
    float last_entropy = 0.f;
    for (int iter = 0; iter < 6; ++iter) {
      std::vector<std::vector<int>> prompts(8, {Tokenizer::kBos});
      auto gens = sampler.generate(policy, prompts, rng);
      std::vector<double> rewards(gens.size());
      for (std::size_t i = 0; i < gens.size(); ++i) {
        double r = 0;
        for (int t : gens[i].response) r += (t == 0) ? 1.0 : -1.0;
        rewards[i] = r;
      }
      const PpoStats st = trainer.update(gens, rewards);
      last_entropy = st.mean_entropy;
      EXPECT_GT(st.mean_entropy, 0.f);
    }
    return last_entropy;
  };
  const float without = run(0.0f);
  const float with = run(0.1f);
  EXPECT_GT(with, without);
}

}  // namespace
}  // namespace chatfuzz::ml
