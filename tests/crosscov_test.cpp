// Deep-instrumentation semantics tests: the cross/sequence condition points
// that form the DUT's "hard tail" must be reachable exactly by their
// intended triggers — these assumptions underpin every coverage comparison
// in the benches.
#include <gtest/gtest.h>

#include "coverage/merge.h"
#include "isasim/sim.h"
#include "riscv/builder.h"
#include "riscv/encode.h"
#include "rtlsim/core.h"

namespace chatfuzz::rtl {
namespace {

using riscv::Opcode;
namespace csr = riscv::csr;

class CrossCov : public ::testing::Test {
 protected:
  CrossCov() : core_(CoreConfig::rocket(), db_, plat()) {}

  static sim::Platform plat() {
    sim::Platform p;
    p.max_steps = 2048;
    return p;
  }

  void run(const std::vector<std::uint32_t>& prog) {
    db_.begin_test();
    core_.reset(prog);
    core_.run();
  }

  bool covered(const std::string& name, bool outcome) const {
    for (std::size_t i = 0; i < db_.num_points(); ++i) {
      if (db_.point_name(static_cast<cov::PointId>(i)) == name) {
        return db_.bin_covered(2 * i + (outcome ? 1 : 0));
      }
    }
    ADD_FAILURE() << "no such point: " << name;
    return false;
  }

  /// Emits the M->U (or M->S) transition dance at the current build point.
  static void emit_privilege_drop(riscv::ProgramBuilder& b, bool to_super) {
    if (to_super) {
      b.li(28, 1);
      b.raw(riscv::enc_shift(Opcode::kSlli, 28, 28, 11));  // MPP = 0b01
      b.csrrs(0, csr::kMstatus, 28);
    }
    b.auipc(29, 0);
    b.addi(29, 29, 16);
    b.csrrw(0, csr::kMepc, 29);
    b.raw(riscv::enc_sys(Opcode::kMret));
  }

  cov::CoverageDB db_;
  RtlCore core_;
};

TEST_F(CrossCov, UserModeOpcodeCrossNeedsPrivilegeDrop) {
  // Plain M-mode execution covers only the false bins.
  riscv::ProgramBuilder plain;
  plain.add(10, 11, 12);
  run(plain.seal());
  EXPECT_FALSE(covered("cross.user.op.add", true));
  EXPECT_TRUE(covered("cross.user.op.add", false));

  // After dropping to U-mode, the same add covers the true bin.
  riscv::ProgramBuilder b;
  emit_privilege_drop(b, /*to_super=*/false);
  b.add(10, 11, 12);
  run(b.seal());
  EXPECT_TRUE(covered("cross.user.op.add", true));
  EXPECT_FALSE(covered("cross.super.op.add", true));
}

TEST_F(CrossCov, SupervisorClassCrossNeedsMppSetup) {
  riscv::ProgramBuilder b;
  emit_privilege_drop(b, /*to_super=*/true);
  b.lw(10, 4, 0);  // load while in S-mode
  run(b.seal());
  EXPECT_TRUE(covered("cross.super.load", true));
  EXPECT_FALSE(covered("cross.user.load", true));
}

TEST_F(CrossCov, TlbUnitConsultedOnlyOutsideMachineMode) {
  // satp.MODE = Sv39 in M-mode: TLB not consulted (M is always Bare).
  riscv::ProgramBuilder m;
  m.li(10, static_cast<std::int32_t>(csr::kSatpModeSv39));
  m.slli(10, 10, static_cast<unsigned>(csr::kSatpModeShift));
  m.csrrw(0, csr::kSatp, 10);
  m.lw(11, 4, 0);
  run(m.seal());
  EXPECT_FALSE(covered("tlb.lookup", true));
  EXPECT_TRUE(covered("tlb.lookup", false));  // consulted-check evaluated

  // satp.MODE = Sv39 then drop to U-mode: the next fetch consults the TLB
  // (and page-faults on the empty table, which is fine for this point).
  riscv::ProgramBuilder b;
  b.li(10, static_cast<std::int32_t>(csr::kSatpModeSv39));
  b.slli(10, 10, static_cast<unsigned>(csr::kSatpModeShift));
  b.csrrw(0, csr::kSatp, 10);
  emit_privilege_drop(b, false);
  b.lw(11, 4, 0);
  run(b.seal());
  EXPECT_TRUE(covered("tlb.lookup", true));
  EXPECT_TRUE(covered("tlb.store_perm", false));
}

TEST_F(CrossCov, SequencePairDivAfterDiv) {
  riscv::ProgramBuilder one;
  one.div(10, 11, 12);
  one.add(13, 10, 10);
  one.div(14, 11, 12);  // div, but not back-to-back
  run(one.seal());
  EXPECT_FALSE(covered("seq.div_after_div", true));

  riscv::ProgramBuilder two;
  two.div(10, 11, 12);
  two.div(13, 11, 12);
  run(two.seal());
  EXPECT_TRUE(covered("seq.div_after_div", true));
}

TEST_F(CrossCov, StoreToLoadForwardNeedsSameAddress) {
  riscv::ProgramBuilder b;
  b.sd(4, 11, 0);
  b.ld(12, 4, 0);  // same address, back-to-back
  run(b.seal());
  EXPECT_TRUE(covered("seq.store_to_load_forward", true));

  cov::CoverageDB db2;
  RtlCore core2(CoreConfig::rocket(), db2, plat());
  riscv::ProgramBuilder c;
  c.sd(4, 11, 0);
  c.ld(12, 4, 8);  // different address
  db2.begin_test();
  core2.reset(c.seal());
  core2.run();
  bool hit = false;
  for (std::size_t i = 0; i < db2.num_points(); ++i) {
    if (db2.point_name(static_cast<cov::PointId>(i)) ==
        "seq.store_to_load_forward") {
      hit = db2.bin_covered(2 * i + 1);
    }
  }
  EXPECT_FALSE(hit);
}

TEST_F(CrossCov, FenceiAfterStoreSequence) {
  riscv::ProgramBuilder b;
  b.sw(4, 11, 0);
  b.fence_i();
  run(b.seal());
  EXPECT_TRUE(covered("seq.fencei_after_store", true));
}

TEST_F(CrossCov, StoreClobbersReservation) {
  riscv::ProgramBuilder b;
  b.raw(riscv::enc_amo(Opcode::kLrW, 10, 4, 0));
  b.sw(4, 11, 0);  // store to the reserved line
  run(b.seal());
  EXPECT_TRUE(covered("cache.store_clobbers_reservation", true));
}

TEST_F(CrossCov, PerCsrWritePoints) {
  riscv::ProgramBuilder b;
  b.li(10, 0x55);
  b.csrrw(0, csr::kMscratch, 10);
  run(b.seal());
  EXPECT_TRUE(covered("csr.write.0x340", true));   // mscratch written
  EXPECT_FALSE(covered("csr.write.0x180", true));  // satp untouched
}

TEST_F(CrossCov, CausePrivCrossNeedsTrapInThatMode) {
  riscv::ProgramBuilder b;
  emit_privilege_drop(b, false);
  b.ecall();  // ecall from U
  run(b.seal());
  EXPECT_TRUE(covered("trap.cross.ecall.user", true));
  EXPECT_FALSE(covered("trap.cross.ecall.super", true));
}

TEST_F(CrossCov, InterruptTrueBinsStayUnreachable) {
  // Nothing in the harness can assert mip: the irq true bins are the
  // designed unreachable tail.
  riscv::ProgramBuilder b;
  b.li(10, 0xaaa);
  b.csrrs(0, csr::kMie, 10);  // enable everything — still no pending source
  b.add(11, 11, 11);
  run(b.seal());
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(covered("irq.pending" + std::to_string(i), true));
    EXPECT_TRUE(covered("irq.pending" + std::to_string(i), false));
  }
}

TEST_F(CrossCov, BoomBuildOmitsTheDeepTail) {
  cov::CoverageDB boom_db;
  RtlCore boom(CoreConfig::boom(), boom_db, plat());
  const auto uncov = cov::uncovered_points(boom_db);
  for (const auto& u : uncov) {
    EXPECT_EQ(u.name.rfind("tlb.", 0), std::string::npos);
    EXPECT_EQ(u.name.rfind("irq.", 0), std::string::npos);
    EXPECT_EQ(u.name.rfind("cross.user.op.", 0), std::string::npos);
  }
}

TEST_F(CrossCov, UncoveredListingShrinksWithDeeperTests) {
  const std::size_t before = cov::uncovered_points(db_).size();
  riscv::ProgramBuilder b;
  emit_privilege_drop(b, true);
  b.add(10, 11, 12);
  b.lw(13, 4, 0);
  run(b.seal());
  EXPECT_LT(cov::uncovered_points(db_).size(), before);
}

}  // namespace
}  // namespace chatfuzz::rtl
