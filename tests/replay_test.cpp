// Coverage-merge and corpus-persistence tests.
#include <gtest/gtest.h>

#include "core/replay.h"
#include "coverage/merge.h"
#include "riscv/builder.h"
#include "riscv/encode.h"
#include "rtlsim/core.h"

namespace chatfuzz {
namespace {

using core::Program;

TEST(Merge, UnionsCoverage) {
  cov::CoverageDB a, b;
  const cov::PointId pa = a.register_cond("x");
  const cov::PointId qa = a.register_cond("y");
  const cov::PointId pb = b.register_cond("x");
  const cov::PointId qb = b.register_cond("y");
  (void)qa;
  a.begin_test();
  b.begin_test();
  a.hit(pa, true);
  b.hit(pb, false);
  b.hit(qb, true);
  ASSERT_TRUE(cov::merge_into(a, b));
  EXPECT_EQ(a.total_covered(), 3u);
  EXPECT_EQ(a.bin_hits(2 * pa + 1), 1u);
  EXPECT_EQ(a.bin_hits(2 * pa), 1u);
}

TEST(Merge, RejectsMismatchedRegistrations) {
  cov::CoverageDB a, b;
  a.register_cond("x");
  b.register_cond("different");
  EXPECT_FALSE(cov::merge_into(a, b));
}

TEST(Merge, HitCountsAdd) {
  cov::CoverageDB a, b;
  const cov::PointId p = a.register_cond("x");
  b.register_cond("x");
  a.begin_test();
  b.begin_test();
  for (int i = 0; i < 5; ++i) a.hit(p, true);
  for (int i = 0; i < 3; ++i) b.hit(p, true);
  ASSERT_TRUE(cov::merge_into(a, b));
  EXPECT_EQ(a.bin_hits(2 * p + 1), 8u);
}

TEST(Merge, ReportsUnionByName) {
  const std::vector<std::vector<cov::ReportEntry>> reports = {
      {{"a", 1, 0}, {"b", 0, 2}},
      {{"b", 3, 1}, {"c", 1, 1}},
  };
  const auto merged = cov::merge_reports(reports);
  ASSERT_EQ(merged.size(), 3u);
  // std::map ordering: a, b, c.
  EXPECT_EQ(merged[1].name, "b");
  EXPECT_EQ(merged[1].true_hits, 3u);
  EXPECT_EQ(merged[1].false_hits, 3u);
}

TEST(Merge, UncoveredPointListing) {
  cov::CoverageDB db;
  const cov::PointId p = db.register_cond("hit_both");
  const cov::PointId q = db.register_cond("only_true");
  db.register_cond("never");
  db.begin_test();
  db.hit(p, true);
  db.hit(p, false);
  db.hit(q, true);
  const auto un = cov::uncovered_points(db);
  ASSERT_EQ(un.size(), 2u);
  EXPECT_EQ(un[0].name, "only_true");
  EXPECT_FALSE(un[0].missing_true);
  EXPECT_TRUE(un[0].missing_false);
  EXPECT_EQ(un[1].name, "never");
  EXPECT_TRUE(un[1].missing_true && un[1].missing_false);
}

TEST(Replay, CorpusTextRoundTrip) {
  const std::vector<Program> tests = {
      {0x00500513u, 0x00b60633u},
      {0xdeadbeefu},
      {},
  };
  const std::string text = core::corpus_to_text(tests);
  const auto back = core::corpus_from_text(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, tests);
}

TEST(Replay, CorpusRejectsBadHex) {
  std::string err;
  const auto r = core::corpus_from_text("== test 0\nzzzz\n", &err);
  EXPECT_FALSE(r.has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
}

TEST(Replay, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/corpus_test.txt";
  const std::vector<Program> tests = {{0x00100093u, 0x00000073u}};
  ASSERT_TRUE(core::save_corpus(path, tests));
  const auto back = core::load_corpus(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, tests);
}

TEST(Replay, ReplayFindsInjectedBug) {
  riscv::ProgramBuilder b;
  b.li(10, 6).li(11, 7).mul(12, 10, 11);
  const mismatch::Report rep =
      core::replay_test(b.seal(), rtl::CoreConfig::rocket(), sim::Platform{});
  ASSERT_EQ(rep.mismatches.size(), 1u);
  EXPECT_EQ(rep.mismatches[0].finding, mismatch::Finding::kBug2TracerMulDiv);
}

TEST(Replay, CleanConfigReplaysClean) {
  riscv::ProgramBuilder b;
  b.li(10, 6).li(11, 7).mul(12, 10, 11);
  rtl::CoreConfig cfg = rtl::CoreConfig::rocket();
  cfg.bugs = rtl::BugInjections::none();
  const mismatch::Report rep = core::replay_test(b.seal(), cfg, sim::Platform{});
  EXPECT_TRUE(rep.mismatches.empty());
}

TEST(Replay, MismatchReportRendering) {
  mismatch::MismatchDetector det;
  riscv::ProgramBuilder b;
  b.li(10, 6).li(11, 7).mul(12, 10, 11);
  const auto rep =
      core::replay_test(b.seal(), rtl::CoreConfig::rocket(), sim::Platform{});
  det.accumulate(rep);
  const std::string text = core::render_mismatch_report(det);
  EXPECT_NE(text.find("unique=1"), std::string::npos);
  EXPECT_NE(text.find("Bug2"), std::string::npos);
}

}  // namespace
}  // namespace chatfuzz
