// Rng stream discipline for the parallel campaign engine: fork() must hand
// every worker / test an independent, reproducible stream that is a pure
// function of (parent seed, stream id) — never of thread identity or fork
// call order — and forking must not perturb the parent. Independence is
// checked statistically: distinct streams must not collide, correlate, or
// bias, since a campaign derives per-test register files from them.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "util/rng.h"

namespace chatfuzz {
namespace {

TEST(RngFork, IsDeterministicPerStreamId) {
  const Rng parent(42);
  Rng a = parent.fork(7);
  Rng b = parent.fork(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngFork, DoesNotPerturbTheParent) {
  Rng forked(42);
  (void)forked.fork(1);
  (void)forked.fork(2);
  Rng untouched(42);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(forked.next_u64(), untouched.next_u64());
  }
}

TEST(RngFork, DependsOnParentState) {
  Rng parent(42);
  const std::uint64_t before = parent.fork(3).next_u64();
  parent.next_u64();  // advance the parent
  const std::uint64_t after = parent.fork(3).next_u64();
  EXPECT_NE(before, after);
}

TEST(RngFork, AdjacentStreamIdsDoNotCollide) {
  // Worker/test ids are small consecutive integers — the worst case for a
  // weak stream derivation. First outputs of 4096 adjacent streams must all
  // be distinct.
  const Rng parent(1);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t id = 0; id < 4096; ++id) {
    firsts.insert(parent.fork(id).next_u64());
  }
  EXPECT_EQ(firsts.size(), 4096u);
}

TEST(RngFork, StreamsAreUncorrelated) {
  // Pearson correlation between paired doubles from sibling streams: for
  // n = 4096 i.i.d. pairs, |r| stays well under 0.05 with huge margin.
  const Rng parent(2024);
  Rng x = parent.fork(0);
  Rng y = parent.fork(1);
  const int n = 4096;
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (int i = 0; i < n; ++i) {
    const double a = x.uniform();
    const double b = y.uniform();
    sx += a; sy += b; sxx += a * a; syy += b * b; sxy += a * b;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double var_x = sxx / n - (sx / n) * (sx / n);
  const double var_y = syy / n - (sy / n) * (sy / n);
  const double r = cov / std::sqrt(var_x * var_y);
  EXPECT_LT(std::abs(r), 0.05);
}

TEST(RngFork, EveryStreamIsIndividuallyUniform) {
  // Each forked stream must still be a usable generator on its own: mean of
  // uniform() near 0.5, both halves of the bit range hit.
  const Rng parent(7);
  for (std::uint64_t id = 0; id < 8; ++id) {
    Rng s = parent.fork(id);
    double sum = 0;
    int high_bits = 0;
    const int n = 2048;
    for (int i = 0; i < n; ++i) {
      sum += s.uniform();
      high_bits += (s.next_u64() >> 63) & 1;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.05) << "stream " << id;
    EXPECT_NEAR(static_cast<double>(high_bits) / n, 0.5, 0.06)
        << "stream " << id;
  }
}

TEST(RngFork, GrandchildStreamsAreIndependentToo) {
  // Campaigns fork per-worker, then per-test: fork-of-fork must keep the
  // same no-collision property.
  const Rng parent(5);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t w = 0; w < 32; ++w) {
    const Rng worker = parent.fork(w);
    for (std::uint64_t t = 0; t < 32; ++t) {
      firsts.insert(worker.fork(t).next_u64());
    }
  }
  EXPECT_EQ(firsts.size(), 32u * 32u);
}

}  // namespace
}  // namespace chatfuzz
