// Corpus federation (dist/federation.h): the degradation-safe exchange of
// coverage-attributed corpus deltas. The properties under test:
//
//   - merges are ORDER-CANONICALIZED: hub store bytes are a pure function
//     of the merged content, whatever the push order or interleaving;
//   - re-push is IDEMPOTENT: after a disconnect (or under an injected
//     fault schedule) the client restarts from entry 0 and nothing
//     double-merges;
//   - a corrupt delta is QUARANTINED, acked as corrupt, and the session
//     (and the hub) keeps going;
//   - the v4 handshake gates version, token and role exactly like the
//     campaign coordinator.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "corpus/store.h"
#include "dist/federation.h"
#include "dist/protocol.h"
#include "dist/transport.h"

namespace chatfuzz::dist {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const char* tag) {
  static int counter = 0;
  std::string dir = std::string("federation_test_") + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

corpus::StoreEntryMeta meta_of(std::uint64_t test_index,
                               std::uint32_t bins,
                               std::vector<std::uint32_t> new_bins = {}) {
  corpus::StoreEntryMeta m;
  m.test_index = test_index;
  m.standalone_bins = bins;
  m.incremental_bins = bins / 2;
  m.new_bins = std::move(new_bins);
  return m;
}

/// Build a store directory with the given (program, meta) entries.
void make_store(const std::string& dir,
                const std::vector<std::pair<core::Program,
                                            corpus::StoreEntryMeta>>& entries) {
  corpus::CorpusStore store;
  ASSERT_TRUE(store.open(dir).ok());
  for (const auto& [prog, meta] : entries) {
    ASSERT_TRUE(store.append(prog, meta).ok());
  }
  ASSERT_TRUE(store.flush().ok());
}

std::map<std::string, std::string> dir_bytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::ifstream in(e.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    out[e.path().filename().string()] = buf.str();
  }
  return out;
}

/// A hub on an ephemeral port, serving on a background thread. Exits after
/// `sessions` completed sessions (0 = serve until the destructor's stop
/// flag). Read `stats`/`rc` only after join().
struct Hub {
  Hub(const std::string& dir, std::size_t sessions,
      const std::string& token = "") {
    opts.dir = dir;
    opts.listen = "127.0.0.1:0";
    opts.token = token;
    opts.max_sessions = sessions;
    opts.port_file = dir + ".port";
    thread = std::thread([this] {
      rc = federate_serve(opts, &stop, nullptr, &stats);
    });
    // The port file is written right after a successful bind, long before
    // the first accept — poll it rather than racing on serve internals.
    while (hostport.empty()) {
      std::ifstream in(opts.port_file);
      std::getline(in, hostport);
      if (hostport.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  void join() {
    if (thread.joinable()) thread.join();
    fs::remove(opts.port_file);
  }
  ~Hub() {
    stop.store(true);
    join();
  }
  FederateOptions opts;
  FedStats stats;
  std::atomic<bool> stop{false};
  std::string hostport;
  int rc = -1;
  std::thread thread;
};

const core::Program kProgA = {0x00500513u, 0x00b60633u};
const core::Program kProgB = {0x00b60633u, 0x00500513u};
const core::Program kProgC = {0xfeedfaceu};

// ---------------------------------------------------------------------------
// FedMerger unit properties.
// ---------------------------------------------------------------------------

TEST(FedMerger, MetadataMergeIsCommutativeAndIdempotent) {
  const std::string d1 = fresh_dir("meta1"), d2 = fresh_dir("meta2");
  const auto ma = meta_of(10, 4, {1, 5});
  const auto mb = meta_of(3, 7, {5, 9});

  FedMerger one;
  ASSERT_TRUE(one.open(d1).ok());
  EXPECT_EQ(one.merge(kProgA, ma), FedAckStatus::kMerged);
  EXPECT_EQ(one.merge(kProgA, mb), FedAckStatus::kDuplicate);
  EXPECT_EQ(one.merge(kProgA, mb), FedAckStatus::kDuplicate);  // idempotent

  FedMerger two;
  ASSERT_TRUE(two.open(d2).ok());
  EXPECT_EQ(two.merge(kProgA, mb), FedAckStatus::kMerged);
  EXPECT_EQ(two.merge(kProgA, ma), FedAckStatus::kDuplicate);

  for (const FedMerger* m : {&one, &two}) {
    ASSERT_EQ(m->size(), 1u);
    EXPECT_EQ(m->meta(0).test_index, 3u);        // min
    EXPECT_EQ(m->meta(0).standalone_bins, 7u);   // max
    EXPECT_EQ(m->meta(0).incremental_bins, 3u);  // max
    EXPECT_EQ(m->meta(0).new_bins,
              (std::vector<std::uint32_t>{1, 5, 9}));  // sorted union
  }
  ASSERT_TRUE(one.flush().ok());
  ASSERT_TRUE(two.flush().ok());
  EXPECT_EQ(dir_bytes(d1), dir_bytes(d2));
  fs::remove_all(d1);
  fs::remove_all(d2);
}

TEST(FedMerger, FlushOrderIsCanonicalRegardlessOfMergeOrder) {
  const std::string d1 = fresh_dir("canon1"), d2 = fresh_dir("canon2");
  FedMerger one, two;
  ASSERT_TRUE(one.open(d1).ok());
  ASSERT_TRUE(two.open(d2).ok());
  one.merge(kProgA, meta_of(1, 1));
  one.merge(kProgB, meta_of(2, 2));
  one.merge(kProgC, meta_of(3, 3));
  two.merge(kProgC, meta_of(3, 3));
  two.merge(kProgA, meta_of(1, 1));
  two.merge(kProgB, meta_of(2, 2));
  ASSERT_TRUE(one.flush().ok());
  ASSERT_TRUE(two.flush().ok());
  EXPECT_EQ(dir_bytes(d1), dir_bytes(d2));

  // Reopening a flushed store and flushing again must be a no-op.
  FedMerger reread;
  ASSERT_TRUE(reread.open(d1).ok());
  EXPECT_EQ(reread.size(), 3u);
  ASSERT_TRUE(reread.flush().ok());
  EXPECT_EQ(dir_bytes(d1), dir_bytes(d2));
  fs::remove_all(d1);
  fs::remove_all(d2);
}

TEST(FedMerger, EmptyProgramIsCorruptAndQuarantineParksPayloads) {
  const std::string dir = fresh_dir("quar");
  FedMerger m;
  ASSERT_TRUE(m.open(dir).ok());
  EXPECT_EQ(m.merge({}, meta_of(0, 0)), FedAckStatus::kCorrupt);
  EXPECT_EQ(m.size(), 0u);

  const std::string p1 = m.quarantine("not a delta at all");
  const std::string p2 = m.quarantine("still not one");
  ASSERT_FALSE(p1.empty());
  ASSERT_FALSE(p2.empty());
  EXPECT_NE(p1, p2) << "quarantine slots must never overwrite each other";
  std::ifstream in(p1);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, "not a delta at all");
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// End-to-end sessions over TCP.
// ---------------------------------------------------------------------------

TEST(Federation, HubStoreBytesAreIndependentOfPushOrder) {
  const std::string src_a = fresh_dir("srcA"), src_b = fresh_dir("srcB");
  make_store(src_a, {{kProgA, meta_of(1, 4)}, {kProgC, meta_of(7, 2)}});
  make_store(src_b, {{kProgB, meta_of(2, 5)}, {kProgA, meta_of(9, 1)}});

  const std::string hub_ab = fresh_dir("hubAB"), hub_ba = fresh_dir("hubBA");
  FederateOptions push;
  {
    Hub hub(hub_ab, 2);
    push.connect = hub.hostport;
    push.dir = src_a;
    FedStats st;
    ASSERT_EQ(federate_push(push, &st), 0);
    EXPECT_EQ(st.merged, 2u);
    push.dir = src_b;
    ASSERT_EQ(federate_push(push, &st), 0);
    EXPECT_EQ(st.merged, 1u);      // kProgB is new
    EXPECT_EQ(st.duplicates, 1u);  // kProgA already present
  }
  {
    Hub hub(hub_ba, 2);
    push.connect = hub.hostport;
    push.dir = src_b;
    ASSERT_EQ(federate_push(push), 0);
    push.dir = src_a;
    ASSERT_EQ(federate_push(push), 0);
  }
  EXPECT_EQ(dir_bytes(hub_ab), dir_bytes(hub_ba))
      << "hub bytes must not depend on who pushed first";

  // Idempotent re-push: everything acks duplicate, bytes do not move.
  const auto before = dir_bytes(hub_ab);
  {
    Hub hub(hub_ab, 1);
    push.connect = hub.hostport;
    push.dir = src_a;
    FedStats st;
    ASSERT_EQ(federate_push(push, &st), 0);
    EXPECT_EQ(st.merged, 0u);
    EXPECT_EQ(st.duplicates, 2u);
  }
  EXPECT_EQ(dir_bytes(hub_ab), before);

  for (const auto& d : {src_a, src_b, hub_ab, hub_ba}) fs::remove_all(d);
}

TEST(Federation, PullRoundTripsTheHubContent) {
  const std::string src = fresh_dir("pull_src"), hub_dir = fresh_dir("pull_hub");
  const std::string dst = fresh_dir("pull_dst");
  make_store(src, {{kProgA, meta_of(1, 4, {2, 8})}, {kProgB, meta_of(2, 5)}});

  {
    Hub hub(hub_dir, 2);
    FederateOptions opts;
    opts.connect = hub.hostport;
    opts.dir = src;
    ASSERT_EQ(federate_push(opts), 0);
    opts.dir = dst;
    FedStats st;
    ASSERT_EQ(federate_pull(opts, &st), 0);
    EXPECT_EQ(st.merged, 2u);
    hub.join();
    EXPECT_EQ(hub.stats.streamed, 2u);
  }
  // The pulled store went through the same canonical merge: byte-equal.
  EXPECT_EQ(dir_bytes(dst), dir_bytes(hub_dir));

  // A second pull is all duplicates.
  {
    Hub hub(hub_dir, 1);
    FederateOptions opts;
    opts.connect = hub.hostport;
    opts.dir = dst;
    FedStats st;
    ASSERT_EQ(federate_pull(opts, &st), 0);
    EXPECT_EQ(st.merged, 0u);
    EXPECT_EQ(st.duplicates, 2u);
  }
  for (const auto& d : {src, hub_dir, dst}) fs::remove_all(d);
}

TEST(Federation, RePushUnderFaultScheduleConvergesIdentically) {
  // The robustness claim: a client-side hostile network costs redials, but
  // the hub converges to the exact bytes a clean push produces.
  const std::string src = fresh_dir("fault_src");
  std::vector<std::pair<core::Program, corpus::StoreEntryMeta>> entries;
  for (std::uint32_t i = 0; i < 16; ++i) {
    entries.push_back({{0x00500513u + (i << 12), 0x00b60633u, 0x100073u + i},
                       meta_of(i, i + 1, {i, i + 100})});
  }
  make_store(src, entries);

  const std::string clean_hub = fresh_dir("fault_clean");
  {
    Hub hub(clean_hub, 1);
    FederateOptions opts;
    opts.connect = hub.hostport;
    opts.dir = src;
    ASSERT_EQ(federate_push(opts), 0);
  }

  for (std::uint64_t seed : {0xFEDu, 0xFACEu, 0xBEEFu}) {
    const std::string hub_dir = fresh_dir("fault_hub");
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    {
      // Sessions unbounded: every faulted redial is one more session; the
      // destructor's stop flag ends the hub once the push converged.
      Hub hub(hub_dir, 0);
      FederateOptions opts;
      opts.connect = hub.hostport;
      opts.dir = src;
      opts.max_retries = 100;
      opts.fault.seed = seed;
      opts.fault.max_faults = 12;
      opts.fault.p_drop = 40;
      opts.fault.p_truncate = 24;
      opts.fault.p_corrupt = 40;
      opts.fault.p_wrong_crc = 24;
      opts.fault.p_duplicate = 24;
      opts.fault.p_delay = 48;
      opts.fault.p_handshake = 48;
      ASSERT_EQ(federate_push(opts), 0);
    }
    const auto clean = dir_bytes(clean_hub);
    auto faulted = dir_bytes(hub_dir);
    EXPECT_EQ(clean, faulted) << "fault schedule changed the merged bytes";
    fs::remove_all(hub_dir);
  }
  fs::remove_all(clean_hub);
  fs::remove_all(src);
}

TEST(Federation, CorruptDeltaIsQuarantinedNotFatal) {
  // Hand-speak the protocol: hello, push request, then a malformed delta
  // followed by a good one. The hub must ack kCorrupt, park the bytes under
  // quarantine/, and still merge the good delta in the SAME session.
  const std::string hub_dir = fresh_dir("corrupt_hub");
  Hub hub(hub_dir, 1);

  const auto hp = parse_hostport(hub.hostport);
  ASSERT_TRUE(hp.has_value());
  std::string err;
  const int fd = tcp_connect(*hp, 5'000, &err);
  ASSERT_GE(fd, 0) << err;
  SocketChannel chan(fd);

  HelloMsg hello;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  hello.role = static_cast<std::uint8_t>(PeerRole::kFederate);
  ASSERT_TRUE(chan.send_frame(encode_hello(hello), 5'000).ok());
  std::string payload;
  ASSERT_TRUE(chan.recv_frame(&payload, 5'000).ok());
  FedAckMsg ack;
  ASSERT_TRUE(decode_fed_ack(payload, &ack).ok());

  FedRequestMsg req;
  req.mode = static_cast<std::uint8_t>(FedMode::kPush);
  ASSERT_TRUE(chan.send_frame(encode_fed_request(req), 5'000).ok());

  // A frame with the delta type tag but garbage fields.
  std::string evil = encode_fed_delta([] {
    FedDeltaMsg d;
    d.program = kProgA;
    d.meta = meta_of(1, 1);
    return d;
  }());
  evil.resize(evil.size() / 2);  // truncated mid-payload
  ASSERT_TRUE(chan.send_frame(evil, 5'000).ok());
  ASSERT_TRUE(chan.recv_frame(&payload, 5'000).ok());
  ASSERT_TRUE(decode_fed_ack(payload, &ack).ok());
  EXPECT_EQ(ack.status, static_cast<std::uint8_t>(FedAckStatus::kCorrupt));

  FedDeltaMsg good;
  good.program = kProgB;
  good.meta = meta_of(4, 2);
  ASSERT_TRUE(chan.send_frame(encode_fed_delta(good), 5'000).ok());
  ASSERT_TRUE(chan.recv_frame(&payload, 5'000).ok());
  ASSERT_TRUE(decode_fed_ack(payload, &ack).ok());
  EXPECT_EQ(ack.status, static_cast<std::uint8_t>(FedAckStatus::kMerged));

  ASSERT_TRUE(chan.send_frame(encode_fed_done(FedDoneMsg{}), 5'000).ok());
  ASSERT_TRUE(chan.recv_frame(&payload, 5'000).ok());
  chan.close();
  hub.join();

  EXPECT_EQ(hub.stats.corrupt, 1u);
  EXPECT_EQ(hub.stats.merged, 1u);
  ASSERT_TRUE(fs::exists(fs::path(hub_dir) / "quarantine" / "delta-0000.bin"));
  corpus::CorpusStore store;
  ASSERT_TRUE(store.open(hub_dir).ok());
  EXPECT_EQ(store.size(), 1u);
  fs::remove_all(hub_dir);
}

TEST(Federation, HandshakeGatesTokenAndRole) {
  const std::string hub_dir = fresh_dir("auth_hub");
  const std::string src = fresh_dir("auth_src");
  make_store(src, {{kProgA, meta_of(1, 1)}});
  Hub hub(hub_dir, 3, "hub-secret");

  FederateOptions opts;
  opts.connect = hub.hostport;
  opts.dir = src;
  opts.max_retries = 0;
  opts.token = "wrong";
  EXPECT_EQ(federate_push(opts), 2) << "bad token must be fatal, not retried";

  // A campaign worker hello (role kWorker) is refused by the corpus hub.
  {
    const auto hp = parse_hostport(hub.hostport);
    std::string err;
    const int fd = tcp_connect(*hp, 5'000, &err);
    ASSERT_GE(fd, 0) << err;
    SocketChannel chan(fd);
    HelloMsg hello;
    hello.pid = 1;
    hello.token = "hub-secret";
    hello.role = static_cast<std::uint8_t>(PeerRole::kWorker);
    ASSERT_TRUE(chan.send_frame(encode_hello(hello), 5'000).ok());
    std::string payload;
    ASSERT_TRUE(chan.recv_frame(&payload, 5'000).ok());
    EXPECT_EQ(peek_type(payload), MsgType::kReject);
    chan.close();
  }

  opts.token = "hub-secret";
  EXPECT_EQ(federate_push(opts), 0);
  hub.join();
  EXPECT_EQ(hub.rc, 0);
  fs::remove_all(hub_dir);
  fs::remove_all(src);
}

TEST(Federation, ContentHashIsOrderSensitiveFnv) {
  // kProgA and kProgB are permutations of each other: the content key must
  // distinguish them (federation dedups identical PROGRAMS, not bags of
  // instructions).
  EXPECT_NE(fed_content_hash(kProgA), fed_content_hash(kProgB));
  EXPECT_EQ(fed_content_hash(kProgA), fed_content_hash(kProgA));
  EXPECT_NE(fed_content_hash({}), fed_content_hash(kProgC));
}

}  // namespace
}  // namespace chatfuzz::dist
