// util/stats.h unit coverage. The load-bearing case is the degenerate
// Histogram range: hi == lo used to divide by zero, producing a NaN whose
// int64 cast is undefined behavior — obs::Histo construction from config
// knobs must never be able to reach that.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/stats.h"

namespace chatfuzz {
namespace {

TEST(Histogram, DegenerateRangeRoutesToFirstBucket) {
  Histogram h(5.0, 5.0, 8);  // hi == lo: every t would be 0/0
  h.add(5.0);
  h.add(-1e30);
  h.add(1e30);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bucket(0), 3u);
  for (std::size_t b = 1; b < h.buckets(); ++b) {
    EXPECT_EQ(h.bucket(b), 0u) << "bucket " << b;
  }
}

TEST(Histogram, ReversedRangeRoutesToFirstBucket) {
  Histogram h(10.0, 0.0, 4);  // hi < lo: denominator negative
  h.add(3.0);
  h.add(100.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);
}

TEST(Histogram, NanInputDoesNotCorrupt) {
  Histogram h(0.0, 10.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 3u);
  // NaN lands in bucket 0; infinities clamp to the edge buckets.
  EXPECT_EQ(h.bucket(0) + h.bucket(3), 3u);
}

TEST(Histogram, InRangeValuesBucketAndClamp) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);    // bucket 0
  h.add(2.5);    // bucket 1
  h.add(9.999);  // bucket 4
  h.add(-3.0);   // clamps to 0
  h.add(42.0);   // clamps to 4
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(RunningStat, WelfordMatchesClosedForm) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
}

}  // namespace
}  // namespace chatfuzz
