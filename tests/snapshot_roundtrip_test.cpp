// Property-style round-trip tests for the serialization subsystem
// (util/serialize.h) and every snapshottable component: for randomized
// states, restore(save(x)) == x bit-exactly — verified by comparing a
// second serialization of the restored object against the first, and by
// behavioral equivalence where the component has behavior (RNG streams,
// generators). Malformed inputs — truncations, corruptions, version
// mismatches, layout mismatches — must fail cleanly, never crash.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "baselines/mutational.h"
#include "baselines/psofuzz.h"
#include "core/campaign.h"
#include "core/chatfuzz.h"
#include "core/checkpoint.h"
#include "corpus/generator.h"
#include "corpus/store.h"
#include "coverage/cover.h"
#include "coverage/multi.h"
#include "mismatch/detect.h"
#include "ml/bpe.h"
#include "ml/gpt.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace chatfuzz {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---- serialize core ---------------------------------------------------------

TEST(Serialize, ScalarAndVectorRoundTrip) {
  ser::Writer w;
  w.u8(0xab);
  w.u16(0xcdef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f32(3.25f);
  w.f64(-1.0 / 3.0);
  w.boolean(true);
  w.str("hello\0world");  // embedded NUL must survive (binary strings)
  w.vec_u32({1, 2, 3});
  w.vec_f32({0.5f, -0.5f});

  ser::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xcdef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f32(), 3.25f);
  EXPECT_EQ(r.f64(), -1.0 / 3.0);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), std::string("hello"));  // literal truncates at NUL
  EXPECT_EQ(r.vec_u32(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(r.vec_f32(), (std::vector<float>{0.5f, -0.5f}));
  EXPECT_TRUE(r.done());
}

TEST(Serialize, EncodingIsLittleEndianStable) {
  ser::Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.buffer().size(), 4u);
  EXPECT_EQ(static_cast<std::uint8_t>(w.buffer()[0]), 0x04);
  EXPECT_EQ(static_cast<std::uint8_t>(w.buffer()[3]), 0x01);
}

TEST(Serialize, ReaderNeverCrashesOnTruncation) {
  ser::Writer w;
  w.u64(7);
  w.vec_u64({1, 2, 3, 4});
  w.str("payload");
  const std::string full = w.buffer();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    ser::Reader r(full.substr(0, cut));
    (void)r.u64();
    (void)r.vec_u64();
    (void)r.str();
    EXPECT_FALSE(r.done()) << "prefix of " << cut << " bytes parsed fully";
  }
}

TEST(Serialize, CorruptLengthPrefixDoesNotAllocate) {
  ser::Writer w;
  w.u64(~0ull);  // absurd element count with no elements behind it
  ser::Reader r(w.buffer());
  EXPECT_TRUE(r.vec_u64().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, FileContainerRejectsTampering) {
  const std::string path = temp_path("container.bin");
  ser::Writer w;
  w.str("the payload");
  w.u64(99);
  const ser::Status saved = ser::write_file(path, 0x41424344, 3, w.buffer());
  ASSERT_TRUE(saved.ok()) << saved.message();

  std::string payload;
  ASSERT_TRUE(ser::read_file(path, 0x41424344, 3, "test", &payload).ok());
  EXPECT_EQ(payload, w.buffer());

  // Wrong magic.
  ser::Status s = ser::read_file(path, 0x41424345, 3, "test", &payload);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("magic"), std::string::npos) << s.message();

  // Wrong version.
  s = ser::read_file(path, 0x41424344, 4, "test", &payload);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.message();

  // Flip one payload byte: checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    char c;
    f.seekg(20);
    f.get(c);
    f.seekp(20);
    f.put(static_cast<char>(c ^ 0x5a));
  }
  s = ser::read_file(path, 0x41424344, 3, "test", &payload);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s.message();
}

TEST(Serialize, FileContainerRejectsTruncation) {
  const std::string path = temp_path("container_trunc.bin");
  ser::Writer w;
  w.str(std::string(256, 'x'));
  ASSERT_TRUE(ser::write_file(path, 0x41424344, 1, w.buffer()).ok());
  std::filesystem::resize_file(path, 32);
  std::string payload;
  const ser::Status s = ser::read_file(path, 0x41424344, 1, "test", &payload);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("truncated"), std::string::npos) << s.message();
}

TEST(Serialize, FileContainerRejectsTrailingGarbage) {
  const std::string path = temp_path("container_tail.bin");
  ser::Writer w;
  w.u64(42);
  ASSERT_TRUE(ser::write_file(path, 0x41424344, 1, w.buffer()).ok());
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "leftover bytes from an interrupted overwrite";
  }
  std::string payload;
  const ser::Status s = ser::read_file(path, 0x41424344, 1, "test", &payload);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("trailing"), std::string::npos) << s.message();
}

TEST(Serialize, MissingFileReportsErrno) {
  std::string payload;
  const ser::Status s = ser::read_file(temp_path("does_not_exist.bin"),
                                       0x41424344, 1, "test", &payload);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("errno"), std::string::npos) << s.message();
}

// ---- Rng --------------------------------------------------------------------

TEST(SnapshotRoundTrip, RngContinuesExactStream) {
  Rng rng(123);
  for (int i = 0; i < 777; ++i) rng.next_u64();  // random stream position

  ser::Writer w;
  ser::write_rng(w, rng);
  ser::Reader r(w.buffer());
  Rng restored(999);  // different seed, fully overwritten
  ASSERT_TRUE(ser::read_rng(r, restored));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_u64(), restored.next_u64());
  }
}

// ---- CoverageDB -------------------------------------------------------------

cov::CoverageDB make_db(std::size_t points) {
  cov::CoverageDB db;
  for (std::size_t i = 0; i < points; ++i) {
    db.register_cond("pt" + std::to_string(i));
  }
  return db;
}

TEST(SnapshotRoundTrip, CoverageDbBitExact) {
  Rng rng(5);
  for (int iter = 0; iter < 10; ++iter) {
    cov::CoverageDB db = make_db(40);
    for (int h = 0; h < 200; ++h) {
      db.hit(static_cast<cov::PointId>(rng.below(40)), rng.chance(0.5));
    }
    ser::Writer w;
    db.save_state(w);

    cov::CoverageDB other = make_db(40);
    ser::Reader r(w.buffer());
    ASSERT_TRUE(other.restore_state(r));
    ASSERT_TRUE(r.done());
    EXPECT_EQ(other.total_covered(), db.total_covered());
    EXPECT_EQ(other.total_percent(), db.total_percent());
    ser::Writer w2;
    other.save_state(w2);
    EXPECT_EQ(w.buffer(), w2.buffer());  // bit-exact, hit counts included
  }
}

TEST(SnapshotRoundTrip, CoverageDbRejectsLayoutMismatch) {
  cov::CoverageDB db = make_db(8);
  db.hit(0, true);
  ser::Writer w;
  db.save_state(w);

  cov::CoverageDB fewer = make_db(7);
  ser::Reader r1(w.buffer());
  EXPECT_FALSE(fewer.restore_state(r1));

  // Same bin count, different point names: the fingerprint must catch it.
  cov::CoverageDB renamed;
  for (int i = 0; i < 8; ++i) renamed.register_cond("other" + std::to_string(i));
  ser::Reader r2(w.buffer());
  EXPECT_FALSE(renamed.restore_state(r2));
}

TEST(SnapshotRoundTrip, CoverageDbTruncationsFailCleanly) {
  cov::CoverageDB db = make_db(16);
  db.hit(3, true);
  ser::Writer w;
  db.save_state(w);
  for (std::size_t cut = 0; cut < w.buffer().size(); ++cut) {
    cov::CoverageDB other = make_db(16);
    ser::Reader r(w.buffer().substr(0, cut));
    EXPECT_FALSE(other.restore_state(r)) << "prefix " << cut;
  }
}

// ---- CtrlRegCoverage --------------------------------------------------------

TEST(SnapshotRoundTrip, CtrlRegSetPreservesMembership) {
  Rng rng(17);
  cov::CtrlRegCoverage ctrl;
  std::vector<std::uint64_t> states;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t s = rng.below(3000);  // duplicates on purpose
    states.push_back(s);
    ctrl.observe(s);
  }
  ser::Writer w;
  ctrl.save_state(w);

  cov::CtrlRegCoverage restored;
  ser::Reader r(w.buffer());
  ASSERT_TRUE(restored.restore_state(r));
  ASSERT_TRUE(r.done());
  EXPECT_EQ(restored.distinct_states(), ctrl.distinct_states());
  // Every previously seen state must be a duplicate in the restored set.
  restored.begin_test();
  for (std::uint64_t s : states) EXPECT_FALSE(restored.observe(s));
  EXPECT_EQ(restored.test_new_states(), 0u);
  // And serialized bytes are insertion-order independent.
  ser::Writer w2;
  restored.save_state(w2);
  EXPECT_EQ(w.buffer(), w2.buffer());
}

// ---- MetricSuite ------------------------------------------------------------

TEST(SnapshotRoundTrip, MetricSuiteBitExact) {
  Rng rng(23);
  cov::MetricSuite suite;
  for (int i = 0; i < 400; ++i) {
    suite.observe_write(static_cast<unsigned>(rng.below(31)), rng.next_u64(),
                        rng.next_u64());
    suite.toggle().cover_bin(rng.below(suite.toggle().universe()));
    suite.fsm().cover_bin(rng.below(suite.fsm().universe()));
    suite.statement().cover_bin(rng.below(suite.statement().universe()));
  }
  ser::Writer w;
  suite.save_state(w);

  cov::MetricSuite restored;
  ser::Reader r(w.buffer());
  ASSERT_TRUE(restored.restore_state(r));
  ASSERT_TRUE(r.done());
  EXPECT_EQ(restored.toggle().covered(), suite.toggle().covered());
  EXPECT_EQ(restored.fsm().covered(), suite.fsm().covered());
  EXPECT_EQ(restored.statement().covered(), suite.statement().covered());
  ser::Writer w2;
  restored.save_state(w2);
  EXPECT_EQ(w.buffer(), w2.buffer());
}

TEST(SnapshotRoundTrip, MetricSuiteTruncationsFailCleanly) {
  cov::MetricSuite suite;
  suite.toggle().cover_bin(0);
  ser::Writer w;
  suite.save_state(w);
  // Sample the cuts (the blob is a few KiB; step keeps the test fast).
  for (std::size_t cut = 0; cut < w.buffer().size(); cut += 7) {
    cov::MetricSuite restored;
    ser::Reader r(w.buffer().substr(0, cut));
    EXPECT_FALSE(restored.restore_state(r)) << "prefix " << cut;
  }
}

// ---- MismatchDetector -------------------------------------------------------

mismatch::Report fake_report(const std::string& sig, mismatch::Finding f,
                             std::size_t raw) {
  mismatch::Report rep;
  rep.raw_count = raw;
  mismatch::Mismatch m;
  m.kind = mismatch::Kind::kRdValue;
  m.signature = sig;
  m.finding = f;
  rep.mismatches.push_back(std::move(m));
  return rep;
}

TEST(SnapshotRoundTrip, MismatchDetectorTallyBitExact) {
  mismatch::MismatchDetector det;
  det.accumulate(fake_report("sig-a", mismatch::Finding::kBug1CacheCoherency, 3));
  det.accumulate(fake_report("sig-b", mismatch::Finding::kOther, 2));
  det.accumulate(fake_report("sig-a", mismatch::Finding::kBug1CacheCoherency, 5));
  ser::Writer w;
  det.save_state(w);

  mismatch::MismatchDetector restored;
  ser::Reader r(w.buffer());
  ASSERT_TRUE(restored.restore_state(r));
  ASSERT_TRUE(r.done());
  EXPECT_EQ(restored.total_raw(), det.total_raw());
  EXPECT_EQ(restored.total_post_filter(), det.total_post_filter());
  EXPECT_EQ(restored.unique_count(), det.unique_count());
  EXPECT_EQ(restored.findings_seen(), det.findings_seen());
  ser::Writer w2;
  restored.save_state(w2);
  EXPECT_EQ(w.buffer(), w2.buffer());

  for (std::size_t cut = 0; cut < w.buffer().size(); ++cut) {
    mismatch::MismatchDetector other;
    ser::Reader rc(w.buffer().substr(0, cut));
    EXPECT_FALSE(other.restore_state(rc)) << "prefix " << cut;
  }
}

// ---- corpus store -----------------------------------------------------------

corpus::StoreEntryMeta meta_for(std::uint64_t index) {
  corpus::StoreEntryMeta m;
  m.test_index = index;
  m.standalone_bins = static_cast<std::uint32_t>(index * 3);
  m.incremental_bins = static_cast<std::uint32_t>(index % 5);
  m.mismatches = static_cast<std::uint32_t>(index % 2);
  m.ctrl_new = index * 7;
  m.phase_hash = index * 11 + 1;
  m.new_bins = {static_cast<std::uint32_t>(index),
                static_cast<std::uint32_t>(index + 100)};
  return m;
}

TEST(SnapshotRoundTrip, CorpusStorePersistsAcrossReopen) {
  const std::string dir = temp_path("store_roundtrip");
  std::filesystem::remove_all(dir);
  Rng rng(31);

  std::vector<core::Program> programs;
  {
    corpus::CorpusStore store;
    ASSERT_TRUE(store.open(dir, /*shard_capacity=*/4).ok());
    for (std::uint64_t i = 0; i < 11; ++i) {  // spans three shards
      core::Program p;
      for (int k = 0; k < 1 + static_cast<int>(rng.below(20)); ++k) {
        p.push_back(rng.next_u32());
      }
      programs.push_back(p);
      ASSERT_TRUE(store.append(p, meta_for(i)).ok());
    }
    ASSERT_TRUE(store.flush().ok());
    EXPECT_TRUE(std::filesystem::exists(store.shard_path(2)));
  }

  corpus::CorpusStore reopened;
  ASSERT_TRUE(reopened.open(dir).ok());
  ASSERT_EQ(reopened.size(), programs.size());
  EXPECT_EQ(reopened.shard_capacity(), 4u);
  for (std::size_t i = 0; i < programs.size(); ++i) {
    core::Program p;
    ASSERT_TRUE(reopened.read_program(i, &p).ok());
    EXPECT_EQ(p, programs[i]) << "entry " << i;
    EXPECT_EQ(reopened.meta(i).test_index, i);
    EXPECT_EQ(reopened.meta(i).phase_hash, meta_for(i).phase_hash);
    EXPECT_EQ(reopened.meta(i).new_bins, meta_for(i).new_bins);
  }
}

TEST(SnapshotRoundTrip, CheckpointBytesIgnoreDispatchEngineAndBbv) {
  // The superblock span caches are derived microarchitectural state and BBV
  // collection is observation-only: neither may leak into a checkpoint. A
  // campaign cut at the same test count must write byte-identical
  // campaign.ckpt files with superblocks+BBV on and with both off.
  const auto run_cut = [](const char* tag, bool superblocks, bool bbv) {
    const std::string dir = temp_path(std::string("ckpt_sb_") + tag);
    std::filesystem::remove_all(dir);
    baselines::RandomFuzzer gen(11);
    core::CampaignConfig cfg;
    cfg.num_tests = 96;
    cfg.batch_size = 32;
    cfg.checkpoint_every = 10;
    cfg.platform.max_steps = 256;
    cfg.superblocks = superblocks;
    cfg.checkpoint_dir = dir;
    cfg.stop_after_tests = 40;
    if (bbv) cfg.bbv_path = dir + "/log.bbv";
    core::run_campaign(gen, cfg);
    std::ifstream f(core::checkpoint_path(dir), std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(f), {});
  };
  const std::string with = run_cut("on", true, true);
  ASSERT_FALSE(with.empty());
  EXPECT_EQ(with, run_cut("off", false, false));
}

TEST(SnapshotRoundTrip, CheckpointCampaignConfigRoundTripsDutList) {
  // v4: the campaign config carries the multi-DUT list. The restored list
  // must reproduce every backend field — the coverage blob's layout is the
  // concatenation of these backends' instrumentation, so a silently
  // defaulted field would restore against the wrong DB shape.
  core::CampaignConfig cfg;
  cfg.seed = 99;
  cfg.num_tests = 7;
  cfg.duts = {rtl::CoreConfig::rocket(), rtl::CoreConfig::ooo()};
  // Perturb the ooo entry away from its preset so defaults cannot pass
  // vacuously.
  cfg.duts[1].rob_size = 48;
  cfg.duts[1].phys_regs = 96;
  cfg.duts[1].sq_size = 12;
  cfg.duts[1].fetch_width = 1;
  cfg.duts[1].bugs.ooo_early_store_drain = false;

  ser::Writer w;
  core::write_campaign_config(w, cfg);
  core::CampaignConfig back;
  ser::Reader r(w.buffer());
  ASSERT_TRUE(core::read_campaign_config(r, back));
  ASSERT_TRUE(r.done());
  ASSERT_EQ(back.duts.size(), 2u);
  EXPECT_FALSE(back.duts[0].out_of_order);
  EXPECT_TRUE(back.duts[1].out_of_order);
  EXPECT_EQ(back.duts[1].rob_size, 48u);
  EXPECT_EQ(back.duts[1].phys_regs, 96u);
  EXPECT_EQ(back.duts[1].sq_size, 12u);
  EXPECT_EQ(back.duts[1].fetch_width, 1u);
  EXPECT_TRUE(back.duts[1].bugs.ooo_broken_fwd);
  EXPECT_FALSE(back.duts[1].bugs.ooo_early_store_drain);
  EXPECT_TRUE(back.duts[1].bugs.ooo_missing_squash);

  // Bit-exact: re-serializing the restored config reproduces the bytes.
  ser::Writer w2;
  core::write_campaign_config(w2, back);
  EXPECT_EQ(w.buffer(), w2.buffer());

  // Truncations fail cleanly — including cuts inside the DUT-count prefix
  // and the per-backend records (the n_duts payload-bound guard).
  for (std::size_t cut = 0; cut < w.buffer().size(); cut += 3) {
    core::CampaignConfig other;
    ser::Reader rc(w.buffer().substr(0, cut));
    EXPECT_FALSE(core::read_campaign_config(rc, other)) << "prefix " << cut;
  }
}

TEST(SnapshotRoundTrip, CheckpointRejectsPreMultiDutVersions) {
  // A pre-v4 checkpoint has no DUT list and its coverage blob predates the
  // per-DUT DB layout: load must refuse it with a version diagnostic, not
  // misparse it against the new schema.
  const std::string dir = temp_path("ckpt_oldver");
  std::filesystem::remove_all(dir);
  core::CheckpointData data;
  data.cfg.duts = {rtl::CoreConfig::rocket(), rtl::CoreConfig::ooo()};
  data.fuzzer = "Random";
  data.tests_run = 40;
  ASSERT_TRUE(core::save_checkpoint(dir, data).ok());
  core::CheckpointData in;
  ASSERT_TRUE(core::load_checkpoint(dir, &in).ok());
  ASSERT_EQ(in.cfg.duts.size(), 2u);

  // Re-wrap the same payload under the previous container version
  // (0x43465A4B is the checkpoint magic; current version is 4).
  std::string payload;
  ASSERT_TRUE(
      ser::read_file(core::checkpoint_path(dir), 0x43465A4B, 4, "ckpt",
                     &payload)
          .ok());
  ASSERT_TRUE(
      ser::write_file(core::checkpoint_path(dir), 0x43465A4B, 3, payload)
          .ok());
  core::CheckpointData stale;
  const ser::Status s = core::load_checkpoint(dir, &stale);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.message();
}

TEST(SnapshotRoundTrip, CorpusStoreTruncateRollsBackBytes) {
  const std::string dir = temp_path("store_truncate");
  std::filesystem::remove_all(dir);
  corpus::CorpusStore store;
  ASSERT_TRUE(store.open(dir, 4).ok());
  const core::Program prog{0x13, 0x6f, 0x93};
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.append(prog, meta_for(i)).ok());
  }
  ASSERT_TRUE(store.flush().ok());
  const auto index_bytes = [&] {
    std::ifstream f(dir + "/index.bin", std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(f), {});
  };
  // Truncate to 6 and re-append the same 4 entries: files must be
  // byte-identical to the uninterrupted 10-entry store.
  const std::string full_index = index_bytes();
  ASSERT_TRUE(store.truncate(6).ok());
  EXPECT_EQ(store.size(), 6u);
  EXPECT_FALSE(std::filesystem::exists(store.shard_path(2)));
  for (std::uint64_t i = 6; i < 10; ++i) {
    ASSERT_TRUE(store.append(prog, meta_for(i)).ok());
  }
  ASSERT_TRUE(store.flush().ok());
  EXPECT_EQ(index_bytes(), full_index);
}

TEST(SnapshotRoundTrip, CorpusStoreRejectsCorruptIndex) {
  const std::string dir = temp_path("store_corrupt");
  std::filesystem::remove_all(dir);
  {
    corpus::CorpusStore store;
    ASSERT_TRUE(store.open(dir).ok());
    ASSERT_TRUE(store.append({0x13}, meta_for(0)).ok());
    ASSERT_TRUE(store.flush().ok());
  }
  {
    std::fstream f(dir + "/index.bin",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);
    f.put('\x7f');
  }
  corpus::CorpusStore store;
  const ser::Status s = store.open(dir);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s.message();
}

TEST(SnapshotRoundTrip, CorpusStoreReportsMissingShardBytes) {
  const std::string dir = temp_path("store_missing_shard");
  std::filesystem::remove_all(dir);
  {
    corpus::CorpusStore store;
    ASSERT_TRUE(store.open(dir).ok());
    ASSERT_TRUE(store.append({1, 2, 3, 4}, meta_for(0)).ok());
    ASSERT_TRUE(store.flush().ok());
  }
  std::filesystem::resize_file(temp_path("store_missing_shard") +
                                   "/shard-0000.bin",
                               4);  // drop 3 of the 4 words
  corpus::CorpusStore store;
  ASSERT_TRUE(store.open(dir).ok());
  core::Program p;
  const ser::Status s = store.read_program(0, &p);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("truncated"), std::string::npos) << s.message();
}

// ---- Gpt model files (the save/load diagnostics satellite) ------------------

TEST(SnapshotRoundTrip, GptLoadDiagnosticsAreSpecific) {
  const ml::GptConfig cfg = ml::GptConfig::tiny();
  ml::Gpt model(cfg, 7);
  const std::string path = temp_path("gpt_diag.bin");
  ASSERT_TRUE(model.save(path).ok());

  // Missing file: errno surfaces.
  ser::Status s = model.load(temp_path("gpt_missing.bin"));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("errno"), std::string::npos) << s.message();

  // Truncated file.
  std::filesystem::resize_file(path, 24);
  s = model.load(path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("truncated"), std::string::npos) << s.message();

  // Unwritable path on save: errno surfaces.
  s = model.save(temp_path("no_such_dir") + "/model.bin");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("errno"), std::string::npos) << s.message();
}

// ---- BPE vocab --------------------------------------------------------------

TEST(SnapshotRoundTrip, BpeVocabBitExact) {
  corpus::CorpusGenerator gen(corpus::CorpusConfig{}, 3);
  const auto data = gen.dataset(40);
  const ml::BpeTokenizer bpe = ml::BpeTokenizer::train(data, 300);
  ASSERT_GT(bpe.num_merges(), 0);

  ser::Writer w;
  bpe.save_state(w);
  ml::BpeTokenizer restored = ml::BpeTokenizer::train(data, 259);  // no merges
  ser::Reader r(w.buffer());
  ASSERT_TRUE(restored.restore_state(r));
  ASSERT_TRUE(r.done());
  EXPECT_EQ(restored.vocab_size(), bpe.vocab_size());
  EXPECT_EQ(restored.serialize(), bpe.serialize());
  EXPECT_EQ(restored.encode(data[0]), bpe.encode(data[0]));

  for (std::size_t cut = 0; cut + 1 < w.buffer().size(); cut += 3) {
    ml::BpeTokenizer other = ml::BpeTokenizer::train(data, 259);
    ser::Reader rc(w.buffer().substr(0, cut));
    EXPECT_FALSE(other.restore_state(rc)) << "prefix " << cut;
  }
}

// ---- generators -------------------------------------------------------------

/// Behavioral bit-exactness: a restored generator must produce the same
/// batches and react to the same feedback as the original from here on.
template <typename Gen>
void expect_same_future(Gen& a, Gen& b, std::size_t batches) {
  for (std::size_t i = 0; i < batches; ++i) {
    const auto ba = a.next_batch(8);
    const auto bb = b.next_batch(8);
    ASSERT_EQ(ba, bb) << "batch " << i;
    // Synthetic feedback so corpus-retention paths run too.
    std::vector<cov::TestCoverage> tcs(ba.size());
    std::vector<std::uint64_t> ctrl(ba.size(), 0);
    for (std::size_t t = 0; t < ba.size(); ++t) {
      tcs[t].standalone_bins = 5 + t;
      tcs[t].incremental_bins = t % 3;
      tcs[t].total_bins = 100 + t;
      tcs[t].universe_bins = 1000;
      ctrl[t] = t % 4;
    }
    core::Feedback fb;
    fb.batch = &ba;
    fb.coverages = &tcs;
    fb.ctrl_new_states = &ctrl;
    a.feedback(fb);
    core::Feedback fb2 = fb;
    fb2.batch = &bb;
    b.feedback(fb2);
  }
}

TEST(SnapshotRoundTrip, MutationalFuzzerContinuesIdentically) {
  baselines::TheHuzzFuzzer original(42);
  baselines::TheHuzzFuzzer warmup(42);
  expect_same_future(original, warmup, 3);  // advance both to a rich state

  ser::Writer w;
  original.save_state(w);
  baselines::TheHuzzFuzzer restored(1234);  // different seed, overwritten
  ser::Reader r(w.buffer());
  ASSERT_TRUE(restored.restore_state(r));
  ASSERT_TRUE(r.done());
  expect_same_future(original, restored, 3);

  for (std::size_t cut = 0; cut < w.buffer().size(); cut += 11) {
    baselines::TheHuzzFuzzer other(1);
    ser::Reader rc(w.buffer().substr(0, cut));
    EXPECT_FALSE(other.restore_state(rc)) << "prefix " << cut;
  }
}

TEST(SnapshotRoundTrip, PsoFuzzerContinuesIdentically) {
  baselines::PsoFuzzer original(7);
  baselines::PsoFuzzer warmup(7);
  expect_same_future(original, warmup, 3);

  ser::Writer w;
  original.save_state(w);
  baselines::PsoFuzzer restored(99);
  ser::Reader r(w.buffer());
  ASSERT_TRUE(restored.restore_state(r));
  ASSERT_TRUE(r.done());
  EXPECT_EQ(restored.swarm_updates(), original.swarm_updates());
  expect_same_future(original, restored, 2);
}

TEST(SnapshotRoundTrip, CorpusGeneratorContinuesIdentically) {
  corpus::CorpusGenerator original(corpus::CorpusConfig{}, 11);
  (void)original.dataset(5);  // advance the stream
  ser::Writer w;
  original.save_state(w);

  corpus::CorpusGenerator restored(corpus::CorpusConfig{}, 999);
  ser::Reader r(w.buffer());
  ASSERT_TRUE(restored.restore_state(r));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(original.function(), restored.function());
    EXPECT_EQ(original.prompt(3), restored.prompt(3));
  }
}

TEST(SnapshotRoundTrip, VmCorpusGeneratorContinuesIdentically) {
  // Priv/Sv39-dense configuration: the VM idiom consumes far more RNG draws
  // per sample (PTE flag rolls, delegation rolls, stale-TLB tail) than the
  // plain idioms, so the stream position a snapshot must capture is much
  // richer. The config itself is NOT part of the snapshot — the restoring
  // side supplies it, and the stream must continue bit-exactly under it.
  corpus::CorpusConfig cc;
  cc.w_vm = 4.0;
  cc.w_priv = 2.0;
  corpus::CorpusGenerator original(cc, 21);
  (void)original.dataset(5);
  ser::Writer w;
  original.save_state(w);

  corpus::CorpusGenerator restored(cc, 777);
  ser::Reader r(w.buffer());
  ASSERT_TRUE(restored.restore_state(r));
  bool saw_vm_idiom = false;
  for (int i = 0; i < 8; ++i) {
    const corpus::Program p = original.function();
    EXPECT_EQ(p, restored.function());
    for (const std::uint32_t word : p) {
      if (word == 0x12000073u || word == 0x30200073u) {  // sfence.vma / mret
        saw_vm_idiom = true;
      }
    }
  }
  // Guard against a vacuous pass: the dense-VM stream must actually emit
  // privileged bring-up sequences.
  EXPECT_TRUE(saw_vm_idiom);
}

}  // namespace
}  // namespace chatfuzz
