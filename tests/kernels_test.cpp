// Parity and determinism tests for the vectorized ML kernel subsystem
// (ml/kernels.h): every optimized kernel against its naive reference on
// randomized shapes, bit-identical results across thread counts, and
// end-to-end incremental-vs-full generation parity.
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "ml/gpt.h"
#include "ml/kernels.h"
#include "util/rng.h"

namespace kern = chatfuzz::ml::kern;
using chatfuzz::Rng;
using chatfuzz::ml::Gpt;
using chatfuzz::ml::GptConfig;

namespace {

std::vector<float> random_vec(Rng& rng, std::size_t n, float scale = 1.f) {
  std::vector<float> v(n);
  for (float& x : v) x = (static_cast<float>(rng.uniform()) - 0.5f) * scale;
  return v;
}

/// Relative-ish tolerance: the optimized kernels keep the reference
/// accumulation order, but FMA contraction differs between loop shapes.
void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float mag = std::max(1.f, std::fabs(b[i]));
    ASSERT_NEAR(a[i], b[i], tol * mag) << "at " << i;
  }
}

struct Shape {
  int N, Cin, Cout;
};

const Shape kShapes[] = {
    {1, 16, 48},  {1, 128, 259}, {3, 64, 256},  {5, 37, 91},
    {8, 128, 512}, {17, 1, 7},   {2, 200, 1},   {64, 48, 48},
};

}  // namespace

TEST(Kernels, MatmulForwardMatchesRef) {
  Rng rng(11);
  for (const Shape& s : kShapes) {
    const auto inp = random_vec(rng, static_cast<std::size_t>(s.N) * s.Cin);
    const auto w =
        random_vec(rng, static_cast<std::size_t>(s.Cout) * s.Cin, 0.2f);
    const auto bias = random_vec(rng, s.Cout);
    std::vector<float> ref(static_cast<std::size_t>(s.N) * s.Cout);
    std::vector<float> fast(ref.size());
    kern::matmul_forward_ref(ref.data(), inp.data(), w.data(), bias.data(),
                             s.N, s.Cin, s.Cout);
    kern::matmul_forward(fast.data(), inp.data(), w.data(), bias.data(), s.N,
                         s.Cin, s.Cout);
    expect_close(fast, ref, 1e-5f);
    // nullptr bias path
    kern::matmul_forward_ref(ref.data(), inp.data(), w.data(), nullptr, s.N,
                             s.Cin, s.Cout);
    kern::matmul_forward(fast.data(), inp.data(), w.data(), nullptr, s.N,
                         s.Cin, s.Cout);
    expect_close(fast, ref, 1e-5f);
  }
}

TEST(Kernels, MatmulBackwardMatchesRef) {
  Rng rng(12);
  for (const Shape& s : kShapes) {
    const auto inp = random_vec(rng, static_cast<std::size_t>(s.N) * s.Cin);
    const auto w =
        random_vec(rng, static_cast<std::size_t>(s.Cout) * s.Cin, 0.2f);
    const auto dout = random_vec(rng, static_cast<std::size_t>(s.N) * s.Cout);
    // Non-zero initial accumulators: backward kernels accumulate (+=).
    const auto seed_di = random_vec(rng, inp.size(), 0.1f);
    const auto seed_dw = random_vec(rng, w.size(), 0.1f);
    const auto seed_db = random_vec(rng, s.Cout, 0.1f);

    auto di_ref = seed_di, dw_ref = seed_dw, db_ref = seed_db;
    auto di_fast = seed_di, dw_fast = seed_dw, db_fast = seed_db;
    kern::matmul_backward_ref(di_ref.data(), dw_ref.data(), db_ref.data(),
                              dout.data(), inp.data(), w.data(), s.N, s.Cin,
                              s.Cout);
    kern::matmul_backward(di_fast.data(), dw_fast.data(), db_fast.data(),
                          dout.data(), inp.data(), w.data(), s.N, s.Cin,
                          s.Cout);
    expect_close(di_fast, di_ref, 1e-5f);
    expect_close(dw_fast, dw_ref, 1e-5f);
    expect_close(db_fast, db_ref, 1e-5f);
  }
}

TEST(Kernels, FusedBiasGeluMatchesComposition) {
  Rng rng(13);
  const Shape s{6, 48, 96};
  const auto inp = random_vec(rng, static_cast<std::size_t>(s.N) * s.Cin);
  const auto w = random_vec(rng, static_cast<std::size_t>(s.Cout) * s.Cin, 0.2f);
  const auto bias = random_vec(rng, s.Cout);
  std::vector<float> pre_ref(static_cast<std::size_t>(s.N) * s.Cout);
  std::vector<float> post_ref(pre_ref.size());
  kern::matmul_forward_ref(pre_ref.data(), inp.data(), w.data(), bias.data(),
                           s.N, s.Cin, s.Cout);
  kern::gelu_forward_ref(post_ref.data(), pre_ref.data(),
                         static_cast<int>(pre_ref.size()));
  std::vector<float> pre(pre_ref.size()), post(pre_ref.size());
  kern::matmul_bias_gelu_forward(pre.data(), post.data(), inp.data(), w.data(),
                                 bias.data(), s.N, s.Cin, s.Cout);
  expect_close(pre, pre_ref, 1e-5f);
  expect_close(post, post_ref, 1e-5f);
}

TEST(Kernels, PackedMatvecMatchesRef) {
  Rng rng(14);
  for (const Shape& s : kShapes) {
    const auto inp = random_vec(rng, static_cast<std::size_t>(s.N) * s.Cin);
    const auto w =
        random_vec(rng, static_cast<std::size_t>(s.Cout) * s.Cin, 0.2f);
    const auto bias = random_vec(rng, s.Cout);
    kern::PackedMat packed;
    kern::pack_transpose(packed, w.data(), s.Cout, s.Cin);
    ASSERT_EQ(packed.cout, s.Cout);
    ASSERT_EQ(packed.cin, s.Cin);
    std::vector<float> ref(static_cast<std::size_t>(s.N) * s.Cout);
    std::vector<float> fast(ref.size());
    kern::matmul_forward_ref(ref.data(), inp.data(), w.data(), bias.data(),
                             s.N, s.Cin, s.Cout);
    kern::matmul_forward_packed(fast.data(), inp.data(), packed, bias.data(),
                                s.N);
    expect_close(fast, ref, 1e-5f);
  }
}

TEST(Kernels, ThreadSplitterIsBitIdentical) {
  Rng rng(15);
  const Shape s{61, 96, 224};  // enough work to actually engage the pool
  const auto inp = random_vec(rng, static_cast<std::size_t>(s.N) * s.Cin);
  const auto w = random_vec(rng, static_cast<std::size_t>(s.Cout) * s.Cin, 0.2f);
  const auto bias = random_vec(rng, s.Cout);
  const auto dout = random_vec(rng, static_cast<std::size_t>(s.N) * s.Cout);

  const int saved = kern::num_threads();
  std::vector<std::vector<float>> outs, dis, dws, dbs;
  for (const int nt : {1, 3, 7}) {
    kern::set_num_threads(nt);
    std::vector<float> out(static_cast<std::size_t>(s.N) * s.Cout);
    kern::matmul_forward(out.data(), inp.data(), w.data(), bias.data(), s.N,
                         s.Cin, s.Cout);
    std::vector<float> di(inp.size(), 0.f), dw(w.size(), 0.f),
        db(s.Cout, 0.f);
    kern::matmul_backward(di.data(), dw.data(), db.data(), dout.data(),
                          inp.data(), w.data(), s.N, s.Cin, s.Cout);
    outs.push_back(std::move(out));
    dis.push_back(std::move(di));
    dws.push_back(std::move(dw));
    dbs.push_back(std::move(db));
  }
  kern::set_num_threads(saved);
  for (std::size_t i = 1; i < outs.size(); ++i) {
    // Bit-identical, not merely close: the determinism contract.
    EXPECT_EQ(0, std::memcmp(outs[0].data(), outs[i].data(),
                             outs[0].size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(dis[0].data(), dis[i].data(),
                             dis[0].size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(dws[0].data(), dws[i].data(),
                             dws[0].size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(dbs[0].data(), dbs[i].data(),
                             dbs[0].size() * sizeof(float)));
  }
}

// ---- end-to-end model parity ------------------------------------------------

TEST(Kernels, ForwardMatchesRefKernelsEndToEnd) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt fast(cfg, 77);
  Gpt ref(cfg, 77);
  ref.set_use_ref_kernels(true);
  Rng rng(3);
  const int B = 2, T = 10;
  std::vector<int> toks(B * T);
  for (int& t : toks) t = static_cast<int>(rng.below(cfg.vocab));
  fast.forward(toks.data(), B, T);
  ref.forward(toks.data(), B, T);
  const float* lf = fast.logits();
  const float* lr = ref.logits();
  for (int i = 0; i < B * T * cfg.vocab; ++i) {
    ASSERT_NEAR(lf[i], lr[i], 1e-3f) << i;
  }
}

TEST(Kernels, GenStepMatchesForwardAtEveryPosition) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt model(cfg, 99);
  Rng rng(5);
  const int T = 20;
  std::vector<int> seq(T);
  for (int& t : seq) t = static_cast<int>(rng.below(cfg.vocab));

  model.forward(seq.data(), 1, T);
  std::vector<float> full(static_cast<std::size_t>(T) * cfg.vocab);
  std::memcpy(full.data(), model.logits(), full.size() * sizeof(float));

  Gpt::GenState st = model.gen_begin(1);
  std::vector<float> step(cfg.vocab);
  for (int t = 0; t < T; ++t) {
    model.gen_step(st, &seq[t], step.data());
    for (int v = 0; v < cfg.vocab; ++v) {
      ASSERT_NEAR(step[v], full[static_cast<std::size_t>(t) * cfg.vocab + v],
                  1e-3f)
          << "t=" << t << " v=" << v;
    }
  }
}

TEST(Kernels, GenStepPackedMatchesRefPath) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt fast(cfg, 123);
  Gpt ref(cfg, 123);
  ref.set_use_ref_kernels(true);
  Rng rng(7);
  const int B = 2, T = 16;
  Gpt::GenState sf = fast.gen_begin(B);
  Gpt::GenState sr = ref.gen_begin(B);
  EXPECT_FALSE(sf.wpack.empty());
  EXPECT_TRUE(sr.wpack.empty());
  std::vector<int> toks(B);
  std::vector<float> lf(static_cast<std::size_t>(B) * cfg.vocab);
  std::vector<float> lr(lf.size());
  for (int t = 0; t < T; ++t) {
    for (int b = 0; b < B; ++b) {
      toks[b] = static_cast<int>(rng.below(cfg.vocab));
    }
    fast.gen_step(sf, toks.data(), lf.data());
    ref.gen_step(sr, toks.data(), lr.data());
    for (std::size_t i = 0; i < lf.size(); ++i) {
      ASSERT_NEAR(lf[i], lr[i], 1e-3f) << "t=" << t << " i=" << i;
    }
  }
}

TEST(Kernels, GenerationBeyondOldFixedScratchBound) {
  // The seed used a fixed float[512] attention-score stack buffer in
  // gen_step; a ctx above 512 would have overrun it. The scratch is now
  // sized from the config.
  const GptConfig cfg{32, 520, 1, 2, 8};
  Gpt model(cfg, 9);
  Gpt::GenState st = model.gen_begin(1);
  std::vector<float> logits(cfg.vocab);
  int tok = 1;
  for (int t = 0; t < cfg.ctx; ++t) {
    model.gen_step(st, &tok, logits.data());
    tok = t % cfg.vocab;
  }
  for (int v = 0; v < cfg.vocab; ++v) {
    ASSERT_TRUE(std::isfinite(logits[v])) << v;
  }
}

TEST(KernelsDeathTest, RejectsIndivisibleHeadSplit) {
  // n_embd % n_head != 0 must die loudly at construction, not corrupt
  // memory in the attention head split later.
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const GptConfig bad{64, 32, 1, 3, 16};
  EXPECT_DEATH({ Gpt model(bad, 1); }, "divisible by n_head");
}

TEST(KernelsDeathTest, RejectsNonPositiveCtx) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const GptConfig bad{64, 0, 1, 2, 16};
  EXPECT_DEATH({ Gpt model(bad, 1); }, "invalid config");
}
