// Corpus generator tests: every emitted sample must be fully valid machine
// code with function structure and controlled rare-instruction content; the
// TheHuzz-style random generator must emit valid but unstructured code.
#include <gtest/gtest.h>

#include <map>

#include "corpus/generator.h"
#include "riscv/decode.h"

namespace chatfuzz::corpus {
namespace {

class CorpusSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorpusSeeds, FunctionsAreFullyValid) {
  CorpusGenerator gen(CorpusConfig{}, GetParam());
  for (int i = 0; i < 20; ++i) {
    const Program fn = gen.function();
    EXPECT_EQ(riscv::count_invalid(fn), 0u);
    EXPECT_GE(fn.size(), 10u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusSeeds,
                         ::testing::Values(1, 2, 3, 42, 999));

TEST(Corpus, DeterministicUnderSeed) {
  CorpusGenerator a(CorpusConfig{}, 7);
  CorpusGenerator b(CorpusConfig{}, 7);
  EXPECT_EQ(a.function(), b.function());
  EXPECT_EQ(a.function(), b.function());
}

TEST(Corpus, PrologueAndEpilogueShape) {
  CorpusGenerator gen(CorpusConfig{}, 3);
  const Program fn = gen.function();
  // Prologue: stack adjust.
  const riscv::Decoded first = riscv::decode(fn.front());
  EXPECT_EQ(first.op, riscv::Opcode::kAddi);
  EXPECT_EQ(first.rd, 2);   // sp
  EXPECT_EQ(first.imm, -32);
  // Epilogue: ret (jalr x0, ra).
  const riscv::Decoded last = riscv::decode(fn.back());
  EXPECT_EQ(last.op, riscv::Opcode::kJalr);
  EXPECT_EQ(last.rd, 0);
  EXPECT_EQ(last.rs1, 1);
}

TEST(Corpus, NoPrologueOptionOmitsIt) {
  CorpusConfig cfg;
  cfg.with_prologue = false;
  CorpusGenerator gen(cfg, 3);
  const Program fn = gen.function();
  const riscv::Decoded last = riscv::decode(fn.back());
  EXPECT_NE(last.op, riscv::Opcode::kJalr);
}

TEST(Corpus, BranchOffsetsStayInsideFunction) {
  CorpusGenerator gen(CorpusConfig{}, 11);
  for (int i = 0; i < 50; ++i) {
    const Program fn = gen.function();
    for (std::size_t at = 0; at < fn.size(); ++at) {
      const riscv::Decoded d = riscv::decode(fn[at]);
      if (!d.valid()) continue;
      if (riscv::spec(d.op).format != riscv::Format::kB) continue;
      const std::int64_t target =
          static_cast<std::int64_t>(at) * 4 + d.imm;
      EXPECT_GE(target, 0) << "backward branch escapes function";
      EXPECT_LE(target, static_cast<std::int64_t>(fn.size()) * 4)
          << "forward branch escapes function";
    }
  }
}

TEST(Corpus, DatasetHasRequestedSize) {
  CorpusGenerator gen(CorpusConfig{}, 5);
  EXPECT_EQ(gen.dataset(37).size(), 37u);
}

TEST(Corpus, PromptIsTruncatedFunction) {
  CorpusGenerator gen(CorpusConfig{}, 5);
  for (unsigned k = 2; k <= 5; ++k) {
    const Program p = gen.prompt(k);
    EXPECT_LE(p.size(), k);
    EXPECT_EQ(riscv::count_invalid(p), 0u);
  }
}

TEST(Corpus, IdiomMixCoversExtensions) {
  // Over many samples, the corpus must contain M, A, Zicsr, Zifencei and
  // privileged instructions — the deep-coverage vocabulary.
  CorpusGenerator gen(CorpusConfig{}, 8);
  std::map<riscv::Ext, int> seen;
  for (int i = 0; i < 200; ++i) {
    for (std::uint32_t w : gen.function()) {
      const riscv::Decoded d = riscv::decode(w);
      if (d.valid()) ++seen[riscv::spec(d.op).ext];
    }
  }
  EXPECT_GT(seen[riscv::Ext::kI], 0);
  EXPECT_GT(seen[riscv::Ext::kM], 0);
  EXPECT_GT(seen[riscv::Ext::kA], 0);
  EXPECT_GT(seen[riscv::Ext::kZicsr], 0);
  EXPECT_GT(seen[riscv::Ext::kZifencei], 0);
  EXPECT_GT(seen[riscv::Ext::kPriv], 0);
}

TEST(Corpus, RegisterEntanglement) {
  // Most instructions should consume a recently defined register — that is
  // the paper's "interdependent" property. Measure def-use locality.
  CorpusGenerator gen(CorpusConfig{}, 13);
  int uses = 0, entangled = 0;
  for (int i = 0; i < 100; ++i) {
    const Program fn = gen.function();
    std::vector<std::uint8_t> recent;
    for (std::uint32_t w : fn) {
      const riscv::Decoded d = riscv::decode(w);
      if (!d.valid()) continue;
      if (d.rs1 != 0) {
        ++uses;
        for (std::uint8_t r : recent) {
          if (r == d.rs1) {
            ++entangled;
            break;
          }
        }
      }
      if (d.rd != 0) {
        recent.push_back(d.rd);
        if (recent.size() > 6) recent.erase(recent.begin());
      }
    }
  }
  EXPECT_GT(static_cast<double>(entangled) / uses, 0.35)
      << "corpus lost its def-use entanglement";
}

TEST(RandomValid, ProducesOnlyValidInstructions) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Program p = random_valid_program(rng, 30);
    EXPECT_EQ(p.size(), 30u);
    EXPECT_EQ(riscv::count_invalid(p), 0u);
  }
}

TEST(RandomValid, IsUnstructured) {
  // Sanity: random programs have much lower def-use locality than corpus
  // functions (this is the property that separates TheHuzz seeds from
  // ChatFuzz generations).
  Rng rng(3);
  int uses = 0, entangled = 0;
  for (int i = 0; i < 100; ++i) {
    const Program p = random_valid_program(rng, 30);
    std::vector<std::uint8_t> recent;
    for (std::uint32_t w : p) {
      const riscv::Decoded d = riscv::decode(w);
      if (!d.valid()) continue;
      if (d.rs1 != 0) {
        ++uses;
        for (std::uint8_t r : recent) {
          if (r == d.rs1) {
            ++entangled;
            break;
          }
        }
      }
      if (d.rd != 0) {
        recent.push_back(d.rd);
        if (recent.size() > 6) recent.erase(recent.begin());
      }
    }
  }
  EXPECT_LT(static_cast<double>(entangled) / uses, 0.3);
}

}  // namespace
}  // namespace chatfuzz::corpus
