// ML subsystem tests: tokenizer round-trips, finite-difference gradient
// checks on the hand-written backprop, LM training convergence, KV-cache
// generation vs. full forward consistency, sampler determinism, AdamW, and
// a PPO sanity task (policy learns to prefer a rewarded token).
#include <gtest/gtest.h>

#include <cmath>

#include "ml/adamw.h"
#include "ml/gpt.h"
#include "ml/ppo.h"
#include "ml/sampler.h"
#include "ml/tokenizer.h"
#include "riscv/encode.h"
#include "util/rng.h"

namespace chatfuzz::ml {
namespace {

// ---- tokenizer ---------------------------------------------------------------

TEST(Tokenizer, RoundTripsPrograms) {
  Tokenizer tok;
  const std::vector<std::uint32_t> prog = {
      riscv::enc_i(riscv::Opcode::kAddi, 1, 0, 5),
      riscv::enc_r(riscv::Opcode::kAdd, 2, 1, 1), 0xdeadbeefu};
  const auto tokens = tok.encode(prog, true, true);
  EXPECT_EQ(tokens.size(), prog.size() * 4 + 2);
  EXPECT_EQ(tokens.front(), Tokenizer::kBos);
  EXPECT_EQ(tokens.back(), Tokenizer::kEos);
  EXPECT_EQ(tok.decode(tokens), prog);
}

TEST(Tokenizer, DecodeStopsAtEos) {
  Tokenizer tok;
  std::vector<int> tokens = {Tokenizer::kBos, 1, 2, 3, 4, Tokenizer::kEos,
                             5, 6, 7, 8};
  const auto words = tok.decode(tokens);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0x04030201u);
}

TEST(Tokenizer, IncompleteTrailingBytesDropped) {
  Tokenizer tok;
  std::vector<int> tokens = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(tok.decode(tokens).size(), 1u);
}

TEST(Tokenizer, AllTokensWithinVocab) {
  Tokenizer tok;
  const auto tokens = tok.encode(std::vector<std::uint32_t>{0xffffffffu}, true, true);
  for (int t : tokens) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, Tokenizer::kVocabSize);
  }
}

// ---- gradient check -----------------------------------------------------------

float lm_loss_only(Gpt& model, const int* tokens, const int* targets, int B,
                   int T) {
  model.forward(tokens, B, T);
  const float* probs = model.probs();
  const int V = model.config().vocab;
  float loss = 0.f;
  int count = 0;
  for (int n = 0; n < B * T; ++n) {
    if (targets[n] < 0) continue;
    loss += -std::log(probs[static_cast<std::size_t>(n) * V + targets[n]] + 1e-10f);
    ++count;
  }
  return loss / static_cast<float>(count);
}

TEST(GradCheck, BackwardMatchesFiniteDifferences) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt model(cfg, 123);
  Rng rng(9);
  const int B = 2, T = 8;
  std::vector<int> tokens(B * T), targets(B * T);
  for (auto& t : tokens) t = static_cast<int>(rng.below(cfg.vocab));
  for (auto& t : targets) t = static_cast<int>(rng.below(cfg.vocab));
  targets[3] = -1;  // exercise the ignore path

  model.forward(tokens.data(), B, T);
  model.zero_grad();
  model.backward_lm(tokens.data(), targets.data(), B, T);
  const std::vector<float> grads = model.grads();

  // Probe a spread of parameter indices; double-sided differences.
  int checked = 0;
  for (int probe = 0; probe < 300 && checked < 25; ++probe) {
    const std::size_t idx = rng.below(model.num_params());
    if (std::fabs(grads[idx]) < 1e-4f) continue;  // numerically fragile
    const float eps = 1e-2f;
    const float orig = model.params()[idx];
    model.params()[idx] = orig + eps;
    const float lp = lm_loss_only(model, tokens.data(), targets.data(), B, T);
    model.params()[idx] = orig - eps;
    const float lm = lm_loss_only(model, tokens.data(), targets.data(), B, T);
    model.params()[idx] = orig;
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(numeric, grads[idx],
                std::max(2e-2f, 0.15f * std::fabs(grads[idx])))
        << "param index " << idx;
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

TEST(GradCheck, ValueHeadGradient) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt model(cfg, 5);
  Rng rng(11);
  const int B = 1, T = 4;
  std::vector<int> tokens(B * T);
  for (auto& t : tokens) t = static_cast<int>(rng.below(cfg.vocab));
  model.forward(tokens.data(), B, T);
  // Loss = value at position 2 (dvalue = 1 there).
  std::vector<float> dlogits(static_cast<std::size_t>(B) * T * cfg.vocab, 0.f);
  std::vector<float> dvalues(static_cast<std::size_t>(B) * T, 0.f);
  dvalues[2] = 1.f;
  model.zero_grad();
  model.backward_from(tokens.data(), dlogits.data(), dvalues.data(), B, T);
  const std::vector<float> grads = model.grads();

  auto value_at_2 = [&]() {
    model.forward(tokens.data(), B, T);
    return model.values()[2];
  };
  Rng probe_rng(17);
  int checked = 0;
  for (int probe = 0; probe < 200 && checked < 10; ++probe) {
    const std::size_t idx = probe_rng.below(model.num_params());
    if (std::fabs(grads[idx]) < 1e-4f) continue;
    const float eps = 1e-2f;
    const float orig = model.params()[idx];
    model.params()[idx] = orig + eps;
    const float vp = value_at_2();
    model.params()[idx] = orig - eps;
    const float vm = value_at_2();
    model.params()[idx] = orig;
    const float numeric = (vp - vm) / (2 * eps);
    EXPECT_NEAR(numeric, grads[idx],
                std::max(2e-2f, 0.15f * std::fabs(grads[idx])));
    ++checked;
  }
  EXPECT_GE(checked, 3);
}

// ---- training convergence -------------------------------------------------------

TEST(Training, LossDecreasesOnFixedBatch) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt model(cfg, 3);
  AdamW opt(model.num_params(), AdamWConfig{1e-2f});
  Rng rng(4);
  const int B = 4, T = 16;
  std::vector<int> tokens(B * T), targets(B * T);
  for (int n = 0; n < B * T; ++n) {
    tokens[n] = static_cast<int>(rng.below(8));   // tiny sub-vocabulary
    targets[n] = (tokens[n] + 1) % 8;             // deterministic mapping
  }
  float first = 0.f, last = 0.f;
  for (int step = 0; step < 60; ++step) {
    model.forward(tokens.data(), B, T);
    model.zero_grad();
    const float loss = model.backward_lm(tokens.data(), targets.data(), B, T);
    opt.step(model.params(), model.grads());
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.2f) << "first=" << first << " last=" << last;
}

// ---- KV-cache generation consistency ---------------------------------------------

TEST(Generation, IncrementalMatchesFullForward) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt model(cfg, 21);
  Rng rng(2);
  const int T = 12;
  std::vector<int> seq(T);
  for (auto& t : seq) t = static_cast<int>(rng.below(cfg.vocab));

  // Full forward logits at the last position...
  model.forward(seq.data(), 1, T);
  std::vector<float> full(model.config().vocab);
  const float* logits = model.logits();
  for (int v = 0; v < cfg.vocab; ++v) {
    full[v] = logits[static_cast<std::size_t>(T - 1) * cfg.vocab + v];
  }
  // ...must match the KV-cache path fed token by token.
  Gpt::GenState st = model.gen_begin(1);
  std::vector<float> step_logits(cfg.vocab);
  for (int t = 0; t < T; ++t) {
    model.gen_step(st, &seq[t], step_logits.data());
  }
  for (int v = 0; v < cfg.vocab; ++v) {
    EXPECT_NEAR(step_logits[v], full[v], 1e-3f) << v;
  }
}

TEST(Generation, BatchLanesAreIndependent) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt model(cfg, 21);
  const int B = 3;
  Gpt::GenState st = model.gen_begin(B);
  std::vector<int> toks = {5, 9, 13};
  std::vector<float> logits(static_cast<std::size_t>(B) * cfg.vocab);
  model.gen_step(st, toks.data(), logits.data());
  // Lane 1 must equal a single-lane run with the same token.
  Gpt::GenState solo = model.gen_begin(1);
  std::vector<float> solo_logits(cfg.vocab);
  model.gen_step(solo, &toks[1], solo_logits.data());
  for (int v = 0; v < cfg.vocab; ++v) {
    EXPECT_NEAR(logits[cfg.vocab + v], solo_logits[v], 1e-4f);
  }
}

// ---- sampler ---------------------------------------------------------------------

TEST(Sampler, DeterministicUnderFixedSeed) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt model(cfg, 30);
  SampleConfig sc;
  sc.max_new_tokens = 12;
  sc.eos_token = 999;  // never sampled: outside vocab
  Sampler sampler(sc);
  Rng r1(5), r2(5);
  const std::vector<std::vector<int>> prompts = {{1, 2, 3}, {4}};
  const auto g1 = sampler.generate(model, prompts, r1);
  const auto g2 = sampler.generate(model, prompts, r2);
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_EQ(g1[i].response, g2[i].response);
  }
}

TEST(Sampler, RespectsMaxNewTokens) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt model(cfg, 30);
  SampleConfig sc;
  sc.max_new_tokens = 7;
  sc.eos_token = 999;
  Sampler sampler(sc);
  Rng rng(5);
  const auto gens = sampler.generate(model, {{1, 2}}, rng);
  EXPECT_EQ(gens[0].response.size(), 7u);
  EXPECT_EQ(gens[0].response_logps.size(), 7u);
}

TEST(Sampler, MinNewTokensMasksEos) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt model(cfg, 30);
  SampleConfig sc;
  sc.max_new_tokens = 20;
  sc.min_new_tokens = 20;
  sc.eos_token = 7;  // a token the tiny model would otherwise emit
  sc.top_k = 0;
  Sampler sampler(sc);
  Rng rng(5);
  const auto gens = sampler.generate(model, {{1}}, rng);
  ASSERT_EQ(gens[0].response.size(), 20u);
  for (int t : gens[0].response) EXPECT_NE(t, 7);
}

TEST(Sampler, LogpsAreSane) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt model(cfg, 30);
  SampleConfig sc;
  sc.max_new_tokens = 5;
  sc.eos_token = 999;
  Sampler sampler(sc);
  Rng rng(5);
  const auto gens = sampler.generate(model, {{1, 2, 3}}, rng);
  for (float lp : gens[0].response_logps) {
    EXPECT_LE(lp, 0.f);
    EXPECT_GT(lp, -20.f);
  }
}

// ---- AdamW -----------------------------------------------------------------------

TEST(AdamWOpt, ConvergesOnQuadratic) {
  // min (x - 3)^2 via AdamW on a 1-element "model".
  std::vector<float> params = {0.f};
  std::vector<float> grads = {0.f};
  AdamW opt(1, AdamWConfig{0.1f, 0.9f, 0.999f, 1e-8f, 0.f, 0.f});
  for (int i = 0; i < 300; ++i) {
    grads[0] = 2.f * (params[0] - 3.f);
    opt.step(params, grads);
  }
  EXPECT_NEAR(params[0], 3.f, 0.05f);
}

TEST(AdamWOpt, GradClipBoundsNorm) {
  std::vector<float> params = {0.f, 0.f};
  std::vector<float> grads = {3e6f, 4e6f};
  AdamW opt(2, AdamWConfig{1.f, 0.9f, 0.999f, 1e-8f, 0.f, 1.0f});
  opt.step(params, grads);
  const float norm = std::sqrt(grads[0] * grads[0] + grads[1] * grads[1]);
  EXPECT_NEAR(norm, 1.0f, 1e-3f);
}

// ---- PPO sanity -------------------------------------------------------------------

TEST(Ppo, PolicyLearnsRewardedToken) {
  // Dense per-token reward: +1 for every response token equal to `kLucky`,
  // -0.1 otherwise. PPO must substantially raise the sampling probability of
  // the lucky token.
  constexpr int kLucky = 11;
  const GptConfig cfg = GptConfig::tiny();
  Gpt policy(cfg, 77);
  Gpt ref(cfg, 77);
  ref.copy_params_from(policy);
  PpoConfig pc;
  pc.lr = 3e-3f;
  pc.kl_beta = 0.0f;  // pure reward for this sanity check
  pc.reward_scale = 1.0f;
  pc.ppo_epochs = 2;
  PpoTrainer ppo(policy, ref, pc);
  SampleConfig sc;
  sc.max_new_tokens = 6;
  sc.eos_token = 999;
  sc.top_k = 0;
  Sampler sampler(sc);
  Rng rng(8);
  const std::vector<std::vector<int>> prompts(16, std::vector<int>{1, 2});

  auto lucky_prob = [&] {
    std::vector<int> toks = {1, 2};
    policy.forward(toks.data(), 1, 2);
    return std::exp(policy.logprob(0, 1, kLucky));
  };
  const float before = lucky_prob();
  for (int iter = 0; iter < 60; ++iter) {
    const auto gens = sampler.generate(policy, prompts, rng);
    std::vector<double> rewards(gens.size(), 0.0);
    std::vector<std::vector<float>> dense(gens.size());
    for (std::size_t i = 0; i < gens.size(); ++i) {
      for (int t : gens[i].response) {
        dense[i].push_back(t == kLucky ? 1.f : -0.1f);
      }
    }
    ppo.update(gens, rewards, &dense);
  }
  const float after = lucky_prob();
  EXPECT_GT(after, before * 3.f) << "before=" << before << " after=" << after;
  EXPECT_GT(after, 0.2f);
}

TEST(Ppo, StatsArePopulated) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt policy(cfg, 7), ref(cfg, 7);
  ref.copy_params_from(policy);
  PpoTrainer ppo(policy, ref, PpoConfig{});
  SampleConfig sc;
  sc.max_new_tokens = 6;
  sc.eos_token = 999;
  Sampler sampler(sc);
  Rng rng(3);
  const auto gens = sampler.generate(policy, {{1}, {2}}, rng);
  const PpoStats st = ppo.update(gens, {1.0, -1.0});
  EXPECT_EQ(st.num_actions, 12u);
  EXPECT_FLOAT_EQ(st.mean_env_reward, 0.f);
  EXPECT_GT(st.value_loss, 0.f);
}

TEST(Ppo, EmptyResponsesAreSkipped) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt policy(cfg, 7), ref(cfg, 7);
  ref.copy_params_from(policy);
  PpoTrainer ppo(policy, ref, PpoConfig{});
  Generation g;
  g.prompt = {1, 2};
  const PpoStats st = ppo.update({g}, {1.0});
  EXPECT_EQ(st.num_actions, 0u);
}

// ---- persistence -------------------------------------------------------------------

TEST(Persistence, SaveLoadRoundTrip) {
  const GptConfig cfg = GptConfig::tiny();
  Gpt a(cfg, 55);
  const std::string path = ::testing::TempDir() + "/gpt_test.bin";
  const ser::Status saved = a.save(path);
  ASSERT_TRUE(saved.ok()) << saved.message();
  Gpt b(cfg, 1);  // different init
  const ser::Status loaded = b.load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  EXPECT_EQ(a.params(), b.params());
}

TEST(Persistence, LoadRejectsWrongConfig) {
  Gpt a(GptConfig::tiny(), 55);
  const std::string path = ::testing::TempDir() + "/gpt_test2.bin";
  ASSERT_TRUE(a.save(path).ok());
  Gpt b(GptConfig::small(), 1);
  const ser::Status loaded = b.load(path);
  EXPECT_FALSE(loaded.ok());
  // The diagnostic must say what went wrong, not just "false".
  EXPECT_NE(loaded.message().find("config"), std::string::npos)
      << loaded.message();
}

}  // namespace
}  // namespace chatfuzz::ml
