// The checkpoint/resume subsystem's core guarantee: a campaign that is
// paused, written to disk, and resumed by a fresh process-equivalent
// generator + engine — at every cut, for any worker count — produces a
// final CampaignResult (curve, coverage percentages, mismatch statistics)
// bit-identical to an uninterrupted run. PR 1's worker-count invariance is
// the oracle: the uninterrupted reference is itself scheduling-invariant,
// so any divergence indicts the persistence layer specifically.
//
// "Process-equivalent" means every segment starts from a FRESH generator
// instance (a different seed even — restore_state() overwrites everything)
// and a fresh engine; nothing survives a cut except the bytes on disk.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "core/chatfuzz.h"
#include "core/checkpoint.h"
#include "corpus/generator.h"
#include "corpus/store.h"
#include "dist/worker.h"

namespace chatfuzz::core {
namespace {

CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.num_tests = 96;
  cfg.batch_size = 32;
  cfg.checkpoint_every = 10;  // curve cadence (not snapshot cadence)
  cfg.platform.max_steps = 256;
  return cfg;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.tests_run, b.tests_run);
  EXPECT_EQ(a.final_cov_percent, b.final_cov_percent);  // bit-exact, no tol
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_instrs, b.total_instrs);
  EXPECT_EQ(a.raw_mismatches, b.raw_mismatches);
  EXPECT_EQ(a.filtered_mismatches, b.filtered_mismatches);
  EXPECT_EQ(a.unique_mismatches, b.unique_mismatches);
  EXPECT_EQ(a.findings, b.findings);
  EXPECT_EQ(a.toggle_percent, b.toggle_percent);
  EXPECT_EQ(a.fsm_percent, b.fsm_percent);
  EXPECT_EQ(a.statement_percent, b.statement_percent);
  EXPECT_EQ(a.uncovered.size(), b.uncovered.size());
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].tests, b.curve[i].tests) << "point " << i;
    EXPECT_EQ(a.curve[i].hours, b.curve[i].hours) << "point " << i;
    EXPECT_EQ(a.curve[i].cond_cov_percent, b.curve[i].cond_cov_percent)
        << "point " << i;
    EXPECT_EQ(a.curve[i].ctrl_states, b.curve[i].ctrl_states) << "point " << i;
  }
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Run the campaign chopped into segments: segment 0 via run_campaign with
/// stop_after_tests = cuts[0], each further segment via resume_campaign
/// with a FRESH generator from `factory`, pausing at the next cut; the
/// last resume runs to completion. `workers` applies to every segment.
template <typename Factory>
CampaignResult run_chunked(Factory factory, CampaignConfig cfg,
                           const std::string& dir,
                           std::vector<std::size_t> cuts,
                           std::size_t workers) {
  cfg.checkpoint_dir = dir;
  cfg.num_workers = workers;
  cfg.stop_after_tests = cuts.empty() ? 0 : cuts.front();
  {
    auto gen = factory();
    const CampaignResult partial = run_campaign(*gen, cfg);
    if (cuts.empty()) return partial;
    EXPECT_FALSE(partial.completed);
    EXPECT_EQ(partial.tests_run,
              ((cuts.front() + cfg.batch_size - 1) / cfg.batch_size) *
                  cfg.batch_size)
        << "pause lands on the first batch boundary at/after the cut";
  }
  for (std::size_t k = 1; k <= cuts.size(); ++k) {
    auto gen = factory();  // fresh instance: nothing survives but the disk
    ResumeOptions opts;
    opts.num_workers = workers;
    opts.stop_after_tests = k < cuts.size() ? cuts[k] : 0;
    const CampaignResult r = resume_campaign(*gen, dir, opts);
    if (k == cuts.size()) return r;
    EXPECT_FALSE(r.completed);
  }
  return {};
}

auto random_factory(std::uint64_t seed = 11) {
  return [seed] { return std::make_unique<baselines::RandomFuzzer>(seed); };
}

auto thehuzz_factory(std::uint64_t seed = 11) {
  return [seed] { return std::make_unique<baselines::TheHuzzFuzzer>(seed); };
}

/// LSU-dense stimulus behind the InputGenerator interface: the w_lsu
/// memory-ordering idiom dominates, so the ooo backend's injected bug
/// classes (forwarding/drain/squash paths) actually fire — pure random
/// words almost never form the back-to-back store/load pairs they need.
class LsuCorpusFuzzer final : public InputGenerator {
 public:
  explicit LsuCorpusFuzzer(std::uint64_t seed) : gen_(lsu_config(), seed) {}
  std::string name() const override { return "LsuCorpus"; }
  std::vector<Program> next_batch(std::size_t n) override {
    return gen_.dataset(n);
  }
  bool supports_snapshot() const override { return true; }
  void save_state(ser::Writer& w) const override { gen_.save_state(w); }
  bool restore_state(ser::Reader& r) override { return gen_.restore_state(r); }

  static corpus::CorpusConfig lsu_config() {
    corpus::CorpusConfig cc;
    cc.w_lsu = 50.0;
    return cc;
  }

 private:
  corpus::CorpusGenerator gen_;
};

auto lsu_factory(std::uint64_t seed = 11) {
  return [seed] { return std::make_unique<LsuCorpusFuzzer>(seed); };
}

TEST(ResumeDeterminism, RandomFuzzerMatchesUninterruptedAcrossWorkerCounts) {
  const CampaignConfig cfg = small_campaign();
  // Uninterrupted, non-persistent reference.
  CampaignResult reference;
  {
    auto gen = random_factory()();
    CampaignConfig ref_cfg = cfg;
    ref_cfg.num_workers = 1;
    reference = run_campaign(*gen, ref_cfg);
    ASSERT_TRUE(reference.completed);
  }
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    const CampaignResult chunked =
        run_chunked(random_factory(), cfg,
                    fresh_dir("resume_random_w" + std::to_string(workers)),
                    {32, 64}, workers);
    ASSERT_TRUE(chunked.completed);
    expect_identical(reference, chunked);
  }
}

TEST(ResumeDeterminism, StatefulGeneratorMatchesUninterrupted) {
  // TheHuzz carries a mutation corpus + weighted-pick RNG across batches —
  // the state a naive resume would lose.
  const CampaignConfig cfg = small_campaign();
  CampaignResult reference;
  {
    auto gen = thehuzz_factory()();
    CampaignConfig ref_cfg = cfg;
    ref_cfg.num_workers = 4;
    reference = run_campaign(*gen, ref_cfg);
  }
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    const CampaignResult chunked =
        run_chunked(thehuzz_factory(), cfg,
                    fresh_dir("resume_thehuzz_w" + std::to_string(workers)),
                    {32, 64}, workers);
    expect_identical(reference, chunked);
  }
}

TEST(ResumeDeterminism, CutsNotOnBatchBoundariesRoundUp) {
  const CampaignConfig cfg = small_campaign();
  CampaignResult reference;
  {
    auto gen = random_factory(3)();
    CampaignConfig ref_cfg = cfg;
    ref_cfg.num_workers = 1;
    reference = run_campaign(*gen, ref_cfg);
  }
  const CampaignResult chunked = run_chunked(
      random_factory(3), cfg, fresh_dir("resume_oddcuts"), {10, 50}, 4);
  expect_identical(reference, chunked);
}

TEST(ResumeDeterminism, WorkerCountMayChangeAcrossSegments) {
  const CampaignConfig cfg = small_campaign();
  CampaignResult reference;
  {
    auto gen = random_factory()();
    CampaignConfig ref_cfg = cfg;
    ref_cfg.num_workers = 2;
    reference = run_campaign(*gen, ref_cfg);
  }
  // Segment 1 with 1 worker, segment 2 with 4, final with 3.
  const std::string dir = fresh_dir("resume_mixed_workers");
  CampaignConfig seg = cfg;
  seg.checkpoint_dir = dir;
  seg.num_workers = 1;
  seg.stop_after_tests = 32;
  {
    auto gen = random_factory()();
    ASSERT_FALSE(run_campaign(*gen, seg).completed);
  }
  {
    auto gen = random_factory()();
    ResumeOptions opts;
    opts.num_workers = 4;
    opts.stop_after_tests = 64;
    ASSERT_FALSE(resume_campaign(*gen, dir, opts).completed);
  }
  auto gen = random_factory()();
  ResumeOptions opts;
  opts.num_workers = 3;
  expect_identical(reference, resume_campaign(*gen, dir, opts));
}

TEST(ResumeDeterminism, PeriodicSnapshotsResumeFromLastCheckpoint) {
  // Snapshot cadence via checkpoint_every_tests (no explicit pause): kill
  // the run after an arbitrary segment, resume from whatever the last
  // on-disk snapshot was.
  const CampaignConfig base = small_campaign();
  CampaignResult reference;
  {
    auto gen = random_factory(8)();
    CampaignConfig ref_cfg = base;
    ref_cfg.num_workers = 1;
    reference = run_campaign(*gen, ref_cfg);
  }
  const std::string dir = fresh_dir("resume_periodic");
  CampaignConfig cfg = base;
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every_tests = 32;
  cfg.num_workers = 4;
  cfg.stop_after_tests = 64;
  {
    auto gen = random_factory(8)();
    ASSERT_FALSE(run_campaign(*gen, cfg).completed);
  }
  auto gen = random_factory(8)();
  expect_identical(reference, resume_campaign(*gen, dir, ResumeOptions{}));
}

TEST(ResumeDeterminism, CorpusStoreBytesMatchUninterruptedRun) {
  // The on-disk corpus must also be byte-identical: same entries in the
  // same order with the same attribution, no duplicates from re-run tests.
  const auto read_bytes = [](const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(f), {});
  };
  const CampaignConfig base = small_campaign();
  const std::string full_dir = fresh_dir("corpus_full");
  {
    auto gen = random_factory()();
    CampaignConfig cfg = base;
    cfg.checkpoint_dir = full_dir;
    cfg.num_workers = 1;
    ASSERT_TRUE(run_campaign(*gen, cfg).completed);
  }
  const std::string chunk_dir = fresh_dir("corpus_chunked");
  run_chunked(random_factory(), base, chunk_dir, {32, 64}, 4);

  corpus::CorpusStore full, chunked;
  ASSERT_TRUE(full.open(full_dir + "/corpus").ok());
  ASSERT_TRUE(chunked.open(chunk_dir + "/corpus").ok());
  ASSERT_GT(full.size(), 0u) << "campaign archived nothing; test is vacuous";
  EXPECT_EQ(read_bytes(full_dir + "/corpus/index.bin"),
            read_bytes(chunk_dir + "/corpus/index.bin"));
  EXPECT_EQ(read_bytes(full_dir + "/corpus/shard-0000.bin"),
            read_bytes(chunk_dir + "/corpus/shard-0000.bin"));
}

TEST(ResumeDeterminism, ResumingACompletedCampaignIsIdempotent) {
  const std::string dir = fresh_dir("resume_completed");
  CampaignConfig cfg = small_campaign();
  cfg.num_tests = 32;
  cfg.checkpoint_dir = dir;
  CampaignResult first;
  {
    auto gen = random_factory()();
    first = run_campaign(*gen, cfg);
    ASSERT_TRUE(first.completed);
  }
  auto gen = random_factory()();
  const CampaignResult again = resume_campaign(*gen, dir, ResumeOptions{});
  EXPECT_TRUE(again.completed);
  expect_identical(first, again);
}

TEST(ResumeDeterminism, ResumeRejectsWrongGeneratorKind) {
  const std::string dir = fresh_dir("resume_wrong_gen");
  CampaignConfig cfg = small_campaign();
  cfg.num_tests = 32;
  cfg.checkpoint_dir = dir;
  {
    auto gen = random_factory()();
    run_campaign(*gen, cfg);
  }
  baselines::TheHuzzFuzzer other(1);
  EXPECT_THROW(resume_campaign(other, dir, ResumeOptions{}),
               std::runtime_error);
}

TEST(ResumeDeterminism, ResumeRejectsMissingAndCorruptCheckpoints) {
  baselines::RandomFuzzer gen(1);
  EXPECT_THROW(
      resume_campaign(gen, fresh_dir("resume_missing"), ResumeOptions{}),
      std::runtime_error);

  const std::string dir = fresh_dir("resume_corrupt");
  CampaignConfig cfg = small_campaign();
  cfg.num_tests = 32;
  cfg.checkpoint_dir = dir;
  {
    auto g = random_factory()();
    run_campaign(*g, cfg);
  }
  {
    std::fstream f(checkpoint_path(dir),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.put('\x42');
  }
  EXPECT_THROW(resume_campaign(gen, dir, ResumeOptions{}),
               std::runtime_error);
}

TEST(ResumeDeterminism, PauseWithoutCheckpointDirIsRejected) {
  // A pause with nothing on disk to resume from would silently discard the
  // whole campaign; the engine must refuse up front.
  baselines::RandomFuzzer gen(1);
  CampaignConfig cfg = small_campaign();
  cfg.stop_after_tests = 32;  // checkpoint_dir left empty
  EXPECT_THROW(run_campaign(gen, cfg), std::invalid_argument);
}

TEST(ResumeDeterminism, CheckpointingRequiresSnapshotSupport) {
  // A generator without snapshot support must be rejected up front, not
  // silently produce a resume that re-rolls its state.
  class Opaque final : public InputGenerator {
   public:
    std::string name() const override { return "Opaque"; }
    std::vector<Program> next_batch(std::size_t n) override {
      return std::vector<Program>(n, Program{0x13});
    }
  };
  Opaque gen;
  CampaignConfig cfg = small_campaign();
  cfg.num_tests = 8;
  cfg.batch_size = 8;
  cfg.checkpoint_dir = fresh_dir("resume_unsupported");
  EXPECT_THROW(run_campaign(gen, cfg), std::invalid_argument);
}

TEST(ResumeDeterminism, ChatFuzzPolicyOptimizerAndRngSurviveResume) {
  // The full ML stack mid-campaign: policy + reference weights, PPO
  // optimizer moments, corpus stream and sampler RNG all cross the
  // checkpoint. Tiny model + short campaign keeps this CI-fast; stage-3
  // PPO updates still run on every batch.
  const auto factory = [] {
    ChatFuzzConfig cfg;
    cfg.model = ml::GptConfig{259, 64, 1, 2, 32};
    cfg.gen_tokens = 24;
    cfg.sample.min_new_tokens = 8;
    cfg.seed = 5;
    return std::make_unique<ChatFuzzGenerator>(cfg);
  };
  CampaignConfig cfg;
  cfg.num_tests = 24;
  cfg.batch_size = 8;
  cfg.checkpoint_every = 8;
  cfg.platform.max_steps = 256;

  CampaignResult reference;
  {
    auto gen = factory();
    CampaignConfig ref_cfg = cfg;
    ref_cfg.num_workers = 4;
    reference = run_campaign(*gen, ref_cfg);
  }
  const CampaignResult chunked = run_chunked(
      factory, cfg, fresh_dir("resume_chatfuzz"), {8, 16}, 1);
  expect_identical(reference, chunked);
}

TEST(ResumeDeterminism, MultiDutCampaignsResumeBitIdentically) {
  // Multi-DUT campaigns cross the checkpoint too: the DUT list is part of
  // the serialized campaign config (v4), so a resumed run rebuilds the same
  // backend stacks — and must reproduce the uninterrupted result bit-exactly
  // at every cut, for each DUT set and worker count.
  const struct {
    const char* tag;
    std::vector<rtl::CoreConfig> duts;
  } sets[] = {
      {"ooo", {rtl::CoreConfig::ooo()}},
      {"both", {rtl::CoreConfig::rocket(), rtl::CoreConfig::ooo()}},
  };
  for (const auto& s : sets) {
    SCOPED_TRACE(s.tag);
    CampaignConfig cfg = small_campaign();
    cfg.duts = s.duts;
    CampaignResult reference;
    {
      auto gen = lsu_factory()();
      CampaignConfig ref_cfg = cfg;
      ref_cfg.num_workers = 1;
      reference = run_campaign(*gen, ref_cfg);
      ASSERT_TRUE(reference.completed);
      EXPECT_GT(reference.raw_mismatches, 0u);  // the ooo bugs must fire
    }
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      const CampaignResult chunked = run_chunked(
          lsu_factory(), cfg,
          fresh_dir(std::string("resume_multidut_") + s.tag + "_w" +
                    std::to_string(workers)),
          {32, 64}, workers);
      ASSERT_TRUE(chunked.completed);
      expect_identical(reference, chunked);
    }
  }
}

TEST(ResumeDeterminism, MultiDutResumeAcrossProcessTopologies) {
  // The full topology matrix across one resume cut: a multi-DUT campaign
  // checkpointed by a single-process run must resume bit-identically under
  // 2 worker processes (this binary re-execs itself in `worker` mode), and
  // vice versa — process topology is per-run, the DUT list is not.
  CampaignConfig cfg = small_campaign();
  cfg.duts = {rtl::CoreConfig::rocket(), rtl::CoreConfig::ooo()};
  CampaignResult reference;
  {
    auto gen = random_factory()();
    CampaignConfig ref_cfg = cfg;
    ref_cfg.num_workers = 1;
    reference = run_campaign(*gen, ref_cfg);
    ASSERT_TRUE(reference.completed);
  }
  const struct {
    const char* tag;
    std::size_t procs_before, procs_after;
  } grid[] = {{"p1_to_p2", 1, 2}, {"p2_to_p1", 2, 1}};
  for (const auto& g : grid) {
    SCOPED_TRACE(g.tag);
    const std::string dir =
        fresh_dir(std::string("resume_multidut_") + g.tag);
    {
      auto gen = random_factory()();
      CampaignConfig c = cfg;
      c.checkpoint_dir = dir;
      c.num_workers = 1;
      c.dist.num_procs = g.procs_before;
      c.stop_after_tests = 40;
      ASSERT_FALSE(run_campaign(*gen, c).completed);
    }
    auto gen = random_factory(999)();  // state comes from disk, not the seed
    ResumeOptions opts;
    opts.num_workers = 2;
    opts.dist.num_procs = g.procs_after;
    expect_identical(reference, resume_campaign(*gen, dir, opts));
  }
}

}  // namespace
}  // namespace chatfuzz::core

int main(int argc, char** argv) {
  // Worker re-exec: the coordinator spawns /proc/self/exe (this binary)
  // with `worker <fd>`; serve leases instead of running the test suite.
  if (const auto rc = chatfuzz::dist::maybe_worker_main(argc, argv)) {
    return *rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
