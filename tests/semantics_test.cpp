// Differential semantics tests: IsaSim implements every ALU/M-extension
// opcode inline and independently of riscv::alu_eval (which the DUT model
// uses). This suite cross-checks the two implementations opcode-by-opcode
// over random and adversarial operand values — the property that makes the
// lockstep comparison meaningful rather than circular.
#include <gtest/gtest.h>

#include "isasim/sim.h"
#include "riscv/alu.h"
#include "riscv/encode.h"
#include "util/rng.h"

namespace chatfuzz::sim {
namespace {

using riscv::Opcode;

constexpr Opcode kRegRegOps[] = {
    Opcode::kAdd,  Opcode::kSub,  Opcode::kSll,  Opcode::kSlt,
    Opcode::kSltu, Opcode::kXor,  Opcode::kSrl,  Opcode::kSra,
    Opcode::kOr,   Opcode::kAnd,  Opcode::kAddw, Opcode::kSubw,
    Opcode::kSllw, Opcode::kSrlw, Opcode::kSraw, Opcode::kMul,
    Opcode::kMulh, Opcode::kMulhsu, Opcode::kMulhu, Opcode::kDiv,
    Opcode::kDivu, Opcode::kRem,  Opcode::kRemu, Opcode::kMulw,
    Opcode::kDivw, Opcode::kDivuw, Opcode::kRemw, Opcode::kRemuw};

/// Adversarial operand values plus per-seed randoms.
std::vector<std::uint64_t> operand_pool(std::uint64_t seed) {
  std::vector<std::uint64_t> pool = {
      0,
      1,
      static_cast<std::uint64_t>(-1),
      static_cast<std::uint64_t>(INT64_MIN),
      static_cast<std::uint64_t>(INT64_MAX),
      0x80000000ull,               // INT32_MIN as unsigned
      0x7fffffffull,               // INT32_MAX
      0xffffffffull,
      0x100000000ull,
      63, 64, 31, 32,
  };
  Rng rng(seed);
  for (int i = 0; i < 8; ++i) pool.push_back(rng.next_u64());
  return pool;
}

class RegRegSemantics : public ::testing::TestWithParam<Opcode> {};

TEST_P(RegRegSemantics, IsaSimMatchesAluTable) {
  const Opcode op = GetParam();
  const auto pool = operand_pool(static_cast<std::uint64_t>(op));
  Platform plat;
  IsaSim sim(plat);
  for (std::uint64_t a : pool) {
    for (std::uint64_t b : pool) {
      // Program: x10 = a; x11 = b (seeded through memory to avoid li-range
      // issues); op x12, x10, x11.
      std::vector<std::uint32_t> prog = {
          riscv::enc_i(Opcode::kLd, 10, 4, 0),
          riscv::enc_i(Opcode::kLd, 11, 4, 8),
          riscv::enc_r(op, 12, 10, 11),
      };
      sim.reset(prog);
      // x4 is a RAM pointer at reset; stage the operands behind it.
      sim.memory().write(sim.reg(4), a, 8);
      sim.memory().write(sim.reg(4) + 8, b, 8);
      const RunResult r = sim.run();
      ASSERT_EQ(r.trace.size(), 3u);
      ASSERT_EQ(r.trace[2].exception, riscv::Exception::kNone);
      const std::uint64_t expect = riscv::alu_eval(op, a, b);
      EXPECT_EQ(sim.reg(12), expect)
          << riscv::mnemonic(op) << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegRegOps, RegRegSemantics,
                         ::testing::ValuesIn(kRegRegOps),
                         [](const auto& info) {
                           std::string n(riscv::mnemonic(info.param));
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

constexpr Opcode kImmOps[] = {Opcode::kAddi,  Opcode::kSlti, Opcode::kSltiu,
                              Opcode::kXori,  Opcode::kOri,  Opcode::kAndi,
                              Opcode::kAddiw};

class ImmSemantics : public ::testing::TestWithParam<Opcode> {};

TEST_P(ImmSemantics, IsaSimMatchesAluTable) {
  const Opcode op = GetParam();
  const auto pool = operand_pool(static_cast<std::uint64_t>(op) + 99);
  Platform plat;
  IsaSim sim(plat);
  for (std::uint64_t a : pool) {
    for (std::int32_t imm : {-2048, -1, 0, 1, 777, 2047}) {
      std::vector<std::uint32_t> prog = {
          riscv::enc_i(Opcode::kLd, 10, 4, 0),
          riscv::enc_i(op, 12, 10, imm),
      };
      sim.reset(prog);
      sim.memory().write(sim.reg(4), a, 8);
      sim.run();
      const std::uint64_t expect =
          riscv::alu_eval(op, a, static_cast<std::uint64_t>(
                                     static_cast<std::int64_t>(imm)));
      EXPECT_EQ(sim.reg(12), expect)
          << riscv::mnemonic(op) << " a=" << a << " imm=" << imm;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllImmOps, ImmSemantics, ::testing::ValuesIn(kImmOps),
                         [](const auto& info) {
                           return std::string(riscv::mnemonic(info.param));
                         });

constexpr Opcode kShiftOps[] = {Opcode::kSlli,  Opcode::kSrli, Opcode::kSrai,
                                Opcode::kSlliw, Opcode::kSrliw, Opcode::kSraiw};

class ShiftSemantics : public ::testing::TestWithParam<Opcode> {};

TEST_P(ShiftSemantics, IsaSimMatchesAluTable) {
  const Opcode op = GetParam();
  const bool word = riscv::spec(op).format == riscv::Format::kIShift32;
  const auto pool = operand_pool(static_cast<std::uint64_t>(op) + 7);
  Platform plat;
  IsaSim sim(plat);
  for (std::uint64_t a : pool) {
    for (unsigned sh : {0u, 1u, 7u, 31u}) {
      const unsigned shamt = word ? sh : sh * 2;  // exercise 6-bit range too
      std::vector<std::uint32_t> prog = {
          riscv::enc_i(Opcode::kLd, 10, 4, 0),
          riscv::enc_shift(op, 12, 10, shamt),
      };
      sim.reset(prog);
      sim.memory().write(sim.reg(4), a, 8);
      sim.run();
      EXPECT_EQ(sim.reg(12), riscv::alu_eval(op, a, shamt))
          << riscv::mnemonic(op) << " a=" << a << " sh=" << shamt;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllShiftOps, ShiftSemantics,
                         ::testing::ValuesIn(kShiftOps),
                         [](const auto& info) {
                           return std::string(riscv::mnemonic(info.param));
                         });

}  // namespace
}  // namespace chatfuzz::sim
