// Superblock dispatch engine (riscv/superblock.h) semantics: the span index
// must serve only guard-fresh spans, the BBV recorder must be a pure
// function of the committed instruction stream, and — the core contract —
// executing with superblocks on or off must be architecturally
// indistinguishable on both simulators: identical traces, registers and
// (for RtlCore) cycle counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/bbv.h"
#include "corpus/generator.h"
#include "coverage/cover.h"
#include "isasim/sim.h"
#include "riscv/builder.h"
#include "riscv/encode.h"
#include "riscv/superblock.h"
#include "rtlsim/core.h"

namespace chatfuzz {
namespace {

using riscv::BbvRecorder;
using riscv::bbv_phase_hash;
using riscv::Opcode;
using riscv::ProgramBuilder;
using Index = riscv::SuperblockIndex<int>;

// ---- SuperblockIndex ------------------------------------------------------

TEST(SuperblockIndex, ServesFreshSpansAndDropsStaleOnes) {
  Index idx;
  std::vector<std::uint64_t> cells(4, 0);
  const std::uint64_t pc = 0x8000'0000ull;
  EXPECT_EQ(idx.find(pc, cells), nullptr);

  Index::Span& s = idx.begin_build(pc);
  ASSERT_TRUE(idx.add_guard(s, 1, cells[1]));
  ASSERT_TRUE(idx.add_guard(s, 2, cells[2]));
  idx.push(s, 10);
  idx.push(s, 20);

  const Index::Span* hit = idx.find(pc, cells);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->len, 2u);
  EXPECT_EQ(idx.slots(*hit)[0], 10);
  EXPECT_EQ(idx.slots(*hit)[1], 20);
  EXPECT_EQ(idx.find(pc + 4, cells), nullptr);  // wrong start pc

  ++cells[2];  // a guarded cell moved: span is stale
  EXPECT_EQ(idx.find(pc, cells), nullptr);
  EXPECT_FALSE(Index::fresh(*hit, cells));
}

TEST(SuperblockIndex, DuplicateGuardCellsCollapseAndOverflowStopsBuild) {
  Index idx;
  Index::Span& s = idx.begin_build(0x8000'0000ull);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(idx.add_guard(s, 7, 1));  // same cell: recorded once
  }
  EXPECT_EQ(s.num_guards, 1u);
  std::uint32_t cell = 100;
  while (s.num_guards < Index::kMaxGuards) {
    EXPECT_TRUE(idx.add_guard(s, cell++, 0));
  }
  EXPECT_FALSE(idx.add_guard(s, cell, 0));  // table full: caller must stop
  EXPECT_TRUE(idx.add_guard(s, 7, 1));      // but known cells still collapse
}

TEST(SuperblockIndex, CachedNegativeResultHasZeroLength) {
  // A block leader that is itself a terminator caches as len == 0: "slow
  // path handles this pc" without a re-decode per visit.
  Index idx;
  std::vector<std::uint64_t> cells(2, 0);
  const std::uint64_t pc = 0x8000'0040ull;
  Index::Span& s = idx.begin_build(pc);
  ASSERT_TRUE(idx.add_guard(s, 0, cells[0]));
  const Index::Span* hit = idx.find(pc, cells);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->len, 0u);
}

TEST(SuperblockIndex, FlushDropsEverySpanAndReclaimsArena) {
  Index idx;
  std::vector<std::uint64_t> cells(2, 0);
  for (std::uint64_t pc = 0x8000'0000ull; pc < 0x8000'0100ull; pc += 0x20) {
    Index::Span& s = idx.begin_build(pc);
    ASSERT_TRUE(idx.add_guard(s, 0, 0));
    idx.push(s, static_cast<int>(pc));
  }
  EXPECT_GT(idx.arena_slots(), 0u);
  idx.flush();
  EXPECT_EQ(idx.arena_slots(), 0u);
  for (std::uint64_t pc = 0x8000'0000ull; pc < 0x8000'0100ull; pc += 0x20) {
    EXPECT_EQ(idx.find(pc, cells), nullptr);
  }
}

// ---- BbvRecorder ----------------------------------------------------------

TEST(BbvRecorder, StraightLineRunIsOneBlock) {
  BbvRecorder r;
  r.begin();
  const std::uint64_t base = 0x8000'0000ull;
  for (int i = 0; i < 5; ++i) {
    r.on_commit(base + 4 * i, base + 4 * (i + 1), false);
  }
  r.on_stop();
  ASSERT_EQ(r.blocks().size(), 1u);
  EXPECT_EQ(r.blocks()[0].first, base);
  EXPECT_EQ(r.blocks()[0].second, 1u);
  EXPECT_EQ(r.ends()[0], base + 20);
}

TEST(BbvRecorder, LoopBodyCountsIterations) {
  BbvRecorder r;
  r.begin();
  const std::uint64_t body = 0x8000'0010ull;
  for (int iter = 0; iter < 3; ++iter) {
    r.on_commit(body, body + 4, false);
    r.on_commit(body + 4, body, false);  // backward branch: closes block
  }
  r.on_stop();
  ASSERT_EQ(r.blocks().size(), 1u);
  EXPECT_EQ(r.blocks()[0], std::make_pair(body, std::uint64_t{3}));
  EXPECT_EQ(r.ends()[0], body + 8);
}

TEST(BbvRecorder, TrapClosesBlockEvenWhenResumingAtFallThrough) {
  // The magic trampoline resumes trapped tests at pc + 4, so next_pc alone
  // cannot see the architectural redirect — the trap flag must close the
  // block, splitting it from an untrapped run over the same pcs.
  const std::uint64_t base = 0x8000'0000ull;
  BbvRecorder trapped;
  trapped.begin();
  trapped.on_commit(base, base + 4, false);
  trapped.on_commit(base + 4, base + 8, true);  // traps, resumes fall-through
  trapped.on_commit(base + 8, base + 12, false);
  trapped.on_stop();
  ASSERT_EQ(trapped.blocks().size(), 2u);
  EXPECT_EQ(trapped.ends()[0], base + 8);

  BbvRecorder clean;
  clean.begin();
  clean.on_commit(base, base + 4, false);
  clean.on_commit(base + 4, base + 8, false);
  clean.on_commit(base + 8, base + 12, false);
  clean.on_stop();
  ASSERT_EQ(clean.blocks().size(), 1u);
  EXPECT_NE(trapped.phase_hash(), clean.phase_hash());
}

TEST(BbvRecorder, SameStartDifferentEndAreDistinctBlocks) {
  // A block re-entered at the same pc but exited earlier (e.g. a trap on a
  // later visit) must get its own id, not fold into the longer block.
  const std::uint64_t base = 0x8000'0000ull;
  BbvRecorder r;
  r.begin();
  r.on_commit(base, base + 4, false);
  r.on_commit(base + 4, base, false);  // (base, base+8)
  r.on_commit(base, base + 4, true);   // (base, base+4): trap cut it short
  r.on_stop();
  ASSERT_EQ(r.blocks().size(), 2u);
  EXPECT_EQ(r.blocks()[0].first, base);
  EXPECT_EQ(r.blocks()[1].first, base);
  EXPECT_EQ(r.ends()[0], base + 8);
  EXPECT_EQ(r.ends()[1], base + 4);
  EXPECT_EQ(r.blocks()[0].second, 1u);
  EXPECT_EQ(r.blocks()[1].second, 1u);
}

TEST(BbvRecorder, PhaseHashSeparatesStraightLineLengths) {
  // Fuzz tests are often a single straight-line block; the signature must
  // still tell a 4-instruction test from an 8-instruction one.
  const std::uint64_t base = 0x8000'0000ull;
  const auto hash_of_line = [&](int n) {
    BbvRecorder r;
    r.begin();
    for (int i = 0; i < n; ++i) {
      r.on_commit(base + 4 * i, base + 4 * (i + 1), false);
    }
    r.on_stop();
    return r.phase_hash();
  };
  EXPECT_NE(hash_of_line(4), hash_of_line(8));
  EXPECT_NE(hash_of_line(4), 0u);          // 0 is the "unset" sentinel
  EXPECT_EQ(hash_of_line(6), hash_of_line(6));  // pure function of the stream
}

TEST(BbvRecorder, BeginResetsBetweenTests) {
  BbvRecorder r;
  r.begin();
  r.on_commit(0x8000'0000ull, 0x8000'0004ull, false);
  r.on_stop();
  ASSERT_EQ(r.blocks().size(), 1u);
  r.begin();
  EXPECT_TRUE(r.blocks().empty());
  r.on_commit(0x8000'0100ull, 0x8000'0104ull, false);
  r.on_stop();
  ASSERT_EQ(r.blocks().size(), 1u);
  EXPECT_EQ(r.blocks()[0].first, 0x8000'0100ull);
}

TEST(BbvPhaseHash, NonZeroAndOrderSensitive) {
  using Blocks = std::vector<std::pair<std::uint64_t, std::uint64_t>>;
  const Blocks a = {{0x8000'0000ull, 3}, {0x8000'0040ull, 1}};
  const Blocks b = {{0x8000'0040ull, 1}, {0x8000'0000ull, 3}};
  EXPECT_NE(bbv_phase_hash(a), 0u);
  EXPECT_NE(bbv_phase_hash(a), bbv_phase_hash(b));
  EXPECT_EQ(bbv_phase_hash(a), bbv_phase_hash(a));
}

// ---- BBV file round trip --------------------------------------------------

TEST(BbvFile, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/roundtrip.bbv";
  std::vector<core::BbvEntry> entries(3);
  for (std::uint64_t i = 0; i < entries.size(); ++i) {
    entries[i].test_index = i;
    entries[i].blocks = {{0x8000'0000ull + i * 64, i + 1},
                         {0x8000'0800ull, 2 * i + 1}};
  }
  ASSERT_TRUE(core::save_bbv(path, entries).ok());
  std::vector<core::BbvEntry> back;
  ASSERT_TRUE(core::load_bbv(path, &back).ok());
  ASSERT_EQ(back.size(), entries.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].test_index, entries[i].test_index);
    EXPECT_EQ(back[i].blocks, entries[i].blocks);
  }
  std::remove(path.c_str());
  EXPECT_FALSE(core::load_bbv(path, &back).ok());  // missing file fails clean
}

// ---- dispatch-engine A/B identity -----------------------------------------

void expect_same_trace(const sim::Trace& a, const sim::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].to_string(), b[i].to_string()) << "commit " << i;
  }
}

std::vector<std::vector<std::uint32_t>> ab_programs() {
  std::vector<std::vector<std::uint32_t>> progs;
  // A branchy loop with a mid-span store over code: exercises span reuse,
  // guard invalidation and rebuild inside one test.
  ProgramBuilder b(0x8000'0000ull);
  b.li(1, static_cast<std::int32_t>(riscv::enc_i(Opcode::kAddi, 5, 0, 77)));
  const std::uint64_t anchor = b.pc();
  b.auipc(2, 0);
  b.addi(10, 0, 0);
  b.addi(11, 0, 3);
  b.label("again");
  for (int i = 0; i < 10; ++i) b.addi(6, 6, 1);
  const std::uint64_t slot = b.pc();
  b.raw(riscv::enc_i(Opcode::kAddi, 5, 0, 1));
  b.addi(10, 10, 1);
  b.sw(2, 1, static_cast<std::int32_t>(slot - anchor));
  b.branch_to(Opcode::kBne, 10, 11, "again");
  b.wfi();
  progs.push_back(b.seal());
  // Generated corpus functions: the mix the campaigns actually run.
  corpus::CorpusGenerator gen({}, 1234);
  for (int i = 0; i < 8; ++i) progs.push_back(gen.function());
  return progs;
}

TEST(SuperblockDispatch, IsaSimTraceIdenticalOnAndOff) {
  for (const auto& prog : ab_programs()) {
    sim::IsaSim on;
    ASSERT_TRUE(on.superblocks());
    on.reset(prog);
    const sim::RunResult ron = on.run();

    sim::IsaSim off;
    off.set_superblocks(false);
    off.reset(prog);
    const sim::RunResult roff = off.run();

    EXPECT_EQ(ron.stop, roff.stop);
    expect_same_trace(on.trace(), off.trace());
    for (unsigned r = 0; r < 32; ++r) EXPECT_EQ(on.reg(r), off.reg(r));
  }
}

TEST(SuperblockDispatch, RtlCoreTraceAndCyclesIdenticalOnAndOff) {
  // The fused fetch path must preserve cycle accounting and injected-bug
  // semantics exactly, with and without a bug armed.
  for (int buggy = 0; buggy < 2; ++buggy) {
    rtl::CoreConfig cfg = rtl::CoreConfig::rocket();
    if (buggy == 0) {
      // Clean build: the five paper bugs default on, switch them off.
      cfg.bugs.stale_icache = false;
      cfg.bugs.tracer_drops_muldiv = false;
      cfg.bugs.fault_priority_swap = false;
      cfg.bugs.amo_x0_trace = false;
      cfg.bugs.x0_link_trace = false;
    }
    for (const auto& prog : ab_programs()) {
      cov::CoverageDB db_on;
      rtl::RtlCore on(cfg, db_on, {});
      ASSERT_TRUE(on.superblocks());
      on.reset(prog);
      const sim::RunResult ron = on.run();

      cov::CoverageDB db_off;
      rtl::RtlCore off(cfg, db_off, {});
      off.set_superblocks(false);
      off.reset(prog);
      const sim::RunResult roff = off.run();

      EXPECT_EQ(ron.stop, roff.stop);
      EXPECT_EQ(ron.steps, roff.steps);
      EXPECT_EQ(on.cycles(), off.cycles());
      expect_same_trace(ron.trace, roff.trace);
      for (unsigned r = 0; r < 32; ++r) EXPECT_EQ(on.reg(r), off.reg(r));
    }
  }
}

TEST(SuperblockDispatch, RtlCoreBbvIdenticalOnAndOff) {
  // The BBV is defined over the committed stream, not the dispatch engine:
  // recording it through the fused path and the step loop must agree.
  for (const auto& prog : ab_programs()) {
    const auto record = [&](bool sb) {
      cov::CoverageDB db;
      rtl::RtlCore dut(rtl::CoreConfig::rocket(), db, {});
      dut.set_superblocks(sb);
      BbvRecorder bbv;
      bbv.begin();
      dut.set_bbv(&bbv);
      dut.reset(prog);
      dut.run();  // run() delivers the trailing on_stop()
      return std::make_pair(bbv.blocks(), bbv.phase_hash());
    };
    const auto on = record(true);
    const auto off = record(false);
    EXPECT_EQ(on.first, off.first);
    EXPECT_EQ(on.second, off.second);
  }
}

}  // namespace
}  // namespace chatfuzz
