// Sv39 translation unit suite: page-table-walker behaviour (leaf/non-leaf
// descent, superpage alignment, R/W/X/U permission checks, SUM/MXR, Svade
// A/D faults, TLB caching + sfence.vma), asserted against BOTH independent
// implementations, plus a randomized lockstep property test (bug-free DUT
// over privileged/VM corpus programs must produce zero mismatches) and
// detection tests proving the differential harness catches each of the
// three injected trap/translation bugs.
#include <gtest/gtest.h>

#include <vector>

#include "corpus/generator.h"
#include "coverage/cover.h"
#include "isasim/platform.h"
#include "isasim/sim.h"
#include "mismatch/detect.h"
#include "mismatch/lockstep.h"
#include "riscv/builder.h"
#include "riscv/csr.h"
#include "rtlsim/core.h"

namespace chatfuzz {
namespace {

namespace csr = riscv::csr;
namespace ms = sim::mstatus;
namespace pv = riscv::sv39;
using riscv::Priv;
using Program = std::vector<std::uint32_t>;

// Physical page-table layout used by the directed programs: the root sits
// in the last RAM page (above the data region, like the generator's VM
// idiom), with the level-1/level-0 tables in the two pages below it.
constexpr std::uint64_t kRootPage = 0x800ff;
constexpr std::uint64_t kL1Page = 0x800fe;
constexpr std::uint64_t kL0Page = 0x800fd;
constexpr std::uint64_t kDataPage = 0x80010;   // PA backing the mapped VA
constexpr std::uint64_t kDataPage2 = 0x80018;  // remap target
// VA 0xC000_4000: vpn2=3 (root slot 3), vpn1=0, vpn0=4. The vpn0=4 slot
// keeps its TLB index clear of the fetch pages (index 0) and the
// identity-mapped PT pages (index 13-15).
constexpr std::uint64_t kVa = 0xC000'4000ull;
constexpr std::int32_t kMarker = 0x1111;
constexpr std::int32_t kMarker2 = 0x2222;

constexpr std::uint64_t kLeafRwad =
    pv::kPteV | pv::kPteR | pv::kPteW | pv::kPteA | pv::kPteD;
constexpr std::uint64_t kGigaFull =
    kLeafRwad | pv::kPteX;

std::int32_t pte(std::uint64_t pa_page, std::uint64_t flags) {
  return static_cast<std::int32_t>((pa_page << 10) | flags);
}

/// li+slli+li+sd: write a 64-bit constant to page*4096+off. Clobbers t0/t1.
void store64(riscv::ProgramBuilder& b, std::uint64_t page, unsigned off,
             std::int32_t value) {
  b.li(5, static_cast<std::int32_t>(page));
  b.slli(5, 5, 12);
  b.li(6, value);
  b.sd(5, 6, static_cast<std::int32_t>(off));
}

/// Install satp = {Sv39, root} and fence. Clobbers t0/t1.
void install_satp(riscv::ProgramBuilder& b) {
  b.li(6, static_cast<std::int32_t>(csr::kSatpModeSv39));
  b.slli(6, 6, csr::kSatpModeShift);
  b.li(5, static_cast<std::int32_t>(kRootPage));
  b.or_(6, 6, 5);
  b.csrrw(0, csr::kSatp, 6);
  b.sfence_vma();
}

/// M-mode preamble: marker at the backing page, identity gigapage for code
/// (root[2]), three-level chain root[3] -> L1[0] -> L0[4] with `leaf_flags`
/// for kVa, satp install, then drop to S-mode.
void build_vm(riscv::ProgramBuilder& b, std::uint64_t leaf_flags) {
  store64(b, kDataPage, 0, kMarker);
  store64(b, kRootPage, 16, pte(0x80000, kGigaFull));
  store64(b, kRootPage, 24, pte(kL1Page, pv::kPteV));
  store64(b, kL1Page, 0, pte(kL0Page, pv::kPteV));
  store64(b, kL0Page, 32, pte(kDataPage, leaf_flags));
  install_satp(b);
  b.enter_priv(1);
}

/// Materialize kVa in `rd` (zero-extended; li alone would sign-extend).
void load_va(riscv::ProgramBuilder& b, unsigned rd) {
  b.li(rd, static_cast<std::int32_t>(kVa >> 12));
  b.slli(rd, rd, 12);
}

template <typename Check>
void run_both(const Program& prog, Check&& check, std::uint64_t max_steps = 512) {
  sim::Platform plat;
  plat.max_steps = max_steps;
  {
    sim::IsaSim iss(plat);
    iss.reset(prog);
    iss.run();
    check("iss", iss);
  }
  {
    cov::CoverageDB db;
    rtl::CoreConfig core = rtl::CoreConfig::rocket();
    core.bugs = rtl::BugInjections::none();
    rtl::RtlCore dut(core, db, plat);
    dut.reset(prog);
    dut.run();
    check("dut", dut);
  }
}

/// Directed fault probe: access kVa through `leaf_flags` and expect the
/// M-mode trampoline to record `cause` with mtval = the faulting VA.
void expect_access_fault(std::uint64_t leaf_flags, bool is_store,
                         unsigned cause) {
  riscv::ProgramBuilder b;
  build_vm(b, leaf_flags);
  load_va(b, 10);
  if (is_store) {
    b.sd(10, 11, 0);
  } else {
    b.ld(11, 10, 0);
  }
  run_both(b.seal(), [=](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), cause) << side;
    EXPECT_EQ(s.csr_value(csr::kMtval), kVa) << side;
    EXPECT_EQ(s.csr_value(csr::kScause), 0u) << side;  // not delegated
  });
}

TEST(Sv39Ptw, GigapageIdentityFetchLoadStore) {
  riscv::ProgramBuilder b;
  store64(b, kRootPage, 16, pte(0x80000, kGigaFull));
  install_satp(b);
  b.enter_priv(1);  // code now fetches through the gigapage
  b.li(5, 0x80084);
  b.slli(5, 5, 12);  // identity VA inside the data region
  b.li(6, kMarker);
  b.sd(5, 6, 0);
  b.ld(10, 5, 0);
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.reg(10), static_cast<std::uint64_t>(kMarker)) << side;
    EXPECT_EQ(s.csr_value(csr::kMcause), 0u) << side;
    EXPECT_EQ(static_cast<int>(s.priv()), static_cast<int>(Priv::kSupervisor))
        << side;
  });
}

TEST(Sv39Ptw, ThreeLevelWalkTranslatesLoadAndStore) {
  riscv::ProgramBuilder b;
  build_vm(b, kLeafRwad);
  load_va(b, 10);
  b.ld(11, 10, 0);      // marker through the 4K leaf
  b.li(12, kMarker2);
  b.sd(10, 12, 8);      // store through it
  b.ld(13, 10, 8);
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.reg(11), static_cast<std::uint64_t>(kMarker)) << side;
    EXPECT_EQ(s.reg(13), static_cast<std::uint64_t>(kMarker2)) << side;
    EXPECT_EQ(s.csr_value(csr::kMcause), 0u) << side;
    // The store went to the physical backing page.
    EXPECT_EQ(s.memory().read((kDataPage << 12) + 8, 8),
              static_cast<std::uint64_t>(kMarker2))
        << side;
  });
}

TEST(Sv39Ptw, InvalidLeafFaults) {
  expect_access_fault(0, false, 13);  // V=0
}

TEST(Sv39Ptw, ReservedWriteNotReadEncodingFaults) {
  expect_access_fault(pv::kPteV | pv::kPteW | pv::kPteA | pv::kPteD, false, 13);
}

TEST(Sv39Ptw, StoreToReadOnlyLeafFaults) {
  expect_access_fault(pv::kPteV | pv::kPteR | pv::kPteA | pv::kPteD, true, 15);
}

TEST(Sv39Ptw, PointerPteAtLevelZeroFaults) {
  // V set, RWX clear at the last level: the walk runs out of levels.
  expect_access_fault(pv::kPteV, false, 13);
}

TEST(Sv39Ptw, MissingAccessedBitFaults) {
  // Svade: no hardware A/D update; the access itself faults.
  expect_access_fault(pv::kPteV | pv::kPteR | pv::kPteW | pv::kPteD, false, 13);
}

TEST(Sv39Ptw, MissingDirtyBitFaultsStoresOnly) {
  expect_access_fault(pv::kPteV | pv::kPteR | pv::kPteW | pv::kPteA, true, 15);
  // The same leaf serves loads fine.
  riscv::ProgramBuilder b;
  build_vm(b, pv::kPteV | pv::kPteR | pv::kPteW | pv::kPteA);
  load_va(b, 10);
  b.ld(11, 10, 0);
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.reg(11), static_cast<std::uint64_t>(kMarker)) << side;
    EXPECT_EQ(s.csr_value(csr::kMcause), 0u) << side;
  });
}

TEST(Sv39Ptw, MisalignedSuperpageFaults) {
  // 2M leaf at L1 whose PPN low bits are not zero: alignment fault.
  riscv::ProgramBuilder b;
  store64(b, kRootPage, 16, pte(0x80000, kGigaFull));
  store64(b, kRootPage, 24, pte(kL1Page, pv::kPteV));
  store64(b, kL1Page, 0, pte(0x80011, kLeafRwad));  // 0x11 % 512 != 0
  install_satp(b);
  b.enter_priv(1);
  load_va(b, 10);
  b.ld(11, 10, 0);
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 13u) << side;
    EXPECT_EQ(s.csr_value(csr::kMtval), kVa) << side;
  });
}

TEST(Sv39Ptw, WalkThroughUnmappedTableFaults) {
  // Non-leaf PTE pointing outside RAM: the walk itself can't load.
  riscv::ProgramBuilder b;
  store64(b, kRootPage, 16, pte(0x80000, kGigaFull));
  store64(b, kRootPage, 24, pte(0x90000, pv::kPteV));  // beyond the 1 MiB RAM
  install_satp(b);
  b.enter_priv(1);
  load_va(b, 10);
  b.ld(11, 10, 0);
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 13u) << side;
  });
}

TEST(Sv39Ptw, NonCanonicalAddressFaults) {
  riscv::ProgramBuilder b;
  store64(b, kRootPage, 16, pte(0x80000, kGigaFull));
  install_satp(b);
  b.enter_priv(1);
  b.li(10, 1);
  b.slli(10, 10, 40);  // bits 63:39 don't match bit 38
  b.ld(11, 10, 0);
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 13u) << side;
  });
}

TEST(Sv39Priv, SupervisorFetchFromUserPageFaults) {
  riscv::ProgramBuilder b;
  store64(b, kRootPage, 16, pte(0x80000, kGigaFull | pv::kPteU));
  install_satp(b);
  b.enter_priv(1);  // S-mode: first translated fetch hits a U page
  const std::uint64_t fault_pc = b.pc();
  b.addi(10, 0, 1);  // skipped by the fault, then re-run in M
  run_both(b.seal(), [=](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 12u) << side;
    EXPECT_EQ(s.csr_value(csr::kMtval), fault_pc) << side;
    EXPECT_EQ(s.csr_value(csr::kMepc), fault_pc) << side;
  });
}

TEST(Sv39Priv, UserFetchFromSupervisorPageFaults) {
  riscv::ProgramBuilder b;
  store64(b, kRootPage, 16, pte(0x80000, kGigaFull));  // no U bit
  install_satp(b);
  b.enter_priv(0);  // U-mode
  const std::uint64_t fault_pc = b.pc();
  b.addi(10, 0, 1);
  run_both(b.seal(), [=](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 12u) << side;
    EXPECT_EQ(s.csr_value(csr::kMtval), fault_pc) << side;
  });
}

TEST(Sv39Priv, UserModeRunsOnUserPages) {
  riscv::ProgramBuilder b;
  store64(b, kRootPage, 16, pte(0x80000, kGigaFull | pv::kPteU));
  install_satp(b);
  b.enter_priv(0);
  b.li(5, 0x80084);
  b.slli(5, 5, 12);
  b.li(6, kMarker);
  b.sd(5, 6, 0);
  b.ld(10, 5, 0);
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.reg(10), static_cast<std::uint64_t>(kMarker)) << side;
    EXPECT_EQ(s.csr_value(csr::kMcause), 0u) << side;
    EXPECT_EQ(static_cast<int>(s.priv()), static_cast<int>(Priv::kUser))
        << side;
  });
}

TEST(Sv39Priv, SumGatesSupervisorDataAccessToUserPages) {
  // Without SUM: S-mode load from a U page faults.
  expect_access_fault(kLeafRwad | pv::kPteU, false, 13);
  // With SUM set before the drop: the same load succeeds.
  riscv::ProgramBuilder b;
  b.li(5, 1);
  b.slli(5, 5, 18);  // mstatus.SUM
  b.csrrs(0, csr::kMstatus, 5);
  build_vm(b, kLeafRwad | pv::kPteU);
  load_va(b, 10);
  b.ld(11, 10, 0);
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.reg(11), static_cast<std::uint64_t>(kMarker)) << side;
    EXPECT_EQ(s.csr_value(csr::kMcause), 0u) << side;
  });
}

TEST(Sv39Priv, MxrAllowsLoadsFromExecuteOnlyPages) {
  // Without MXR: execute-only leaf refuses loads.
  expect_access_fault(pv::kPteV | pv::kPteX | pv::kPteA, false, 13);
  // With MXR: the load reads through the X-only leaf.
  riscv::ProgramBuilder b;
  b.li(5, 1);
  b.slli(5, 5, 19);  // mstatus.MXR
  b.csrrs(0, csr::kMstatus, 5);
  build_vm(b, pv::kPteV | pv::kPteX | pv::kPteA);
  load_va(b, 10);
  b.ld(11, 10, 0);
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.reg(11), static_cast<std::uint64_t>(kMarker)) << side;
    EXPECT_EQ(s.csr_value(csr::kMcause), 0u) << side;
  });
}

TEST(Sv39Ptw, SfenceVmaFlushesTheTlb) {
  riscv::ProgramBuilder b;
  store64(b, kDataPage2, 0, kMarker2);  // remap target, different marker
  build_vm(b, kLeafRwad);
  load_va(b, 10);
  b.ld(11, 10, 0);  // fills the TLB with the kDataPage leaf
  // Re-point L0[4] at kDataPage2 through the identity gigapage. No fence
  // yet: both implementations must keep serving the cached translation.
  store64(b, kL0Page, 32, pte(kDataPage2, kLeafRwad));
  b.ld(12, 10, 0);  // stale: still the old page (spec-legal until sfence)
  b.sfence_vma();
  b.ld(13, 10, 0);  // fresh walk: the new page
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.reg(11), static_cast<std::uint64_t>(kMarker)) << side;
    EXPECT_EQ(s.reg(12), static_cast<std::uint64_t>(kMarker)) << side;
    EXPECT_EQ(s.reg(13), static_cast<std::uint64_t>(kMarker2)) << side;
    EXPECT_EQ(s.csr_value(csr::kMcause), 0u) << side;
  });
}

// ---- Randomized property: bug-free lockstep over priv/VM corpus ----------

mismatch::Report diff_traces(const Program& prog,
                             const rtl::BugInjections& bugs,
                             std::uint64_t max_steps = 512) {
  sim::Platform plat;
  plat.max_steps = max_steps;
  cov::CoverageDB db;
  rtl::CoreConfig core = rtl::CoreConfig::rocket();
  core.bugs = bugs;
  rtl::RtlCore dut(core, db, plat);
  sim::IsaSim golden(plat);
  mismatch::MismatchDetector det;
  det.install_default_filters();
  dut.reset(prog);
  const sim::RunResult dr = dut.run();
  golden.reset(prog);
  const sim::RunResult gr = golden.run();
  return det.compare(dr.trace, gr.trace);
}

TEST(Sv39Property, RandomPrivVmProgramsLockstepClean) {
  // N generated privileged/VM programs, bug-free DUT: the differential
  // harness must stay silent — any mismatch is a real divergence between
  // the two independently written trap/translation implementations.
  corpus::CorpusConfig cc;
  cc.w_vm = 4.0;  // dense Sv39/priv stimulus
  corpus::CorpusGenerator gen(cc, 99);
  for (int p = 0; p < 1000; ++p) {
    const Program prog = gen.function();
    const mismatch::Report rep =
        diff_traces(prog, rtl::BugInjections::none());
    EXPECT_TRUE(rep.mismatches.empty())
        << "program " << p << ": " << rep.mismatches.size()
        << " mismatches, first signature: "
        << (rep.mismatches.empty() ? "" : rep.mismatches[0].signature);
  }
}

// ---- The three injected trap/translation bugs must each be caught --------

TEST(Sv39BugInjection, WrongDelegationIsDetected) {
  riscv::ProgramBuilder b;
  b.li(5, 1 << 8);
  b.csrrs(0, csr::kMedeleg, 5);  // delegate ecall-from-U
  b.enter_priv(0);
  b.ecall();                     // golden: to S. buggy DUT: to M.
  b.csrrs(10, csr::kScause, 0);  // reads 8 in S, 0 in the buggy DUT's M
  const Program prog = b.seal();
  EXPECT_TRUE(diff_traces(prog, rtl::BugInjections::none()).mismatches.empty());
  rtl::BugInjections bugs = rtl::BugInjections::none();
  bugs.wrong_delegation = true;
  EXPECT_FALSE(diff_traces(prog, bugs).mismatches.empty());
}

TEST(Sv39BugInjection, SkipPermCheckIsDetected) {
  // Read-only identity mapping; a store must raise store-page-fault. The
  // buggy LSU skips the W check and the store retires.
  riscv::ProgramBuilder b;
  store64(b, kRootPage, 16,
          pte(0x80000, pv::kPteV | pv::kPteR | pv::kPteX | pv::kPteA |
                           pv::kPteD));
  install_satp(b);
  b.enter_priv(1);
  b.li(5, 0x80084);
  b.slli(5, 5, 12);
  b.li(6, kMarker);
  b.sd(5, 6, 0);
  const Program prog = b.seal();
  EXPECT_TRUE(diff_traces(prog, rtl::BugInjections::none()).mismatches.empty());
  rtl::BugInjections bugs = rtl::BugInjections::none();
  bugs.skip_perm_check = true;
  EXPECT_FALSE(diff_traces(prog, bugs).mismatches.empty());
}

TEST(Sv39BugInjection, StaleTlbIsDetected) {
  // Warm the TLB through a writable gigapage, downgrade the mapping to
  // read-only, then rewrite satp (no sfence). The golden model flushes on
  // the satp write and faults the next store; the buggy TLB serves the
  // stale writable leaf and the store retires.
  riscv::ProgramBuilder b;
  store64(b, kRootPage, 16, pte(0x80000, kGigaFull));
  install_satp(b);
  b.enter_priv(1);
  b.li(10, 0x80084);
  b.slli(10, 10, 12);
  b.li(11, kMarker);
  b.sd(10, 11, 0);  // warms the data-page TLB entry (writable)
  store64(b, kRootPage, 16,
          pte(0x80000, pv::kPteV | pv::kPteR | pv::kPteX | pv::kPteA |
                           pv::kPteD));  // downgrade to read-only
  b.csrrs(5, csr::kSatp, 0);
  b.csrrw(0, csr::kSatp, 5);  // same value: flushes the golden TLB only
  b.sd(10, 11, 8);            // golden: fault 15. buggy DUT: retires.
  const Program prog = b.seal();
  EXPECT_TRUE(diff_traces(prog, rtl::BugInjections::none()).mismatches.empty());
  rtl::BugInjections bugs = rtl::BugInjections::none();
  bugs.stale_tlb = true;
  EXPECT_FALSE(diff_traces(prog, bugs).mismatches.empty());
}

TEST(Sv39BugInjection, GeneratedCorpusDetectsEachInjection) {
  // Acceptance-level check: for every injected trap/translation bug, some
  // generator-produced test (not a hand-written one) must expose it.
  corpus::CorpusConfig cc;
  cc.w_vm = 4.0;
  for (int bug = 0; bug < 3; ++bug) {
    rtl::BugInjections bugs = rtl::BugInjections::none();
    if (bug == 0) bugs.wrong_delegation = true;
    if (bug == 1) bugs.skip_perm_check = true;
    if (bug == 2) bugs.stale_tlb = true;
    corpus::CorpusGenerator gen(cc, 4242);
    bool detected = false;
    for (int p = 0; p < 400 && !detected; ++p) {
      const Program prog = gen.function();
      detected = !diff_traces(prog, bugs).mismatches.empty();
    }
    EXPECT_TRUE(detected) << "bug " << bug << " evaded 400 generated tests";
  }
}

}  // namespace
}  // namespace chatfuzz
