// Lockstep-comparator parity suite: the streaming LockstepComparator must
// produce byte-identical mismatch::Reports to the materialize-then-compare
// path (MismatchDetector::compare on two full traces) — same kinds,
// indices, records, signatures, findings, and raw/filtered counts — across
// randomized corpus programs under every injected-bug configuration, plus
// the trace-length and filter edge paths. It also pins the streaming win:
// the golden model stops as soon as the comparison is decided instead of
// running to its own step limit.
#include <gtest/gtest.h>

#include <vector>

#include "corpus/generator.h"
#include "coverage/cover.h"
#include "isasim/sim.h"
#include "mismatch/detect.h"
#include "mismatch/lockstep.h"
#include "riscv/builder.h"
#include "riscv/csr.h"
#include "rtlsim/core.h"
#include "rtlsim/dut.h"

namespace chatfuzz::mismatch {
namespace {

using Program = std::vector<std::uint32_t>;

/// Reference path: run both models to completion, materialize both traces,
/// diff them — exactly what the campaign engine did before streaming.
Report two_trace_report(const rtl::CoreConfig& core, const Program& prog,
                        sim::Platform dut_plat, sim::Platform gold_plat) {
  cov::CoverageDB db;
  rtl::RtlCore dut(core, db, dut_plat);
  sim::IsaSim golden(gold_plat);
  MismatchDetector det;
  det.install_default_filters();
  dut.reset(prog);
  const sim::RunResult dr = dut.run();
  golden.reset(prog);
  const sim::RunResult gr = golden.run();
  return det.compare(dr.trace, gr.trace);
}

/// Streaming path: the DUT's commit stream drives the comparator, which
/// pulls the golden model one instruction at a time.
Report lockstep_report(const rtl::CoreConfig& core, const Program& prog,
                       sim::Platform dut_plat, sim::Platform gold_plat,
                       std::uint64_t* golden_instret = nullptr) {
  cov::CoverageDB db;
  rtl::RtlCore dut(core, db, dut_plat);
  sim::IsaSim golden(gold_plat);
  MismatchDetector det;
  det.install_default_filters();
  LockstepComparator cmp;
  Report rep;
  golden.reset(prog);
  cmp.begin(det, golden, rep);
  dut.set_sink(&cmp);
  dut.reset(prog);
  dut.run();
  cmp.finish();
  if (golden_instret != nullptr) {
    *golden_instret = golden.csr_value(riscv::csr::kInstret);
  }
  return rep;
}

void expect_records_equal(const sim::CommitRecord& a,
                          const sim::CommitRecord& b, const char* side,
                          std::size_t i) {
  EXPECT_EQ(a.pc, b.pc) << side << " record " << i;
  EXPECT_EQ(a.instr, b.instr) << side << " record " << i;
  EXPECT_EQ(a.has_rd_write, b.has_rd_write) << side << " record " << i;
  EXPECT_EQ(a.rd, b.rd) << side << " record " << i;
  EXPECT_EQ(a.rd_value, b.rd_value) << side << " record " << i;
  EXPECT_EQ(a.has_mem, b.has_mem) << side << " record " << i;
  EXPECT_EQ(a.mem_is_store, b.mem_is_store) << side << " record " << i;
  EXPECT_EQ(a.mem_addr, b.mem_addr) << side << " record " << i;
  EXPECT_EQ(a.mem_value, b.mem_value) << side << " record " << i;
  EXPECT_EQ(a.mem_size, b.mem_size) << side << " record " << i;
  EXPECT_EQ(a.exception, b.exception) << side << " record " << i;
  EXPECT_EQ(static_cast<int>(a.priv), static_cast<int>(b.priv))
      << side << " record " << i;
}

void expect_reports_identical(const Report& streamed, const Report& ref) {
  EXPECT_EQ(streamed.raw_count, ref.raw_count);
  EXPECT_EQ(streamed.filtered_count, ref.filtered_count);
  ASSERT_EQ(streamed.mismatches.size(), ref.mismatches.size());
  for (std::size_t i = 0; i < ref.mismatches.size(); ++i) {
    const Mismatch& s = streamed.mismatches[i];
    const Mismatch& r = ref.mismatches[i];
    EXPECT_EQ(s.kind, r.kind) << "mismatch " << i;
    EXPECT_EQ(s.index, r.index) << "mismatch " << i;
    EXPECT_EQ(s.signature, r.signature) << "mismatch " << i;
    EXPECT_EQ(s.finding, r.finding) << "mismatch " << i;
    expect_records_equal(s.dut, r.dut, "dut", i);
    expect_records_equal(s.golden, r.golden, "golden", i);
  }
}

/// All injected-bug configurations: every bug on (the shipped DUT), all
/// off (clean core), and each bug in isolation.
std::vector<rtl::BugInjections> bug_configs() {
  std::vector<rtl::BugInjections> configs;
  configs.push_back(rtl::BugInjections{});      // all on
  configs.push_back(rtl::BugInjections::none());
  for (int bug = 0; bug < 5; ++bug) {
    rtl::BugInjections b = rtl::BugInjections::none();
    if (bug == 0) b.stale_icache = true;
    if (bug == 1) b.tracer_drops_muldiv = true;
    if (bug == 2) b.fault_priority_swap = true;
    if (bug == 3) b.amo_x0_trace = true;
    if (bug == 4) b.x0_link_trace = true;
    configs.push_back(b);
  }
  return configs;
}

TEST(LockstepParity, RandomProgramsAllBugConfigs) {
  corpus::CorpusGenerator gen({}, 2024);
  sim::Platform plat{.max_steps = 256};
  std::size_t total_raw = 0;
  for (int p = 0; p < 12; ++p) {
    const Program prog = gen.function();
    for (const rtl::BugInjections& bugs : bug_configs()) {
      rtl::CoreConfig core = rtl::CoreConfig::rocket();
      core.bugs = bugs;
      const Report ref = two_trace_report(core, prog, plat, plat);
      const Report streamed = lockstep_report(core, prog, plat, plat);
      expect_reports_identical(streamed, ref);
      total_raw += ref.raw_count;
    }
  }
  // The parity property holds vacuously on agreeing traces; make sure the
  // sweep actually exercised mismatching ones too.
  EXPECT_GT(total_raw, 0u);
}

TEST(LockstepParity, BoomConfigRandomPrograms) {
  corpus::CorpusGenerator gen({}, 7);
  sim::Platform plat{.max_steps = 256};
  for (int p = 0; p < 6; ++p) {
    const Program prog = gen.function();
    const rtl::CoreConfig core = rtl::CoreConfig::boom();
    expect_reports_identical(lockstep_report(core, prog, plat, plat),
                             two_trace_report(core, prog, plat, plat));
  }
}

TEST(LockstepParity, GoldenLongerTraceLengthMismatch) {
  // Infinite loop; the DUT's tighter step limit ends its trace first, so
  // the comparison resolves as a kLength mismatch at the DUT's last index.
  riscv::ProgramBuilder pb;
  pb.li(1, 0);
  pb.label("loop");
  pb.addi(1, 1, 1);
  pb.jal_to(0, "loop");
  const Program prog = pb.seal();
  const sim::Platform dut_plat{.max_steps = 32};
  const sim::Platform gold_plat{.max_steps = 512};
  rtl::CoreConfig core = rtl::CoreConfig::rocket();
  core.bugs = rtl::BugInjections::none();  // isolate the length mismatch
  const Report ref = two_trace_report(core, prog, dut_plat, gold_plat);
  ASSERT_EQ(ref.mismatches.size(), 1u);
  EXPECT_EQ(ref.mismatches[0].kind, Kind::kLength);
  expect_reports_identical(
      lockstep_report(core, prog, dut_plat, gold_plat), ref);
}

TEST(LockstepParity, GoldenShorterTraceLengthMismatch) {
  riscv::ProgramBuilder pb;
  pb.li(1, 0);
  pb.label("loop");
  pb.addi(1, 1, 1);
  pb.jal_to(0, "loop");
  const Program prog = pb.seal();
  const sim::Platform dut_plat{.max_steps = 64};
  const sim::Platform gold_plat{.max_steps = 24};
  rtl::CoreConfig core = rtl::CoreConfig::rocket();
  core.bugs = rtl::BugInjections::none();  // isolate the length mismatch
  const Report ref = two_trace_report(core, prog, dut_plat, gold_plat);
  ASSERT_EQ(ref.mismatches.size(), 1u);
  EXPECT_EQ(ref.mismatches[0].kind, Kind::kLength);
  expect_reports_identical(
      lockstep_report(core, prog, dut_plat, gold_plat), ref);
}

TEST(LockstepParity, FilteredCounterCsrMismatch) {
  // cycle reads legitimately differ between the ISS and the RTL model
  // (miss penalties); the counter-CSR filter must drop them identically on
  // both paths.
  riscv::ProgramBuilder pb;
  pb.li(1, 7);
  pb.csrrs(2, riscv::csr::kCycle, 0);
  pb.add(3, 1, 2);
  pb.raw(riscv::enc_sys(riscv::Opcode::kWfi));
  const Program prog = pb.seal();
  const sim::Platform plat{.max_steps = 64};
  rtl::CoreConfig core = rtl::CoreConfig::rocket();
  core.bugs = rtl::BugInjections::none();
  const Report ref = two_trace_report(core, prog, plat, plat);
  EXPECT_GT(ref.raw_count, 0u);
  EXPECT_GT(ref.filtered_count, 0u);
  expect_reports_identical(lockstep_report(core, prog, plat, plat), ref);
}

// ---- out-of-order backend ---------------------------------------------------

/// Backend-generic variants of the two paths, built through the DUT seam.
/// The out-of-order core's width-2 commit delivers up to two records per
/// cycle, so the comparator must pull the golden ISS once per *record*,
/// never once per cycle.
Report dut_two_trace_report(const rtl::CoreConfig& core, const Program& prog,
                            sim::Platform plat) {
  cov::CoverageDB db;
  auto dut = rtl::make_dut(core, db, plat);
  sim::IsaSim golden(plat);
  MismatchDetector det;
  det.install_default_filters();
  dut->reset(prog);
  const sim::RunResult dr = dut->run();
  golden.reset(prog);
  const sim::RunResult gr = golden.run();
  return det.compare(dr.trace, gr.trace);
}

Report dut_lockstep_report(const rtl::CoreConfig& core, const Program& prog,
                           sim::Platform plat, bool* dual_commit = nullptr) {
  cov::CoverageDB db;
  auto dut = rtl::make_dut(core, db, plat);
  sim::IsaSim golden(plat);
  MismatchDetector det;
  det.install_default_filters();
  LockstepComparator cmp;
  Report rep;
  golden.reset(prog);
  cmp.begin(det, golden, rep);
  dut->set_sink(&cmp);
  dut->reset(prog);
  dut->run();
  cmp.finish();
  if (dual_commit != nullptr) {
    *dual_commit = false;
    for (cov::PointId id = 0; id < db.num_points(); ++id) {
      if (db.point_name(id) == "ooo.rob.commit2" &&
          db.bin_hits(2 * id + 1) > 0) {
        *dual_commit = true;
      }
    }
  }
  return rep;
}

TEST(LockstepParity, OooCleanCoreCommitWidthTwo) {
  // Clean 2-wide ooo core over corpus programs: parity must hold, and the
  // sweep must actually exercise the dual-commit cycle (two golden pulls in
  // one DUT cycle) — otherwise the width-2 path is untested.
  corpus::CorpusGenerator gen({}, 31);
  const sim::Platform plat{.max_steps = 256};
  rtl::CoreConfig core = rtl::CoreConfig::ooo();
  core.bugs = rtl::BugInjections::none();
  bool any_dual = false;
  for (int p = 0; p < 8; ++p) {
    const Program prog = gen.function();
    bool dual = false;
    const Report ref = dut_two_trace_report(core, prog, plat);
    expect_reports_identical(dut_lockstep_report(core, prog, plat, &dual),
                             ref);
    EXPECT_EQ(ref.raw_count, 0u) << "clean ooo core diverged, program " << p;
    any_dual |= dual;
  }
  EXPECT_TRUE(any_dual) << "no program hit the dual-commit path";
}

TEST(LockstepParity, OooInjectedBugsStreamIdentically) {
  // LSU-dense stimulus with the shipped ooo bug classes on: the streamed
  // report must match the materialized one on real mismatches too, and the
  // sweep must surface some (no vacuous parity).
  corpus::CorpusConfig cc;
  cc.w_lsu = 8.0;
  corpus::CorpusGenerator gen(cc, 5);
  const sim::Platform plat{.max_steps = 256};
  const rtl::CoreConfig core = rtl::CoreConfig::ooo();  // bugs on
  std::size_t total_raw = 0;
  for (int p = 0; p < 24; ++p) {
    const Program prog = gen.function();
    const Report ref = dut_two_trace_report(core, prog, plat);
    expect_reports_identical(dut_lockstep_report(core, prog, plat), ref);
    total_raw += ref.raw_count;
  }
  EXPECT_GT(total_raw, 0u);
}

TEST(LockstepStreaming, GoldenModelStopsEarlyOnLengthResolution) {
  // The streaming payoff: once the DUT trace ends, one probe step decides
  // the length comparison — the golden model must NOT run on to its own
  // 512-instruction step limit as the materialized path did.
  riscv::ProgramBuilder pb;
  pb.li(1, 0);
  pb.label("loop");
  pb.addi(1, 1, 1);
  pb.jal_to(0, "loop");
  const Program prog = pb.seal();
  const sim::Platform dut_plat{.max_steps = 32};
  const sim::Platform gold_plat{.max_steps = 512};
  std::uint64_t golden_instret = 0;
  lockstep_report(rtl::CoreConfig::rocket(), prog, dut_plat, gold_plat,
                  &golden_instret);
  EXPECT_EQ(golden_instret, 33u);  // one commit per DUT commit + one probe
}

}  // namespace
}  // namespace chatfuzz::mismatch
