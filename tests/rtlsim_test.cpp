// DUT-model tests: the central lockstep property (with bug injections OFF,
// the RTL-level core and the golden model produce identical commit traces on
// arbitrary valid programs), each injected deviation produces exactly its
// expected divergence, plus unit tests for caches and the predictor.
#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "isasim/sim.h"
#include "riscv/builder.h"
#include "riscv/encode.h"
#include "rtlsim/core.h"

namespace chatfuzz::rtl {
namespace {

using riscv::Exception;
using riscv::Opcode;
namespace csr = riscv::csr;

sim::Platform test_platform() {
  sim::Platform p;
  p.max_steps = 1024;
  return p;
}

CoreConfig clean_rocket() {
  CoreConfig c = CoreConfig::rocket();
  c.bugs = BugInjections::none();
  return c;
}

/// Runs a program on both simulators and EXPECTs identical traces.
void expect_lockstep(const std::vector<std::uint32_t>& prog,
                     const CoreConfig& cfg = clean_rocket()) {
  const sim::Platform plat = test_platform();
  cov::CoverageDB db;
  RtlCore dut(cfg, db, plat);
  sim::IsaSim gold(plat);
  dut.reset(prog);
  gold.reset(prog);
  const sim::RunResult dr = dut.run();
  const sim::RunResult gr = gold.run();
  ASSERT_EQ(dr.trace.size(), gr.trace.size());
  for (std::size_t i = 0; i < dr.trace.size(); ++i) {
    const auto& d = dr.trace[i];
    const auto& g = gr.trace[i];
    ASSERT_EQ(d.pc, g.pc) << "step " << i;
    ASSERT_EQ(d.instr, g.instr) << "step " << i;
    EXPECT_EQ(d.exception, g.exception) << "step " << i << " " << d.to_string();
    EXPECT_EQ(d.has_rd_write, g.has_rd_write) << "step " << i << " " << d.to_string();
    EXPECT_EQ(d.rd, g.rd) << "step " << i;
    EXPECT_EQ(d.rd_value, g.rd_value) << "step " << i << " " << d.to_string();
    EXPECT_EQ(d.has_mem, g.has_mem) << "step " << i;
    EXPECT_EQ(d.mem_addr, g.mem_addr) << "step " << i;
    EXPECT_EQ(d.mem_value, g.mem_value) << "step " << i;
    EXPECT_EQ(d.priv, g.priv) << "step " << i;
  }
  EXPECT_EQ(dr.stop, gr.stop);
}

// ---- lockstep property, fuzzed --------------------------------------------

class LockstepRandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockstepRandomPrograms, RandomValidProgramsAgree) {
  Rng rng(GetParam());
  const auto prog = corpus::random_valid_program(rng, 40);
  expect_lockstep(prog);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockstepRandomPrograms,
                         ::testing::Range<std::uint64_t>(1, 41));

class LockstepCorpusPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockstepCorpusPrograms, StructuredFunctionsAgree) {
  corpus::CorpusGenerator gen(corpus::CorpusConfig{}, GetParam());
  // Corpus functions use FENCE.I-free self-contained idioms plus privilege
  // transitions; they must run identically on the clean DUT.
  expect_lockstep(gen.function());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockstepCorpusPrograms,
                         ::testing::Range<std::uint64_t>(100, 140));

TEST(LockstepBoom, CleanBoomAgreesWithGolden) {
  CoreConfig boom = CoreConfig::boom();
  boom.bugs = BugInjections::none();
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    expect_lockstep(corpus::random_valid_program(rng, 30), boom);
  }
}

// Even with all bugs ON, programs that avoid the trigger conditions
// (no self-modifying code, no mul/div, no AMO/jump with rd=x0, no
// misaligned+out-of-range access) behave identically.
TEST(LockstepInjected, NonTriggeringProgramMatches) {
  riscv::ProgramBuilder b;
  b.li(10, 4).li(11, 6);
  b.add(12, 10, 11);
  b.sw(2, 12, -4);
  b.lw(13, 2, -4);
  b.branch_to(Opcode::kBlt, 10, 11, "end");
  b.li(14, 1);
  b.label("end");
  b.ecall();
  expect_lockstep(b.seal(), CoreConfig::rocket());
}

// ---- injected deviations, one by one ---------------------------------------

struct DivergenceResult {
  sim::Trace dut, gold;
};

DivergenceResult run_both(const std::vector<std::uint32_t>& prog,
                          const CoreConfig& cfg) {
  const sim::Platform plat = test_platform();
  cov::CoverageDB db;
  RtlCore dut(cfg, db, plat);
  sim::IsaSim gold(plat);
  dut.reset(prog);
  gold.reset(prog);
  return {dut.run().trace, gold.run().trace};
}

TEST(Bug1, StaleIcacheServesOldInstruction) {
  // Fetch a line, overwrite an instruction in it, loop back without FENCE.I:
  // the DUT executes the stale word, the golden model the new one.
  riscv::ProgramBuilder b;
  const std::uint32_t li99 = riscv::enc_i(Opcode::kAddi, 10, 0, 99);
  const std::uint32_t li1 = riscv::enc_i(Opcode::kAddi, 10, 0, 1);
  b.li(11, static_cast<std::int32_t>(li99));  // 2 instrs
  b.auipc(12, 0);                             // byte 8
  b.sw(12, 11, 8);                            // patch byte 16
  b.raw(li1);                                 // byte 16: patched in memory
  const auto prog = b.seal();

  const DivergenceResult r = run_both(prog, CoreConfig::rocket());
  // Golden model executes the patched instruction...
  ASSERT_GE(r.gold.size(), 5u);
  EXPECT_EQ(r.gold.back().instr, li99);
  EXPECT_EQ(r.gold.back().rd_value, 99u);
  // ...the buggy DUT still executes the stale original bytes.
  EXPECT_EQ(r.dut.back().instr, li1);
  EXPECT_EQ(r.dut.back().rd_value, 1u);

  // With FENCE.I between the store and the target, both agree.
  riscv::ProgramBuilder b2;
  b2.li(11, static_cast<std::int32_t>(li99));
  b2.auipc(12, 0);
  b2.sw(12, 11, 16);
  b2.fence_i();
  b2.li(10, 1);
  expect_lockstep(b2.seal(), CoreConfig::rocket());
}

TEST(Bug2, TracerDropsMulDivWriteback) {
  riscv::ProgramBuilder b;
  b.li(10, 6).li(11, 7);
  b.mul(12, 10, 11);
  const auto prog = b.seal();
  const DivergenceResult r = run_both(prog, CoreConfig::rocket());
  const auto& d = r.dut.back();
  const auto& g = r.gold.back();
  EXPECT_FALSE(d.has_rd_write);     // trace record suppressed
  EXPECT_TRUE(g.has_rd_write);
  EXPECT_EQ(g.rd_value, 42u);

  // Architectural state is intact: a subsequent add sees the product.
  riscv::ProgramBuilder b2;
  b2.li(10, 6).li(11, 7);
  b2.mul(12, 10, 11);
  b2.add(13, 12, 0);
  const DivergenceResult r2 = run_both(b2.seal(), CoreConfig::rocket());
  EXPECT_EQ(r2.dut.back().rd_value, 42u);
}

TEST(Finding1, ExceptionPriorityInverted) {
  // Address both misaligned and outside RAM.
  riscv::ProgramBuilder b;
  b.li(10, 0x1001);
  b.lw(11, 10, 0);
  const DivergenceResult r = run_both(b.seal(), CoreConfig::rocket());
  EXPECT_EQ(r.dut.back().exception, Exception::kLoadAccessFault);
  EXPECT_EQ(r.gold.back().exception, Exception::kLoadAddrMisaligned);
}

TEST(Finding1, AlignedFaultStillAgrees) {
  riscv::ProgramBuilder b;
  b.li(10, 0x1000);
  b.lw(11, 10, 0);
  expect_lockstep(b.seal(), CoreConfig::rocket());
}

TEST(Finding2, AmoWithRdX0ShowsTraceWrite) {
  riscv::ProgramBuilder b;
  b.li(10, 5);
  b.sw(4, 10, 0);
  b.raw(riscv::enc_amo(Opcode::kAmoOrD, 0, 4, 11));  // rd = x0
  const DivergenceResult r = run_both(b.seal(), CoreConfig::rocket());
  const auto& d = r.dut.back();
  EXPECT_TRUE(d.has_rd_write);
  EXPECT_EQ(d.rd, 0);
  EXPECT_FALSE(r.gold.back().has_rd_write);
}

TEST(Finding3, BackwardJumpWithRdX0ShowsTraceWrite) {
  riscv::ProgramBuilder b;
  b.branch_to(Opcode::kBeq, 5, 5, "fwd");  // hop over the landing pad
  b.label("back");
  b.ecall();
  b.label("fwd");
  b.jal_to(0, "back");  // backward jump, rd = x0
  const DivergenceResult r = run_both(b.seal(), CoreConfig::rocket());
  bool dut_x0_write = false;
  for (const auto& rec : r.dut) {
    if (rec.has_rd_write && rec.rd == 0) dut_x0_write = true;
  }
  EXPECT_TRUE(dut_x0_write);
  for (const auto& rec : r.gold) {
    EXPECT_FALSE(rec.has_rd_write && rec.rd == 0);
  }
}

// ---- coverage behaviour ------------------------------------------------------

TEST(Coverage, PointsRegisterOnceAndAccumulate) {
  cov::CoverageDB db;
  RtlCore dut(CoreConfig::rocket(), db, test_platform());
  EXPECT_GT(db.num_points(), 150u);
  riscv::ProgramBuilder b;
  b.li(10, 1).ecall();
  dut.reset(b.seal());
  dut.run();
  const std::size_t after_one = db.total_covered();
  EXPECT_GT(after_one, 0u);
  // A second, different program only grows coverage.
  riscv::ProgramBuilder b2;
  b2.mul(12, 10, 11);
  b2.fence_i();
  dut.reset(b2.seal());
  dut.run();
  EXPECT_GE(db.total_covered(), after_one);
}

TEST(Coverage, ConfigsRegisterTheirOwnInstrumentation) {
  cov::CoverageDB rocket_db, boom_db;
  RtlCore rocket(CoreConfig::rocket(), rocket_db, test_platform());
  RtlCore boom(CoreConfig::boom(), boom_db, test_platform());
  auto has_prefix = [](const cov::CoverageDB& db, const std::string& prefix) {
    for (std::size_t i = 0; i < db.num_points(); ++i) {
      if (db.point_name(static_cast<cov::PointId>(i)).rfind(prefix, 0) == 0) {
        return true;
      }
    }
    return false;
  };
  // BOOM carries the superscalar front-end points; the RocketCore build
  // carries the full deep cross instrumentation (cross_depth = 2).
  EXPECT_TRUE(has_prefix(boom_db, "boom."));
  EXPECT_FALSE(has_prefix(rocket_db, "boom."));
  EXPECT_TRUE(has_prefix(rocket_db, "tlb."));
  EXPECT_FALSE(has_prefix(boom_db, "tlb."));
  EXPECT_TRUE(has_prefix(rocket_db, "cross.user.op."));
  EXPECT_FALSE(has_prefix(boom_db, "cross.user.op."));
  EXPECT_GT(rocket_db.num_points(), 400u);
  EXPECT_GT(boom_db.num_points(), 150u);
}

TEST(Coverage, DeepPointsNeedTriggers) {
  cov::CoverageDB db;
  RtlCore dut(CoreConfig::rocket(), db, test_platform());
  // Find the fence.i flush point.
  cov::PointId fencei = 0;
  bool found = false;
  for (std::size_t i = 0; i < db.num_points(); ++i) {
    if (db.point_name(static_cast<cov::PointId>(i)) ==
        "fetch.icache.fencei_flush") {
      fencei = static_cast<cov::PointId>(i);
      found = true;
    }
  }
  ASSERT_TRUE(found);
  riscv::ProgramBuilder plain;
  plain.li(10, 1).ecall();
  dut.reset(plain.seal());
  dut.run();
  EXPECT_FALSE(db.bin_covered(2 * fencei + 1));
  riscv::ProgramBuilder with_fence;
  with_fence.fence_i();
  dut.reset(with_fence.seal());
  dut.run();
  EXPECT_TRUE(db.bin_covered(2 * fencei + 1));
}

TEST(Coverage, CyclesExceedInstructions) {
  cov::CoverageDB db;
  RtlCore dut(CoreConfig::rocket(), db, test_platform());
  riscv::ProgramBuilder b;
  b.li(10, 100).li(11, 3);
  b.div(12, 10, 11);   // multi-cycle
  dut.reset(b.seal());
  const sim::RunResult r = dut.run();
  EXPECT_GT(dut.cycles(), r.steps);
}

// ---- cache / predictor units ---------------------------------------------------

TEST(ICacheUnit, HitAfterMissAndFlush) {
  sim::Memory mem(0x1000, 0x1000);
  mem.write(0x1000, 0xdeadbeef, 4);
  ICache ic(4, 2, 32);
  CacheAccess a1, a2, a3;
  EXPECT_EQ(ic.fetch(0x1000, mem, a1), 0xdeadbeefu);
  EXPECT_FALSE(a1.hit);
  EXPECT_EQ(ic.fetch(0x1000, mem, a2), 0xdeadbeefu);
  EXPECT_TRUE(a2.hit);
  ic.flush();
  ic.fetch(0x1000, mem, a3);
  EXPECT_FALSE(a3.hit);
}

TEST(ICacheUnit, ServesStaleBytesUntilInvalidate) {
  sim::Memory mem(0x1000, 0x1000);
  mem.write(0x1000, 0x11111111, 4);
  ICache ic(4, 2, 32);
  CacheAccess acc;
  ic.fetch(0x1000, mem, acc);
  mem.write(0x1000, 0x22222222, 4);  // memory changes behind the cache
  CacheAccess acc2;
  EXPECT_EQ(ic.fetch(0x1000, mem, acc2), 0x11111111u);  // stale
  ic.invalidate_addr(0x1000);
  CacheAccess acc3;
  EXPECT_EQ(ic.fetch(0x1000, mem, acc3), 0x22222222u);  // fresh after inval
}

TEST(ICacheUnit, ConflictEviction) {
  sim::Memory mem(0x0, 1 << 20);
  ICache ic(4, 1, 32);  // direct-mapped, 4 sets: addresses 128 apart collide
  CacheAccess a;
  ic.fetch(0x0, mem, a);
  ic.fetch(0x80, mem, a);  // same set, evicts
  EXPECT_TRUE(a.evicted_valid);
  CacheAccess b;
  ic.fetch(0x0, mem, b);
  EXPECT_FALSE(b.hit);  // was evicted
}

TEST(DCacheUnit, DirtyEviction) {
  DCache dc(2, 1, 32);
  CacheAccess a = dc.access(0x0, true);  // miss, dirty
  EXPECT_FALSE(a.hit);
  a = dc.access(0x80, false);  // same set: evicts dirty line
  EXPECT_TRUE(a.evicted_dirty);
}

TEST(PredictorUnit, LearnsATakenBranch) {
  Predictor p(8);
  const std::uint64_t pc = 0x1000, target = 0x2000;
  EXPECT_FALSE(p.predict(pc).predict_taken);
  EXPECT_TRUE(p.update(pc, true, target));   // first taken: mispredict
  EXPECT_TRUE(p.predict(pc).predict_taken);  // learned
  EXPECT_FALSE(p.update(pc, true, target));  // now correct
  // One not-taken decays but does not flip a saturated counter...
  p.update(pc, true, target);                // saturate
  EXPECT_TRUE(p.update(pc, false, target));  // mispredict
  EXPECT_TRUE(p.predict(pc).predict_taken);  // still predicts taken (3->2)
}

TEST(PredictorUnit, TargetChangeIsMispredict) {
  Predictor p(8);
  p.update(0x1000, true, 0x2000);
  EXPECT_TRUE(p.update(0x1000, true, 0x3000));  // same pc, new target
}

}  // namespace
}  // namespace chatfuzz::rtl
