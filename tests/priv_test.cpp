// Privileged-architecture unit suite: mstatus/sstatus WARL legalization,
// the MPP/SPP/MPIE/SPIE stacks across trap entry and mret/sret, medeleg
// masking edge cases, and min-privilege CSR access faults — asserted
// against BOTH independent implementations (the golden IsaSim and the
// bug-free RtlCore), since a trap-unit divergence between them is exactly
// what the differential harness exists to catch.
#include <gtest/gtest.h>

#include <vector>

#include "coverage/cover.h"
#include "isasim/platform.h"
#include "isasim/sim.h"
#include "riscv/builder.h"
#include "riscv/csr.h"
#include "rtlsim/core.h"

namespace chatfuzz {
namespace {

namespace csr = riscv::csr;
namespace ms = sim::mstatus;
using riscv::Priv;
using Program = std::vector<std::uint32_t>;

/// Run `prog` to completion on the golden model and on a bug-free
/// RocketCore-class DUT, then apply the same assertions to both. The check
/// receives a side label for failure messages and the finished simulator.
template <typename Check>
void run_both(const Program& prog, Check&& check, std::uint64_t max_steps = 512) {
  sim::Platform plat;
  plat.max_steps = max_steps;
  {
    sim::IsaSim iss(plat);
    iss.reset(prog);
    iss.run();
    check("iss", iss);
  }
  {
    cov::CoverageDB db;
    rtl::CoreConfig core = rtl::CoreConfig::rocket();
    core.bugs = rtl::BugInjections::none();
    rtl::RtlCore dut(core, db, plat);
    dut.reset(prog);
    dut.run();
    check("dut", dut);
  }
}

constexpr std::uint64_t kStatusWritable = ms::kSie | ms::kMie | ms::kSpie |
                                          ms::kMpie | ms::kSpp | ms::kMppMask |
                                          ms::kSum | ms::kMxr;
constexpr std::uint64_t kSstatusBits =
    ms::kSie | ms::kSpie | ms::kSpp | ms::kSum | ms::kMxr;

TEST(PrivCsr, MstatusWritesAreMasked) {
  riscv::ProgramBuilder b;
  b.li(5, -1);
  b.csrrw(0, csr::kMstatus, 5);
  run_both(b.seal(), [](const char* side, const auto& s) {
    // All-ones folds to exactly the writable field set; MPP=0b11 (M) is a
    // legal value and survives.
    EXPECT_EQ(s.csr_value(csr::kMstatus), kStatusWritable) << side;
  });
}

TEST(PrivCsr, MstatusReservedMppFoldsToU) {
  riscv::ProgramBuilder b;
  b.li(5, 2 << 11);  // MPP = 0b10: reserved (no H mode)
  b.csrrw(0, csr::kMstatus, 5);
  b.csrrs(10, csr::kMstatus, 0);
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMstatus) & ms::kMppMask, 0u) << side;
    EXPECT_EQ(s.reg(10) & ms::kMppMask, 0u) << side;
  });
}

TEST(PrivCsr, SstatusIsAMaskedViewOfMstatus) {
  riscv::ProgramBuilder b;
  b.li(5, -1);
  b.csrrw(0, csr::kSstatus, 5);  // writes only the S-view bits
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kSstatus), kSstatusBits) << side;
    // The write must not have leaked into M-only fields.
    EXPECT_EQ(s.csr_value(csr::kMstatus) & (ms::kMie | ms::kMpie), 0u) << side;
    EXPECT_EQ(s.csr_value(csr::kMstatus) & kSstatusBits, kSstatusBits) << side;
  });
}

TEST(PrivCsr, MedelegMidelegMaskEdgeCases) {
  riscv::ProgramBuilder b;
  b.li(5, -1);
  b.csrrw(0, csr::kMedeleg, 5);
  b.csrrw(0, csr::kMideleg, 5);
  run_both(b.seal(), [](const char* side, const auto& s) {
    // Delegable synchronous causes only: bits 10 (reserved), 11 (ecall from
    // M) and 14 (reserved) must read back zero.
    EXPECT_EQ(s.csr_value(csr::kMedeleg), csr::kMedelegMask) << side;
    EXPECT_EQ(s.csr_value(csr::kMedeleg) & (1u << 11), 0u) << side;
    EXPECT_EQ(s.csr_value(csr::kMideleg), csr::kMidelegMask) << side;
  });
}

TEST(PrivTrap, MachineTrapPushesMstatusStack) {
  riscv::ProgramBuilder b;
  b.li(5, static_cast<std::int32_t>(ms::kMie));
  b.csrrs(0, csr::kMstatus, 5);  // MIE=1 so the stack push is observable
  b.ecall();                     // cause 11, stays in M
  const std::uint64_t ecall_pc = b.pc() - 4;
  run_both(b.seal(), [=](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 11u) << side;
    EXPECT_EQ(s.csr_value(csr::kMepc), ecall_pc) << side;
    const std::uint64_t st = s.csr_value(csr::kMstatus);
    EXPECT_EQ(st & ms::kMie, 0u) << side;       // MIE <= 0
    EXPECT_NE(st & ms::kMpie, 0u) << side;      // MPIE <= old MIE
    EXPECT_EQ((st & ms::kMppMask) >> ms::kMppShift, 3u) << side;  // MPP <= M
    EXPECT_EQ(static_cast<int>(s.priv()), static_cast<int>(Priv::kMachine))
        << side;
  });
}

TEST(PrivTrap, DelegatedTrapPushesSstatusStack) {
  riscv::ProgramBuilder b;
  b.li(5, 1 << 8);
  b.csrrs(0, csr::kMedeleg, 5);  // delegate ecall-from-U
  b.li(5, static_cast<std::int32_t>(ms::kSie));
  b.csrrs(0, csr::kMstatus, 5);  // SIE=1 so SPIE<=SIE is observable
  b.enter_priv(0);               // drop to U
  const std::uint64_t ecall_pc = b.pc();
  b.ecall();                     // cause 8 -> S-mode trampoline
  b.csrrs(10, csr::kScause, 0);  // now in S: legal reads
  b.csrrs(11, csr::kSepc, 0);
  run_both(b.seal(), [=](const char* side, const auto& s) {
    EXPECT_EQ(static_cast<int>(s.priv()), static_cast<int>(Priv::kSupervisor))
        << side;
    EXPECT_EQ(s.reg(10), 8u) << side;
    EXPECT_EQ(s.reg(11), ecall_pc) << side;
    EXPECT_EQ(s.csr_value(csr::kScause), 8u) << side;
    // The M-mode trap CSRs must be untouched by a delegated trap.
    EXPECT_EQ(s.csr_value(csr::kMcause), 0u) << side;
    const std::uint64_t st = s.csr_value(csr::kSstatus);
    EXPECT_EQ(st & ms::kSpp, 0u) << side;   // SPP <= U
    EXPECT_NE(st & ms::kSpie, 0u) << side;  // SPIE <= old SIE
    EXPECT_EQ(st & ms::kSie, 0u) << side;   // SIE <= 0
  });
}

TEST(PrivTrap, TrapFromMachineIsNeverDelegated) {
  riscv::ProgramBuilder b;
  b.li(5, 1 << 11 | 0x7ff);      // try to delegate everything incl. cause 11
  b.csrrs(0, csr::kMedeleg, 5);
  b.ecall();                     // from M: must go to the M trampoline
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 11u) << side;
    EXPECT_EQ(s.csr_value(csr::kScause), 0u) << side;
    EXPECT_EQ(static_cast<int>(s.priv()), static_cast<int>(Priv::kMachine))
        << side;
  });
}

TEST(PrivTrap, MretSretWalkDownThePrivilegeLadder) {
  riscv::ProgramBuilder b;
  b.enter_priv(1);   // M -> S
  b.auipc(6, 0);
  b.addi(6, 6, 16);
  b.csrrw(0, csr::kSepc, 6);  // resume just past the sret
  b.sret();          // SPP=0 -> U
  b.addi(10, 0, 7);  // still executes, in U
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(static_cast<int>(s.priv()), static_cast<int>(Priv::kUser))
        << side;
    EXPECT_EQ(s.reg(10), 7u) << side;
  });
}

TEST(PrivTrap, SretInUserModeIsIllegal) {
  riscv::ProgramBuilder b;
  b.enter_priv(0);  // U
  const std::uint64_t sret_pc = b.pc();
  b.sret();         // illegal from U -> M trampoline
  run_both(b.seal(), [=](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 2u) << side;
    EXPECT_EQ(s.csr_value(csr::kMepc), sret_pc) << side;
    EXPECT_EQ(static_cast<int>(s.priv()), static_cast<int>(Priv::kMachine))
        << side;
  });
}

TEST(PrivCsr, UserModeCsrAccessFaults) {
  riscv::ProgramBuilder b;
  b.enter_priv(0);               // U
  const std::uint64_t fault_pc = b.pc();
  b.csrrs(10, csr::kMstatus, 0); // min_priv M: illegal from U
  run_both(b.seal(), [=](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 2u) << side;
    EXPECT_EQ(s.csr_value(csr::kMepc), fault_pc) << side;
  });
}

TEST(PrivCsr, UserModeSupervisorCsrAccessFaults) {
  riscv::ProgramBuilder b;
  b.enter_priv(0);
  const std::uint64_t fault_pc = b.pc();
  b.csrrs(10, csr::kSscratch, 0);  // min_priv S: illegal from U
  run_both(b.seal(), [=](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 2u) << side;
    EXPECT_EQ(s.csr_value(csr::kMepc), fault_pc) << side;
  });
}

TEST(PrivCsr, SupervisorModeMachineCsrWriteFaults) {
  riscv::ProgramBuilder b;
  b.enter_priv(1);               // S
  const std::uint64_t fault_pc = b.pc();
  b.csrrw(0, csr::kMscratch, 5); // M-only from S
  run_both(b.seal(), [=](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 2u) << side;
    EXPECT_EQ(s.csr_value(csr::kMepc), fault_pc) << side;
  });
}

TEST(PrivCsr, SupervisorCsrsWorkInSupervisorMode) {
  riscv::ProgramBuilder b;
  b.li(5, 0x123);
  b.csrrw(0, csr::kSscratch, 5);  // from M
  b.enter_priv(1);                // S
  b.csrrs(10, csr::kSscratch, 0); // legal in S
  b.li(6, 0x456);
  b.csrrw(0, csr::kSscratch, 6);  // write from S
  b.csrrs(11, csr::kSscratch, 0);
  run_both(b.seal(), [](const char* side, const auto& s) {
    EXPECT_EQ(s.reg(10), 0x123u) << side;
    EXPECT_EQ(s.reg(11), 0x456u) << side;
    EXPECT_EQ(s.csr_value(csr::kMcause), 0u) << side;  // no trap anywhere
  });
}

TEST(PrivTrap, SfenceVmaIllegalFromUserMode) {
  riscv::ProgramBuilder b;
  b.enter_priv(0);
  const std::uint64_t fault_pc = b.pc();
  b.sfence_vma();
  run_both(b.seal(), [=](const char* side, const auto& s) {
    EXPECT_EQ(s.csr_value(csr::kMcause), 2u) << side;
    EXPECT_EQ(s.csr_value(csr::kMepc), fault_pc) << side;
  });
}

}  // namespace
}  // namespace chatfuzz
