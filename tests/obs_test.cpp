// Telemetry subsystem (src/obs/) contract tests. The load-bearing property
// is the out-of-band guarantee: tracing and stats export observe a campaign
// without perturbing it — every campaign artifact (result, coverage DB,
// mismatch DB, generator stream, corpus bytes) is byte-identical with
// telemetry on or off, for any workers x procs topology and across a
// checkpoint/resume cut. Plus the mechanisms themselves: ring overflow
// drops-and-counts instead of blocking, the obs::Clock seam makes output
// deterministic, exported files are well-formed, and a live coordinator
// answers `fleet status` queries (with auth) while a campaign runs.
//
// Like the dist determinism suite this binary is its own worker fleet:
// main() routes the hidden `worker ...` argv into dist::maybe_worker_main
// before gtest runs (campaigns with --procs re-exec /proc/self/exe).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "core/checkpoint.h"
#include "corpus/stats.h"
#include "corpus/store.h"
#include "dist/fleet.h"
#include "dist/protocol.h"
#include "dist/worker.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace chatfuzz::core {
namespace {

namespace fs = std::filesystem;

// Same shape as the dist determinism harness: 3 batches of 32 with a
// checkpoint interval that does not divide the batch size.
CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.num_tests = 96;
  cfg.batch_size = 32;
  cfg.checkpoint_every = 10;
  cfg.platform.max_steps = 256;
  cfg.dist.lease_tests = 4;
  return cfg;
}

std::string fresh_dir(const char* tag) {
  static int counter = 0;
  std::string dir = std::string("obs_test_") + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

CampaignResult run_plain(const CampaignConfig& base, std::size_t procs,
                         std::size_t workers, const std::string& dir) {
  baselines::RandomFuzzer gen(11);
  CampaignConfig cfg = base;
  cfg.dist.num_procs = procs;
  cfg.num_workers = workers;
  cfg.checkpoint_dir = dir;
  return run_campaign(gen, cfg);
}

CampaignResult run_traced(const CampaignConfig& base, std::size_t procs,
                          std::size_t workers, const std::string& dir,
                          const std::string& trace,
                          const std::string& stats) {
  baselines::RandomFuzzer gen(11);
  CampaignConfig cfg = base;
  cfg.dist.num_procs = procs;
  cfg.num_workers = workers;
  cfg.checkpoint_dir = dir;
  cfg.trace_path = trace;
  cfg.stats_path = stats;
  cfg.stats_every_ms = 0;  // every batch boundary
  return run_campaign(gen, cfg);
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.tests_run, b.tests_run);
  EXPECT_EQ(a.final_cov_percent, b.final_cov_percent);  // bit-exact, no tol
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_instrs, b.total_instrs);
  EXPECT_EQ(a.raw_mismatches, b.raw_mismatches);
  EXPECT_EQ(a.filtered_mismatches, b.filtered_mismatches);
  EXPECT_EQ(a.unique_mismatches, b.unique_mismatches);
  EXPECT_EQ(a.findings, b.findings);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].tests, b.curve[i].tests) << "point " << i;
    EXPECT_EQ(a.curve[i].hours, b.curve[i].hours) << "point " << i;
    EXPECT_EQ(a.curve[i].cond_cov_percent, b.curve[i].cond_cov_percent)
        << "point " << i;
    EXPECT_EQ(a.curve[i].ctrl_states, b.curve[i].ctrl_states) << "point " << i;
  }
}

std::string file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::map<std::string, std::string> corpus_bytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& e : fs::directory_iterator(fs::path(dir) / "corpus")) {
    out[e.path().filename().string()] = file_bytes(e.path());
  }
  return out;
}

/// Byte-level form of "telemetry never touched the campaign state".
void expect_same_persisted_state(const std::string& dir_a,
                                 const std::string& dir_b) {
  CheckpointData a, b;
  ASSERT_TRUE(load_checkpoint(dir_a, &a).ok());
  ASSERT_TRUE(load_checkpoint(dir_b, &b).ok());
  EXPECT_EQ(a.coverage_blob, b.coverage_blob) << "coverage DB bytes differ";
  EXPECT_EQ(a.detector_blob, b.detector_blob)
      << "mismatch signature DB bytes differ";
  EXPECT_EQ(a.generator_blob, b.generator_blob)
      << "generator stream state differs";
  EXPECT_EQ(corpus_bytes(dir_a), corpus_bytes(dir_b))
      << "corpus store bytes differ";
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

// ---------------------------------------------------------------------------
// Trace ring mechanics.
// ---------------------------------------------------------------------------

TEST(ObsTrace, RingOverflowDropsNewestAndCounts) {
  // Ring capacity applies to buffers created after trace_start, so record on
  // a fresh thread (the main thread's ring may predate this test with a
  // larger capacity).
  obs::trace_start(/*ring_capacity=*/8);
  std::thread producer([] {
    for (int i = 0; i < 20; ++i) {
      OBS_SPAN("obs_test.overflow");
    }
  });
  producer.join();
  obs::trace_stop();
  EXPECT_EQ(obs::trace_span_count(), 8u);
  EXPECT_EQ(obs::trace_dropped_count(), 12u);

  const std::string path = fresh_dir("overflow") + ".json";
  std::string err;
  ASSERT_TRUE(obs::write_chrome_trace(path, &err)) << err;
  const std::string json = file_bytes(path);
  EXPECT_NE(json.find("\"droppedSpans\":\"12\""), std::string::npos) << json;
  fs::remove(path);
}

TEST(ObsTrace, ManualClockProducesExactTimestamps) {
  obs::ManualClock clock(1'000'000);  // 1000.000 us
  obs::set_clock(&clock);
  obs::trace_start(64);
  {
    OBS_SPAN("obs_test.clocked");
    clock.advance_ns(2'500);  // 2.500 us duration
  }
  obs::trace_stop();
  obs::set_clock(nullptr);

  const std::string path = fresh_dir("clocked") + ".json";
  std::string err;
  ASSERT_TRUE(obs::write_chrome_trace(path, &err)) << err;
  const std::string json = file_bytes(path);
  EXPECT_NE(json.find("\"name\":\"obs_test.clocked\""), std::string::npos);
  // Category = span-name prefix before the first dot (Perfetto layer group).
  EXPECT_NE(json.find("\"cat\":\"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos) << json;
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Metrics registry + NDJSON writer.
// ---------------------------------------------------------------------------

TEST(ObsMetrics, SnapshotExpandsHistogramsAndSortsNames) {
  obs::registry().reset();
  obs::counter("obs_test.a")->add(7);
  obs::gauge("obs_test.b")->set(2.5);
  obs::registry().histogram("obs_test.h", 0.0, 10.0, 4)->add(5.0);
  const std::string json = obs::registry().to_json();
  EXPECT_NE(json.find("\"obs_test.a\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"obs_test.b\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"obs_test.h.count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"obs_test.h.mean\":5"), std::string::npos) << json;
  // Name-sorted: a < b < h.count.
  EXPECT_LT(json.find("obs_test.a"), json.find("obs_test.b"));
  EXPECT_LT(json.find("obs_test.b"), json.find("obs_test.h.count"));
  obs::registry().reset();
  EXPECT_EQ(obs::counter("obs_test.a")->value(), 0u);
}

TEST(ObsMetrics, StatsWriterHonorsIntervalUnderManualClock) {
  obs::ManualClock clock(0);
  obs::set_clock(&clock);
  obs::registry().reset();
  obs::counter("obs_test.events")->add(3);

  const std::string path = fresh_dir("stats") + ".ndjson";
  obs::StatsWriter w;
  std::string err;
  ASSERT_TRUE(w.open(path, /*every_ms=*/100, &err)) << err;
  w.maybe_write({});               // first call always writes
  clock.advance_ns(50'000'000);    // +50ms: inside the interval, suppressed
  w.maybe_write({});
  clock.advance_ns(60'000'000);    // +110ms total: interval elapsed
  w.maybe_write({});
  w.finish({{"final", 1.0}});      // final line is unconditional
  obs::set_clock(nullptr);

  const std::vector<std::string> lines = lines_of(file_bytes(path));
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"t_ms\":"), std::string::npos);
    EXPECT_NE(line.find("\"obs_test.events\":3"), std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"t_ms\":0"), std::string::npos);
  EXPECT_NE(lines[2].find("\"final\":1"), std::string::npos);
  obs::registry().reset();
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Campaign-level export: well-formed files with spans from every layer.
// ---------------------------------------------------------------------------

TEST(ObsCampaign, TraceAndStatsExportsAreWellFormed) {
  const CampaignConfig cfg = small_campaign();
  const std::string dir = fresh_dir("export");
  const std::string trace = dir + ".trace.json";
  const std::string stats = dir + ".stats.ndjson";
  run_traced(cfg, /*procs=*/1, /*workers=*/2, dir, trace, stats);

  const std::string json = file_bytes(trace);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"engine."), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sim."), std::string::npos);
  EXPECT_NE(json.find("\"otherData\":{\"droppedSpans\":"), std::string::npos);

  const std::vector<std::string> lines = lines_of(file_bytes(stats));
  ASSERT_FALSE(lines.empty());
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"t_ms\":"), std::string::npos);
  }
  EXPECT_NE(lines.back().find("\"campaign.tests\":96"), std::string::npos)
      << lines.back();
  EXPECT_NE(lines.back().find("\"final\":1"), std::string::npos);

  // Distributed topology: the coordinator's own trace carries dist.* spans
  // and its NDJSON carries fleet rollups.
  const std::string dir2 = fresh_dir("export_dist");
  const std::string trace2 = dir2 + ".trace.json";
  const std::string stats2 = dir2 + ".stats.ndjson";
  run_traced(cfg, /*procs=*/2, /*workers=*/1, dir2, trace2, stats2);
  const std::string json2 = file_bytes(trace2);
  EXPECT_NE(json2.find("\"name\":\"dist."), std::string::npos);
  const std::string ndjson2 = file_bytes(stats2);
  EXPECT_NE(ndjson2.find("\"fleet.workers_live\":"), std::string::npos);
  EXPECT_NE(ndjson2.find("\"fleet.worker."), std::string::npos)
      << "worker registry snapshots never crossed the wire";

  fs::remove_all(dir);
  fs::remove_all(dir2);
  fs::remove(trace);
  fs::remove(stats);
  fs::remove(trace2);
  fs::remove(stats2);
}

// ---------------------------------------------------------------------------
// The out-of-band contract: telemetry on vs off is byte-identical.
// ---------------------------------------------------------------------------

TEST(ObsCampaign, TelemetryIsByteIdenticalAcrossTopologies) {
  const CampaignConfig cfg = small_campaign();
  const std::string base_dir = fresh_dir("ident_base");
  const CampaignResult base = run_plain(cfg, 1, 1, base_dir);

  const struct { std::size_t procs, workers; } grid[] = {
      {1, 4}, {2, 1}, {2, 4}};
  for (const auto& g : grid) {
    SCOPED_TRACE("procs=" + std::to_string(g.procs) +
                 " workers=" + std::to_string(g.workers));
    const std::string dir = fresh_dir("ident");
    const std::string trace = dir + ".trace.json";
    const std::string stats = dir + ".stats.ndjson";
    const CampaignResult r =
        run_traced(cfg, g.procs, g.workers, dir, trace, stats);
    expect_identical(base, r);
    expect_same_persisted_state(base_dir, dir);
    EXPECT_FALSE(file_bytes(trace).empty());
    EXPECT_FALSE(file_bytes(stats).empty());
    fs::remove_all(dir);
    fs::remove(trace);
    fs::remove(stats);
  }
  fs::remove_all(base_dir);
}

TEST(ObsCampaign, TelemetryIsByteIdenticalAcrossResumeCut) {
  // Telemetry on both segments of a paused+resumed campaign (with a
  // topology switch at the cut) must still reproduce an uninterrupted,
  // untraced run bit-for-bit.
  const CampaignConfig cfg = small_campaign();
  const std::string da = fresh_dir("resume_a"), db = fresh_dir("resume_b");
  const CampaignResult uninterrupted = run_plain(cfg, 1, 1, da);

  {
    baselines::RandomFuzzer gen(11);
    CampaignConfig first = cfg;
    first.dist.num_procs = 1;
    first.num_workers = 2;
    first.checkpoint_dir = db;
    first.stop_after_tests = 40;
    first.trace_path = db + ".seg1.trace.json";
    first.stats_path = db + ".seg1.stats.ndjson";
    first.stats_every_ms = 0;
    const CampaignResult partial = run_campaign(gen, first);
    EXPECT_FALSE(partial.completed);
    EXPECT_LT(partial.tests_run, cfg.num_tests);
  }
  baselines::RandomFuzzer gen2(11);  // shell; state restores from disk
  ResumeOptions opts;
  opts.num_workers = 4;
  opts.dist.num_procs = 2;
  opts.dist.lease_tests = cfg.dist.lease_tests;
  opts.trace_path = db + ".seg2.trace.json";
  opts.stats_path = db + ".seg2.stats.ndjson";
  opts.stats_every_ms = 0;
  const CampaignResult resumed = resume_campaign(gen2, db, opts);
  EXPECT_TRUE(resumed.completed);
  expect_identical(uninterrupted, resumed);
  expect_same_persisted_state(da, db);
  EXPECT_FALSE(file_bytes(db + ".seg2.trace.json").empty());
  fs::remove_all(da);
  fs::remove_all(db);
  for (const char* suffix :
       {".seg1.trace.json", ".seg1.stats.ndjson", ".seg2.trace.json",
        ".seg2.stats.ndjson"}) {
    fs::remove(db + suffix);
  }
}

// ---------------------------------------------------------------------------
// Fleet introspection against a live coordinator.
// ---------------------------------------------------------------------------

std::string wait_for_port(const std::string& path) {
  for (int i = 0; i < 300; ++i) {
    std::ifstream in(path);
    std::string hp;
    if (in && std::getline(in, hp) && !hp.empty()) return hp;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return "";
}

TEST(ObsFleet, StatusQueryAgainstLiveCoordinator) {
  clear_drain();
  CampaignConfig cfg = small_campaign();
  cfg.num_tests = 50'000;  // long enough to outlive the queries; drained below
  cfg.dist.num_procs = 2;
  cfg.dist.listen = "127.0.0.1:0";
  cfg.dist.token = "obs-test-token";
  const std::string port_file = fresh_dir("port") + ".portfile";
  cfg.dist.port_file = port_file;

  baselines::RandomFuzzer gen(11);
  CampaignResult result;
  std::thread campaign([&] { result = run_campaign(gen, cfg); });
  const std::string hp = wait_for_port(port_file);
  ASSERT_FALSE(hp.empty()) << "coordinator never wrote its port file";

  // A status peer with the right token gets one reply and a close.
  dist::StatsReplyMsg reply;
  std::string err;
  ASSERT_TRUE(dist::fleet_status_query(hp, "obs-test-token", &reply, &err))
      << err;
  EXPECT_FALSE(reply.peers.empty());
  EXPECT_FALSE(reply.metrics.empty());
  bool any_live = false;
  for (const dist::PeerStatusEntry& p : reply.peers) any_live |= p.alive;
  EXPECT_TRUE(any_live);
  const std::string text = dist::render_fleet_status(reply);
  EXPECT_NE(text.find("fleet:"), std::string::npos);
  EXPECT_NE(text.find("live"), std::string::npos);

  // The wrong token is rejected before any state flows.
  dist::StatsReplyMsg reply2;
  std::string err2;
  EXPECT_FALSE(dist::fleet_status_query(hp, "wrong-token", &reply2, &err2));
  EXPECT_NE(err2.find("rejected"), std::string::npos) << err2;

  request_drain();  // stop at the next batch boundary, like SIGTERM
  campaign.join();
  clear_drain();
  EXPECT_FALSE(result.completed);
  fs::remove(port_file);
}

// ---------------------------------------------------------------------------
// corpus stats --json round-trip.
// ---------------------------------------------------------------------------

TEST(CorpusStatsJson, RoundTripsThroughParseExactly) {
  const std::string dir = fresh_dir("corpus");
  corpus::CorpusStore store;
  ASSERT_TRUE(store.open(dir, /*shard_capacity=*/2).ok());

  corpus::StoreEntryMeta m0;
  m0.test_index = 0;
  m0.new_bins = {1, 2, 3};
  m0.ctrl_new = 2;
  m0.mismatches = 1;
  m0.phase_hash = 0x1111;
  ASSERT_TRUE(store.append({0x00500513u, 0x00b60633u}, m0).ok());
  corpus::StoreEntryMeta m1;
  m1.test_index = 7;
  m1.phase_hash = 0x1111;  // second test of the same phase
  ASSERT_TRUE(store.append({0x00000013u}, m1).ok());
  corpus::StoreEntryMeta m2;
  m2.test_index = 9;  // phase_hash 0: never replayed
  ASSERT_TRUE(store.append({0xdeadbeefu}, m2).ok());
  ASSERT_TRUE(store.flush().ok());

  const corpus::StoreStats s = corpus::collect_store_stats(store);
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.shards, 2u);  // capacity 2 forces a second shard
  EXPECT_EQ(s.program_words, 4u);
  EXPECT_EQ(s.attributed_bins, 3u);
  EXPECT_EQ(s.ctrl_new, 2u);
  EXPECT_EQ(s.with_mismatch, 1u);
  EXPECT_EQ(s.phases_distinct, 1u);
  EXPECT_EQ(s.phases_unhashed, 1u);
  EXPECT_EQ(s.phase_mult_2_3, 1u);
  EXPECT_GT(s.disk_bytes, 0u);

  corpus::StoreStats parsed;
  ASSERT_TRUE(corpus::parse_store_stats_json(store_stats_to_json(s), &parsed));
  EXPECT_EQ(parsed, s);

  // String escaping survives the trip too.
  corpus::StoreStats weird = s;
  weird.dir = "odd \"dir\"\\with\nnewline\tand\x01ctrl";
  ASSERT_TRUE(
      corpus::parse_store_stats_json(store_stats_to_json(weird), &parsed));
  EXPECT_EQ(parsed, weird);

  // Malformed input fails instead of fabricating.
  EXPECT_FALSE(corpus::parse_store_stats_json("{}", &parsed));
  EXPECT_FALSE(corpus::parse_store_stats_json("", &parsed));
  std::string truncated = store_stats_to_json(s);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(corpus::parse_store_stats_json(truncated, &parsed));

  // The human table renders from the same stats without crashing.
  const std::string table = corpus::render_store_stats(s);
  EXPECT_NE(table.find("entries:"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace chatfuzz::core

int main(int argc, char** argv) {
  // Worker re-exec: campaigns with --procs spawn /proc/self/exe (this
  // binary) in the hidden worker mode; route it before gtest runs.
  if (const auto rc = chatfuzz::dist::maybe_worker_main(argc, argv)) {
    return *rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
