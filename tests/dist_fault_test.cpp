// The dist_fault soak suite: the robustness half of the distributed
// campaign contract. A hostile network — mid-frame disconnects, truncated
// and corrupted frames, byzantine wrong-CRC replies, duplicated and delayed
// deliveries, failed handshakes — may cost retries, reconnects and
// re-issued leases, but it must never move a bit of campaign output:
// results, coverage DB, signature DB, corpus store and checkpoint bytes
// stay identical to a clean single-process run under EVERY seeded fault
// schedule. On top of the wire faults: worker auth rejection, the
// hung-vs-dead health distinction (lease timeout vs heartbeat silence), and
// SIGTERM graceful drain with bit-identical resume.
//
// Like dist_determinism_test, this binary is its own worker fleet: main()
// routes the hidden worker argv into dist::maybe_worker_main before gtest.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "core/checkpoint.h"
#include "dist/coordinator.h"
#include "dist/fault.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "dist/worker.h"

namespace chatfuzz::core {
namespace {

namespace fs = std::filesystem;

CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.num_tests = 96;
  cfg.batch_size = 32;
  cfg.checkpoint_every = 10;
  cfg.platform.max_steps = 256;
  cfg.dist.lease_tests = 4;
  return cfg;
}

/// The suite's canonical hostile network: every fault kind armed, budget
/// bounded so schedules terminate. Probabilities are per-frame in 1/1024.
FaultPlan hostile_network(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.max_faults = 24;
  plan.p_drop = 40;
  plan.p_truncate = 24;
  plan.p_corrupt = 40;
  plan.p_wrong_crc = 24;
  plan.p_duplicate = 40;
  plan.p_delay = 64;
  plan.p_handshake = 64;
  return plan;
}

std::string fresh_dir(const char* tag) {
  static int counter = 0;
  std::string dir = std::string("dist_fault_test_") + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

CampaignResult run_with(CampaignConfig cfg, std::size_t procs,
                        std::size_t workers, const std::string& dir) {
  baselines::RandomFuzzer gen(11);
  cfg.dist.num_procs = procs;
  cfg.num_workers = workers;
  cfg.checkpoint_dir = dir;
  return run_campaign(gen, cfg);
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.tests_run, b.tests_run);
  EXPECT_EQ(a.final_cov_percent, b.final_cov_percent);  // bit-exact, no tol
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_instrs, b.total_instrs);
  EXPECT_EQ(a.raw_mismatches, b.raw_mismatches);
  EXPECT_EQ(a.filtered_mismatches, b.filtered_mismatches);
  EXPECT_EQ(a.unique_mismatches, b.unique_mismatches);
  EXPECT_EQ(a.findings, b.findings);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].tests, b.curve[i].tests) << "point " << i;
    EXPECT_EQ(a.curve[i].cond_cov_percent, b.curve[i].cond_cov_percent)
        << "point " << i;
    EXPECT_EQ(a.curve[i].ctrl_states, b.curve[i].ctrl_states) << "point " << i;
  }
}

std::string file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::map<std::string, std::string> corpus_bytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& e : fs::directory_iterator(fs::path(dir) / "corpus")) {
    out[e.path().filename().string()] = file_bytes(e.path());
  }
  return out;
}

/// Byte-level identity of everything a campaign persists — the acceptance
/// criterion: coverage DB, signature DB, generator stream, corpus store.
void expect_same_persisted_state(const std::string& dir_a,
                                 const std::string& dir_b) {
  CheckpointData a, b;
  ASSERT_TRUE(load_checkpoint(dir_a, &a).ok());
  ASSERT_TRUE(load_checkpoint(dir_b, &b).ok());
  EXPECT_EQ(a.coverage_blob, b.coverage_blob) << "coverage DB bytes differ";
  EXPECT_EQ(a.detector_blob, b.detector_blob)
      << "mismatch signature DB bytes differ";
  EXPECT_EQ(a.generator_blob, b.generator_blob)
      << "generator stream state differs";
  EXPECT_EQ(corpus_bytes(dir_a), corpus_bytes(dir_b))
      << "corpus store bytes differ";
}

// ---------------------------------------------------------------------------
// FaultInjector / FaultyChannel unit tests over a socketpair.
// ---------------------------------------------------------------------------

struct RawPair {
  RawPair() {
    int sv[2];
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
    fds[0] = sv[0];
    fds[1] = sv[1];
  }
  std::unique_ptr<dist::Channel> take(int side) {
    return std::make_unique<dist::SocketChannel>(fds[side]);
  }
  int fds[2];
};

/// One-fault plan: `kind` fires on the first roll, then the budget is spent.
FaultPlan one_fault(std::uint32_t FaultPlan::*kind,
                    std::uint32_t budget = 1) {
  FaultPlan plan;
  plan.seed = 7;
  plan.max_faults = budget;
  plan.*kind = 1024;  // certain hit while the budget lasts
  return plan;
}

TEST(FaultInjector, ScheduleIsSeededAndBudgetBounded) {
  const FaultPlan plan = hostile_network(0xC0FFEE);
  dist::FaultInjector a(plan, Rng(1)), b(plan, Rng(1));
  Rng ra = a.channel_rng(3), rb = b.channel_rng(3);
  std::size_t hits = 0;
  for (int i = 0; i < 4096; ++i) {
    const auto ka = a.roll(ra, i == 0);
    const auto kb = b.roll(rb, i == 0);
    ASSERT_EQ(ka.has_value(), kb.has_value()) << "roll " << i;
    if (ka) {
      EXPECT_EQ(*ka, *kb) << "roll " << i;
      ++hits;
    }
  }
  // Same seed, same ordinal, same sequence — and the budget is a hard cap.
  EXPECT_EQ(hits, a.injected());
  EXPECT_LE(hits, plan.max_faults);
  EXPECT_GT(hits, 0u);  // ~28% per-frame odds over 4096 frames

  // A spent injector never fires again.
  const auto tail = a.roll(ra, false);
  EXPECT_EQ(a.injected(), b.injected());
  if (a.injected() == plan.max_faults) {
    EXPECT_FALSE(tail.has_value());
  }
}

TEST(FaultInjector, CorruptedPayloadIsCaughtByCrc) {
  RawPair pair;
  auto inj = std::make_shared<dist::FaultInjector>(
      one_fault(&FaultPlan::p_corrupt), Rng(1));
  auto faulty = dist::maybe_wrap_faulty(pair.take(0), inj, 0);
  dist::SocketChannel peer(pair.fds[1]);

  // The sender believes the frame left intact; the receiver's CRC disagrees.
  EXPECT_TRUE(faulty->send_frame("hello fleet", 1000).ok());
  std::string got;
  ser::Status s = peer.recv_frame(&got, 1000);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos) << s.message();
  EXPECT_EQ(inj->injected(), 1u);

  // Budget spent: the stream itself survived, the next frame is clean.
  EXPECT_TRUE(faulty->send_frame("clean now", 1000).ok());
  ASSERT_TRUE(peer.recv_frame(&got, 1000).ok());
  EXPECT_EQ(got, "clean now");
}

TEST(FaultInjector, WrongCrcKeepsPayloadIntact) {
  RawPair pair;
  auto inj = std::make_shared<dist::FaultInjector>(
      one_fault(&FaultPlan::p_wrong_crc), Rng(1));
  auto faulty = dist::maybe_wrap_faulty(pair.take(0), inj, 0);
  dist::SocketChannel peer(pair.fds[1]);
  EXPECT_TRUE(faulty->send_frame("byzantine", 1000).ok());
  std::string got;
  const ser::Status s = peer.recv_frame(&got, 1000);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos) << s.message();
}

TEST(FaultInjector, DropTearsDownMidFrame) {
  RawPair pair;
  auto inj = std::make_shared<dist::FaultInjector>(
      one_fault(&FaultPlan::p_drop), Rng(1));
  auto faulty = dist::maybe_wrap_faulty(pair.take(0), inj, 0);
  dist::SocketChannel peer(pair.fds[1]);
  const ser::Status s = faulty->send_frame("never arrives", 1000);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(faulty->valid());
  // The peer sees a partial frame, then EOF: a mid-frame disconnect.
  std::string got;
  EXPECT_FALSE(peer.recv_frame(&got, 1000).ok());
}

TEST(FaultInjector, TruncateDeliversHalfAFrame) {
  RawPair pair;
  auto inj = std::make_shared<dist::FaultInjector>(
      one_fault(&FaultPlan::p_truncate), Rng(1));
  auto faulty = dist::maybe_wrap_faulty(pair.take(0), inj, 0);
  dist::SocketChannel peer(pair.fds[1]);
  EXPECT_FALSE(faulty->send_frame("chopped in transit", 1000).ok());
  std::string got;
  const ser::Status s = peer.recv_frame(&got, 1000);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("closed"), std::string::npos) << s.message();
}

TEST(FaultInjector, DuplicateDeliversTheFrameTwice) {
  RawPair pair;
  auto inj = std::make_shared<dist::FaultInjector>(
      one_fault(&FaultPlan::p_duplicate), Rng(1));
  auto faulty = dist::maybe_wrap_faulty(pair.take(0), inj, 0);
  dist::SocketChannel peer(pair.fds[1]);
  EXPECT_TRUE(faulty->send_frame("echo", 1000).ok());
  std::string got;
  ASSERT_TRUE(peer.recv_frame(&got, 1000).ok());
  EXPECT_EQ(got, "echo");
  ASSERT_TRUE(peer.recv_frame(&got, 1000).ok());
  EXPECT_EQ(got, "echo");
}

TEST(FaultInjector, DelayedFrameStillArrivesIntact) {
  RawPair pair;
  auto inj = std::make_shared<dist::FaultInjector>(
      one_fault(&FaultPlan::p_delay), Rng(1));
  auto faulty = dist::maybe_wrap_faulty(pair.take(0), inj, 0);
  dist::SocketChannel peer(pair.fds[1]);
  EXPECT_TRUE(faulty->send_frame("slow but sure", 1000).ok());
  std::string got;
  ASSERT_TRUE(peer.recv_frame(&got, 1000).ok());
  EXPECT_EQ(got, "slow but sure");
  EXPECT_EQ(inj->injected(), 1u);
}

TEST(FaultInjector, HandshakeFaultKillsOnlyTheFirstFrame) {
  RawPair pair;
  auto inj = std::make_shared<dist::FaultInjector>(
      one_fault(&FaultPlan::p_handshake, /*budget=*/8), Rng(1));
  auto faulty = dist::maybe_wrap_faulty(pair.take(0), inj, 0);
  EXPECT_FALSE(faulty->send_frame("hello?", 1000).ok());
  EXPECT_EQ(inj->injected(), 1u);
  // The handshake probability only applies to a channel's first frame: a
  // fresh channel on the same injector fires once, then its later frames
  // run clean even with budget left.
  RawPair pair2;
  auto faulty2 = dist::maybe_wrap_faulty(pair2.take(0), inj, 1);
  dist::SocketChannel peer2(pair2.fds[1]);
  EXPECT_FALSE(faulty2->send_frame("hello again?", 1000).ok());
  EXPECT_EQ(inj->injected(), 2u);
}

TEST(FaultInjector, InboundDuplicateIsStashedAndReplayed) {
  RawPair pair;
  auto inj = std::make_shared<dist::FaultInjector>(
      one_fault(&FaultPlan::p_duplicate), Rng(1));
  auto faulty = dist::maybe_wrap_faulty(pair.take(0), inj, 0);
  dist::SocketChannel peer(pair.fds[1]);
  EXPECT_TRUE(peer.send_frame("one wire frame", 1000).ok());
  std::string got;
  ASSERT_TRUE(faulty->recv_frame(&got, 1000).ok());
  EXPECT_EQ(got, "one wire frame");
  // The duplicate never crossed the wire — it replays from the stash.
  ASSERT_TRUE(faulty->recv_frame(&got, 1000).ok());
  EXPECT_EQ(got, "one wire frame");
}

TEST(FaultInjector, PlanDisarmedIsAPassThrough) {
  RawPair pair;
  FaultPlan off;  // seed 0: any() is false regardless of probabilities
  off.p_drop = 1024;
  auto inj = std::make_shared<dist::FaultInjector>(off, Rng(1));
  auto chan = dist::maybe_wrap_faulty(pair.take(0), inj, 0);
  dist::SocketChannel peer(pair.fds[1]);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(chan->send_frame("clean", 1000).ok());
    std::string got;
    ASSERT_TRUE(peer.recv_frame(&got, 1000).ok());
  }
  EXPECT_EQ(inj->injected(), 0u);
}

// ---------------------------------------------------------------------------
// Campaign-level soak: fault schedules never move a bit of output.
// ---------------------------------------------------------------------------

TEST(DistFault, TcpFaultMatrixIsBitIdenticalToCleanRun) {
  // The acceptance matrix: a TCP fleet under the full hostile-network plan,
  // procs x workers, every cell byte-identical to a clean 1-process run.
  const CampaignConfig clean = small_campaign();
  const std::string base_dir = fresh_dir("clean");
  const CampaignResult base = run_with(clean, 1, 1, base_dir);

  const struct { std::size_t procs, workers; } grid[] = {
      {1, 1}, {1, 4}, {2, 1}, {2, 4}, {4, 1}, {4, 4}};
  for (const auto& g : grid) {
    CampaignConfig cfg = small_campaign();
    cfg.dist.listen = "127.0.0.1:0";
    cfg.dist.fault = hostile_network(0xC0FFEE + g.procs * 10 + g.workers);
    cfg.dist.reconnect_wait_ms = 20'000;
    const std::string dir = fresh_dir("cell");
    SCOPED_TRACE("procs=" + std::to_string(g.procs) +
                 " workers=" + std::to_string(g.workers));
    const CampaignResult r = run_with(cfg, g.procs, g.workers, dir);
    expect_identical(base, r);
    expect_same_persisted_state(base_dir, dir);
    fs::remove_all(dir);
  }
  fs::remove_all(base_dir);
}

TEST(DistFault, SocketpairFaultsAreEquallyTransparent) {
  // Same property on the spawn transport, where a dropped channel kills the
  // worker for good (no redial): survivors absorb the re-issued leases.
  // Handshake faults stay off — a socketpair worker that loses its first
  // exchange is lost forever — and the budget stays below the fleet size
  // (worst case every fault is channel-fatal), so at least one worker always
  // survives to drain the re-issued leases. Wiping the whole fleet would
  // (correctly) fail the campaign rather than degrade it.
  const CampaignConfig clean = small_campaign();
  const std::string da = fresh_dir("sp_clean"), db = fresh_dir("sp_fault");
  const CampaignResult base = run_with(clean, 1, 1, da);
  CampaignConfig cfg = small_campaign();
  cfg.dist.fault = hostile_network(0xF00D);
  cfg.dist.fault.p_handshake = 0;
  cfg.dist.fault.max_faults = 3;
  const CampaignResult r = run_with(cfg, 4, 2, db);
  expect_identical(base, r);
  expect_same_persisted_state(da, db);
  fs::remove_all(da);
  fs::remove_all(db);
}

TEST(DistFault, FaultsActuallyFireAndLeasesReissue) {
  // Coordinator-level cell where the counters are visible: an aggressive
  // schedule must actually inject, cost peers, re-issue leases — and still
  // fill every artifact slot with the exact clean-run values.
  CampaignConfig cfg = small_campaign();
  cfg.dist.listen = "127.0.0.1:0";
  cfg.dist.num_procs = 2;
  cfg.num_workers = 1;
  cfg.dist.fault = hostile_network(0xBADCA8);
  cfg.dist.fault.p_drop = 200;
  cfg.dist.fault.p_corrupt = 200;
  cfg.dist.fault.max_faults = 16;
  baselines::RandomFuzzer gen(11);
  const std::vector<Program> batch = gen.next_batch(32);

  std::vector<TestArtifact> faulted(batch.size());
  dist::Coordinator coord(cfg, /*use_suite=*/false);
  coord.run_batch(batch, 0, faulted);
  EXPECT_GT(coord.faults_injected(), 0u);

  CampaignConfig clean_cfg = small_campaign();
  clean_cfg.dist.num_procs = 2;
  clean_cfg.num_workers = 1;
  std::vector<TestArtifact> clean(batch.size());
  dist::Coordinator ref(clean_cfg, false);
  ref.run_batch(batch, 0, clean);

  ASSERT_EQ(clean.size(), faulted.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    SCOPED_TRACE("test " + std::to_string(i));
    EXPECT_EQ(clean[i].cycles, faulted[i].cycles);
    EXPECT_EQ(clean[i].steps, faulted[i].steps);
    EXPECT_EQ(clean[i].ctrl_states, faulted[i].ctrl_states);
    ASSERT_EQ(clean[i].cond_bins.size(), faulted[i].cond_bins.size());
    for (std::size_t j = 0; j < clean[i].cond_bins.size(); ++j) {
      EXPECT_EQ(clean[i].cond_bins[j].bin, faulted[i].cond_bins[j].bin);
      EXPECT_EQ(clean[i].cond_bins[j].hits, faulted[i].cond_bins[j].hits);
    }
    EXPECT_EQ(clean[i].report.raw_count, faulted[i].report.raw_count);
  }
}

// ---------------------------------------------------------------------------
// Handshake auth, health model, graceful drain.
// ---------------------------------------------------------------------------

/// Read "host:port\n" written by the coordinator's TCP transport.
std::string read_port_file(const std::string& path) {
  std::ifstream in(path);
  std::string hostport;
  in >> hostport;
  return hostport;
}

TEST(DistFault, WorkerWithBadTokenIsRejectedAndStopsRedialing) {
  CampaignConfig cfg = small_campaign();
  cfg.dist.listen = "127.0.0.1:0";
  cfg.dist.token = "fleet-secret";
  cfg.dist.num_procs = 1;
  cfg.num_workers = 1;
  cfg.dist.port_file = fresh_dir("port") + ".txt";
  dist::Coordinator coord(cfg, false);
  const std::string hostport = read_port_file(cfg.dist.port_file);
  ASSERT_FALSE(hostport.empty());

  // An impostor dials in while the batch runs. kReject must make it exit 2
  // (fatal, stop redialing) instead of burning its transient-retry budget.
  const pid_t impostor = ::fork();
  ASSERT_GE(impostor, 0);
  if (impostor == 0) {
    dist::WorkerOptions opts;
    opts.token = "wrong-secret";
    opts.max_retries = 100;  // irrelevant: rejection must not retry
    std::_Exit(dist::worker_connect_main(hostport, opts));
  }

  baselines::RandomFuzzer gen(11);
  const std::vector<Program> batch = gen.next_batch(64);
  std::vector<TestArtifact> arts(batch.size());
  coord.run_batch(batch, 0, arts);

  int status = 0;
  ASSERT_EQ(::waitpid(impostor, &status, 0), impostor);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
  EXPECT_GE(coord.stats().peers_rejected, 1u);
  EXPECT_EQ(coord.stats().workers_lost, 0u);
  for (std::size_t i = 0; i < arts.size(); ++i) {
    EXPECT_GT(arts[i].steps, 0u) << "artifact slot " << i << " never filled";
  }
  fs::remove(cfg.dist.port_file);
}

TEST(DistFault, HungWorkerIsNoProgressNotNoHeartbeat) {
  // debug_hang wedges the worker's lease loop but its heartbeat thread
  // keeps beating: the health model must classify it as HUNG (lease
  // timeout), never as a dead host (heartbeat silence).
  CampaignConfig cfg = small_campaign();
  cfg.dist.num_procs = 2;
  cfg.num_workers = 1;
  cfg.dist.debug_hang_worker = 0;
  cfg.dist.lease_timeout_ms = 1500;
  cfg.dist.heartbeat_ms = 100;
  baselines::RandomFuzzer gen(11);
  const std::vector<Program> batch = gen.next_batch(32);
  std::vector<TestArtifact> arts(batch.size());
  dist::Coordinator coord(cfg, false);
  coord.run_batch(batch, 0, arts);
  EXPECT_EQ(coord.stats().lost_no_progress, 1u);
  EXPECT_EQ(coord.stats().lost_no_heartbeat, 0u);
  EXPECT_GT(coord.stats().heartbeats_seen, 0u);
  EXPECT_GE(coord.stats().leases_reissued, 1u);
}

TEST(DistFault, SilentPeerIsNoHeartbeatNotNoProgress) {
  // The dead-host half: a peer that handshakes and then goes silent (no
  // heartbeats, socket open). Lease timeout is OFF, so only heartbeat
  // silence can catch it.
  CampaignConfig cfg = small_campaign();
  cfg.dist.listen = "127.0.0.1:0";
  cfg.dist.num_procs = 1;
  cfg.num_workers = 1;
  cfg.dist.lease_timeout_ms = 0;
  cfg.dist.heartbeat_ms = 100;
  cfg.dist.heartbeat_timeout_ms = 600;
  cfg.dist.port_file = fresh_dir("port") + ".txt";
  dist::Coordinator coord(cfg, false);
  const std::string hostport = read_port_file(cfg.dist.port_file);
  ASSERT_FALSE(hostport.empty());

  const pid_t silent = ::fork();
  ASSERT_GE(silent, 0);
  if (silent == 0) {
    // A worker that dials, says a valid hello, then freezes solid — the
    // TCP connection stays up, nothing ever flows again.
    const auto hp = dist::parse_hostport(hostport);
    std::string err;
    const int fd = dist::tcp_connect(*hp, 5'000, &err);
    if (fd < 0) std::_Exit(3);
    dist::SocketChannel chan(fd);
    dist::HelloMsg hello;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    if (!chan.send_frame(dist::encode_hello(hello), 5'000).ok()) {
      std::_Exit(3);
    }
    for (;;) ::pause();
  }

  baselines::RandomFuzzer gen(11);
  const std::vector<Program> batch = gen.next_batch(64);
  std::vector<TestArtifact> arts(batch.size());
  coord.run_batch(batch, 0, arts);

  EXPECT_GE(coord.stats().lost_no_heartbeat, 1u);
  EXPECT_EQ(coord.stats().lost_no_progress, 0u);
  for (std::size_t i = 0; i < arts.size(); ++i) {
    EXPECT_GT(arts[i].steps, 0u) << "artifact slot " << i << " never filled";
  }
  ::kill(silent, SIGKILL);
  int status = 0;
  ::waitpid(silent, &status, 0);
  fs::remove(cfg.dist.port_file);
}

/// Every child pid of this process, per /proc (empty when fully reaped).
std::string live_children() {
  std::string out;
  const std::string base =
      "/proc/self/task/" + std::to_string(::getpid()) + "/children";
  std::ifstream in(base);
  std::getline(in, out);
  while (!out.empty() && (out.back() == ' ' || out.back() == '\n')) {
    out.pop_back();
  }
  return out;
}

TEST(DistFault, SigtermDrainsAtLeaseBoundaryAndResumesBitIdentically) {
  // S3: the graceful-drain contract end to end, through the real signal
  // path. SIGTERM mid-campaign -> finish the batch, checkpoint, exit as
  // paused with no orphaned workers; resume (different topology) stitches
  // a byte-identical campaign.
  const CampaignConfig cfg = small_campaign();
  const std::string da = fresh_dir("drain_a"), db = fresh_dir("drain_b");
  const CampaignResult uninterrupted = run_with(cfg, 1, 1, da);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = [](int) { request_drain(); };
  struct sigaction old_sa;
  ASSERT_EQ(0, ::sigaction(SIGTERM, &sa, &old_sa));
  clear_drain();

  {
    baselines::RandomFuzzer gen(11);
    CampaignConfig first = cfg;
    first.dist.num_procs = 2;
    first.num_workers = 1;
    first.dist.listen = "127.0.0.1:0";
    first.checkpoint_dir = db;
    bool raised = false;
    const CampaignResult partial =
        run_campaign(gen, first, [&](const CampaignPoint&) {
          if (!raised) {
            raised = true;
            ::raise(SIGTERM);
          }
        });
    EXPECT_TRUE(raised);
    EXPECT_FALSE(partial.completed);
    EXPECT_LT(partial.tests_run, cfg.num_tests);
    EXPECT_GT(partial.tests_run, 0u);
    // Batch boundaries are lease boundaries: the pause point is a whole
    // number of batches, so the checkpoint cut is lease-aligned.
    EXPECT_EQ(partial.tests_run % cfg.batch_size, 0u);
  }
  ASSERT_EQ(0, ::sigaction(SIGTERM, &old_sa, nullptr));
  // The flag is sticky by design (a drain is a process-level decision, and
  // the CLI process exits right after); the resume below must clear it.
  EXPECT_TRUE(drain_requested());
  clear_drain();
  EXPECT_EQ(live_children(), "") << "drained fleet left orphaned workers";
  ASSERT_TRUE(fs::exists(fs::path(db) / "campaign.ckpt"));

  baselines::RandomFuzzer gen2(11);  // shell; state restores from disk
  ResumeOptions opts;
  opts.num_workers = 2;
  opts.dist.num_procs = 2;
  opts.dist.lease_tests = cfg.dist.lease_tests;
  const CampaignResult resumed = resume_campaign(gen2, db, opts);
  EXPECT_TRUE(resumed.completed);
  expect_identical(uninterrupted, resumed);
  expect_same_persisted_state(da, db);
  fs::remove_all(da);
  fs::remove_all(db);
}

TEST(DistFault, DrainRequestedBetweenCampaignsStopsAfterFirstBatch) {
  // The flag is process-wide and NOT cleared on entry: a drain requested
  // before the campaign starts pauses it at the first batch boundary.
  request_drain();
  CampaignConfig cfg = small_campaign();
  const std::string dir = fresh_dir("predrain");
  baselines::RandomFuzzer gen(11);
  cfg.dist.num_procs = 2;
  cfg.num_workers = 1;
  cfg.dist.listen = "127.0.0.1:0";
  cfg.checkpoint_dir = dir;
  const CampaignResult r = run_campaign(gen, cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.tests_run, cfg.batch_size);
  clear_drain();  // sticky by design; reset for whatever test runs next
  EXPECT_EQ(live_children(), "");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace chatfuzz::core

int main(int argc, char** argv) {
  // Worker re-exec: the coordinator spawns /proc/self/exe (this binary)
  // with a hidden worker argv; serve leases instead of running the suite.
  if (const auto rc = chatfuzz::dist::maybe_worker_main(argc, argv)) {
    return *rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
