// Out-of-order backend suite: rename/ROB/store-queue invariants on directed
// and randomized programs, a 1000-program lockstep property test against the
// golden ISS (zero mismatches with the ooo_* bug injections off), coverage
// assertions that the memory-ordering stress kernels reach the ooo.lsu.* /
// ooo.squash.* points on the bug-free core, and per-class detection proofs —
// each injected OOO bug (broken store-to-load forwarding, speculative store
// drained before commit, missing squash of in-flight loads) is caught both
// by a directed kernel and by generator-produced tests.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/generator.h"
#include "coverage/cover.h"
#include "isasim/sim.h"
#include "mismatch/detect.h"
#include "mismatch/lockstep.h"
#include "riscv/builder.h"
#include "riscv/csr.h"
#include "riscv/encode.h"
#include "rtlsim/dut.h"
#include "rtlsim/ooo_core.h"

namespace chatfuzz::rtl {
namespace {

using corpus::Program;
using riscv::Opcode;

CoreConfig clean_ooo() {
  CoreConfig c = CoreConfig::ooo();
  c.bugs = BugInjections::none();
  return c;
}

/// Tiny structures: forces ROB-full, SQ-full and free-list stalls so the
/// structural backpressure paths get exercised, not just the happy path.
CoreConfig tiny_ooo() {
  CoreConfig c = clean_ooo();
  c.rob_size = 4;
  c.phys_regs = 34;  // 2 spare pregs < rob_size: the free list runs dry first
  c.sq_size = 2;
  return c;
}

/// Stream the OOO DUT against the golden ISS; returns the mismatch report.
mismatch::Report lockstep(OooCore& dut, sim::IsaSim& golden,
                          const Program& prog) {
  mismatch::MismatchDetector det;
  det.install_default_filters();
  mismatch::LockstepComparator cmp;
  mismatch::Report rep;
  golden.reset(prog);
  cmp.begin(det, golden, rep);
  dut.set_sink(&cmp);
  dut.reset(prog);
  dut.run();
  cmp.finish();
  dut.set_sink(nullptr);
  return rep;
}

std::uint64_t true_hits(const cov::CoverageDB& db, const std::string& name) {
  for (std::size_t i = 0; i < db.num_points(); ++i) {
    if (db.point_name(static_cast<cov::PointId>(i)) == name) {
      return db.bin_hits(2 * i + 1);
    }
  }
  ADD_FAILURE() << "point not registered: " << name;
  return 0;
}

// Directed kernels. x4/x6 start as RAM pointers (even registers), x10/x11
// are div operands; the div's 16-cycle latency keeps stores/branches
// unresolved while younger memory ops are already in the window.

Program store_forward_kernel() {
  riscv::ProgramBuilder pb;
  pb.div(5, 10, 10);  // = 1, resolves late
  pb.sd(4, 5, 0);     // data arrives with the div
  pb.ld(6, 4, 0);     // must forward from the queued store
  pb.wfi();
  return pb.seal();
}

Program pair_alias_kernel() {
  riscv::ProgramBuilder pb;
  // The div blocks in-order commit (16 cycles) while the narrow stores —
  // whose data is ready immediately — resolve into the queue and the wider
  // load issues under them, merging forwarded bytes with memory bytes.
  pb.div(5, 10, 10);
  pb.raw(riscv::enc_s(Opcode::kSb, 4, 6, 1));  // byte 1
  pb.raw(riscv::enc_s(Opcode::kSh, 4, 6, 4));  // bytes 4-5
  pb.ld(7, 4, 0);  // 8-byte load: forwarded bytes merged with memory bytes
  pb.add(8, 5, 7);
  pb.wfi();
  return pb.seal();
}

Program wrong_path_store_kernel() {
  riscv::ProgramBuilder pb;
  pb.div(5, 10, 11);                            // branch condition, late
  pb.raw(riscv::enc_b(Opcode::kBeq, 5, 5, 12));  // always taken, cold BTB
  pb.sd(4, 6, 0);  // wrong path: data ready immediately -> resolves early
  pb.ld(7, 4, 0);  // wrong path: forwards, still in flight at the squash
  pb.ld(8, 4, 0);  // correct path: architectural read of the same address
  pb.wfi();
  return pb.seal();
}

Program zombie_load_kernel() {
  riscv::ProgramBuilder pb;
  pb.div(5, 10, 11);                            // branch condition, late
  pb.raw(riscv::enc_b(Opcode::kBeq, 5, 5, 8));   // always taken, skips the ld
  pb.ld(6, 4, 0);      // wrong path: D$ miss keeps it in flight past the squash
  pb.addi(7, 0, 42);   // correct path: reuses the load's freed register
  pb.div(9, 10, 10);   // latency filler so the consumer executes late
  pb.add(8, 9, 7);     // reads x7 after the zombie's write would land
  pb.sd(4, 8, 8);
  pb.wfi();
  return pb.seal();
}

TEST(OooInvariants, DirectedKernelsCleanAgainstGolden) {
  const sim::Platform plat{.max_steps = 256};
  cov::CoverageDB db;
  OooCore dut(clean_ooo(), db, plat);
  sim::IsaSim golden(plat);
  for (const Program& prog :
       {store_forward_kernel(), pair_alias_kernel(), wrong_path_store_kernel(),
        zombie_load_kernel()}) {
    const mismatch::Report rep = lockstep(dut, golden, prog);
    EXPECT_EQ(rep.raw_count, 0u);
    EXPECT_TRUE(dut.rename_invariants_ok());
  }
}

TEST(OooInvariants, RenamePartitionHoldsAcrossRandomPrograms) {
  const sim::Platform plat{.max_steps = 256};
  corpus::CorpusGenerator gen({}, 91);
  for (const CoreConfig& cfg : {clean_ooo(), tiny_ooo()}) {
    cov::CoverageDB db;
    OooCore dut(cfg, db, plat);
    for (int p = 0; p < 100; ++p) {
      dut.reset(gen.function());
      dut.run();
      ASSERT_TRUE(dut.rename_invariants_ok()) << "program " << p;
      EXPECT_LE(dut.sq_occupancy(), static_cast<std::size_t>(cfg.sq_size));
      EXPECT_LE(dut.rob_occupancy(), static_cast<std::size_t>(cfg.rob_size));
    }
  }
}

TEST(OooInvariants, RunsAreDeterministic) {
  const sim::Platform plat{.max_steps = 256};
  corpus::CorpusGenerator gen({}, 5150);
  for (int p = 0; p < 20; ++p) {
    const Program prog = gen.function();
    cov::CoverageDB db1, db2;
    OooCore a(CoreConfig::ooo(), db1, plat);  // shipped config, bugs on
    OooCore b(CoreConfig::ooo(), db2, plat);
    a.reset(prog);
    const sim::RunResult ra = a.run();
    b.reset(prog);
    const sim::RunResult rb = b.run();
    ASSERT_EQ(ra.trace.size(), rb.trace.size());
    ASSERT_EQ(ra.stop, rb.stop);
    ASSERT_EQ(ra.final_pc, rb.final_pc);
    for (std::size_t i = 0; i < ra.trace.size(); ++i) {
      ASSERT_EQ(ra.trace[i].to_string(), rb.trace[i].to_string())
          << "record " << i;
    }
  }
}

TEST(OooLockstep, PropertyThousandProgramsZeroMismatches) {
  // The headline property: with the ooo_* injections off, the out-of-order
  // core's commit stream is architecturally indistinguishable from the
  // golden ISS across 1000 generated programs (every idiom: ALU, memory,
  // branches, mul/div, CSR, AMO/LR-SC, privilege transitions, Sv39).
  const sim::Platform plat{.max_steps = 256};
  cov::CoverageDB db;
  OooCore dut(clean_ooo(), db, plat);
  sim::IsaSim golden(plat);
  corpus::CorpusGenerator gen({}, 1234);
  for (int p = 0; p < 1000; ++p) {
    const Program prog = gen.function();
    const mismatch::Report rep = lockstep(dut, golden, prog);
    ASSERT_EQ(rep.raw_count, 0u)
        << "program " << p << ": "
        << (rep.mismatches.empty() ? std::string("(filtered)")
                                   : rep.mismatches[0].signature);
    ASSERT_TRUE(dut.rename_invariants_ok()) << "program " << p;
  }
  // The sweep must have genuinely exercised the OOO machinery.
  EXPECT_GT(true_hits(db, "ooo.rename.alloc"), 0u);
  EXPECT_GT(true_hits(db, "ooo.rob.commit2"), 0u);
  EXPECT_GT(true_hits(db, "ooo.lsu.fwd"), 0u);
  EXPECT_GT(true_hits(db, "ooo.squash.branch"), 0u);
}

TEST(OooLockstep, TinyStructuresStillMatchGolden) {
  // Structural stalls (ROB full, SQ full, free-list dry) must only slow the
  // machine down, never change what it commits.
  const sim::Platform plat{.max_steps = 256};
  cov::CoverageDB db;
  OooCore dut(tiny_ooo(), db, plat);
  sim::IsaSim golden(plat);
  corpus::CorpusGenerator gen({}, 777);
  for (int p = 0; p < 200; ++p) {
    const mismatch::Report rep = lockstep(dut, golden, gen.function());
    ASSERT_EQ(rep.raw_count, 0u) << "program " << p;
  }
  EXPECT_GT(true_hits(db, "ooo.rob.full"), 0u);
  EXPECT_GT(true_hits(db, "ooo.lsu.sq_full"), 0u);
  EXPECT_GT(true_hits(db, "ooo.rename.stall_freelist"), 0u);
}

TEST(OooCoverage, StressKernelsReachLsuPoints) {
  const sim::Platform plat{.max_steps = 256};
  {
    cov::CoverageDB db;
    OooCore dut(clean_ooo(), db, plat);
    dut.reset(store_forward_kernel());
    dut.run();
    EXPECT_GT(true_hits(db, "ooo.lsu.fwd"), 0u);
    EXPECT_GT(true_hits(db, "ooo.lsu.wait_store"), 0u);
  }
  {
    cov::CoverageDB db;
    OooCore dut(clean_ooo(), db, plat);
    dut.reset(pair_alias_kernel());
    dut.run();
    EXPECT_GT(true_hits(db, "ooo.lsu.alias"), 0u);
  }
  {
    cov::CoverageDB db;
    OooCore dut(clean_ooo(), db, plat);
    dut.reset(wrong_path_store_kernel());
    dut.run();
    EXPECT_GT(true_hits(db, "ooo.squash.branch"), 0u);
    EXPECT_GT(true_hits(db, "ooo.squash.store"), 0u);
    EXPECT_GT(true_hits(db, "ooo.squash.inflight_load"), 0u);
  }
}

TEST(OooCoverage, GeneratorLsuIdiomReachesPoints) {
  // The w_lsu corpus idiom must reach the same points the directed kernels
  // do — that is what makes the fuzzer able to find the ooo bug classes.
  const sim::Platform plat{.max_steps = 256};
  cov::CoverageDB db;
  OooCore dut(clean_ooo(), db, plat);
  corpus::CorpusConfig cc;
  cc.w_lsu = 50.0;  // isolate the idiom
  corpus::CorpusGenerator gen(cc, 31337);
  for (int p = 0; p < 60; ++p) {
    dut.reset(gen.function());
    dut.run();
  }
  EXPECT_GT(true_hits(db, "ooo.lsu.fwd"), 0u);
  EXPECT_GT(true_hits(db, "ooo.lsu.alias"), 0u);
  EXPECT_GT(true_hits(db, "ooo.lsu.wait_store"), 0u);
  EXPECT_GT(true_hits(db, "ooo.squash.store"), 0u);
}

// ---- per-bug-class detection -----------------------------------------------

CoreConfig one_bug(int which) {
  CoreConfig c = clean_ooo();
  if (which == 0) c.bugs.ooo_broken_fwd = true;
  if (which == 1) c.bugs.ooo_early_store_drain = true;
  if (which == 2) c.bugs.ooo_missing_squash = true;
  return c;
}

TEST(OooBugDetection, DirectedKernelCatchesEachClass) {
  const sim::Platform plat{.max_steps = 256};
  const Program kernels[] = {store_forward_kernel(), wrong_path_store_kernel(),
                             zombie_load_kernel()};
  for (int bug = 0; bug < 3; ++bug) {
    cov::CoverageDB db;
    OooCore dut(one_bug(bug), db, plat);
    sim::IsaSim golden(plat);
    const mismatch::Report rep = lockstep(dut, golden, kernels[bug]);
    EXPECT_GT(rep.raw_count, 0u) << "bug class " << bug << " undetected";
  }
}

TEST(OooBugDetection, GeneratedTestsCatchEachClass) {
  // The acceptance bar from the fuzzing side: every injected OOO bug class
  // must fall to tests the corpus generator produces on its own.
  const sim::Platform plat{.max_steps = 256};
  corpus::CorpusConfig cc;
  cc.w_lsu = 8.0;
  for (int bug = 0; bug < 3; ++bug) {
    cov::CoverageDB db;
    OooCore dut(one_bug(bug), db, plat);
    sim::IsaSim golden(plat);
    corpus::CorpusGenerator gen(cc, 4242);
    int detected_at = -1;
    for (int p = 0; p < 600 && detected_at < 0; ++p) {
      if (lockstep(dut, golden, gen.function()).raw_count > 0) {
        detected_at = p;
      }
    }
    EXPECT_GE(detected_at, 0) << "bug class " << bug
                              << " not detected in 600 generated tests";
  }
}

}  // namespace
}  // namespace chatfuzz::rtl
