// Predecode-cache semantics (riscv/predecode.h): cached decodes must be
// indistinguishable from calling riscv::decode() on the bytes currently in
// memory — across refills, collisions, stores over code, fence.i, and
// external memory writes.
#include <vector>

#include <gtest/gtest.h>

#include "isasim/sim.h"
#include "riscv/builder.h"
#include "riscv/decode.h"
#include "riscv/encode.h"
#include "riscv/predecode.h"
#include "util/rng.h"

using chatfuzz::Rng;
using chatfuzz::riscv::Decoded;
using chatfuzz::riscv::Opcode;
using chatfuzz::riscv::PredecodeCache;
using chatfuzz::riscv::ProgramBuilder;
using chatfuzz::sim::IsaSim;

namespace {

void expect_same_decode(const Decoded& a, const Decoded& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.rd, b.rd);
  EXPECT_EQ(a.rs1, b.rs1);
  EXPECT_EQ(a.rs2, b.rs2);
  EXPECT_EQ(a.imm, b.imm);
  EXPECT_EQ(a.csr, b.csr);
  EXPECT_EQ(a.raw, b.raw);
}

}  // namespace

TEST(PredecodeCache, LookupMatchesDecodeOnRandomWords) {
  PredecodeCache cache;
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const auto raw = static_cast<std::uint32_t>(rng.next_u64());
    const std::uint64_t pc = 0x8000'0000ull + (rng.next_u64() % 4096) * 4;
    expect_same_decode(cache.lookup(pc, raw), chatfuzz::riscv::decode(raw));
  }
}

TEST(PredecodeCache, HitServesCachedEntryAndTagChecksWord) {
  PredecodeCache cache;
  const std::uint64_t pc = 0x8000'0100ull;
  const std::uint32_t addi = chatfuzz::riscv::enc_i(Opcode::kAddi, 1, 2, 42);
  const std::uint32_t xori = chatfuzz::riscv::enc_i(Opcode::kXori, 3, 4, -1);
  EXPECT_EQ(cache.lookup(pc, addi).op, Opcode::kAddi);
  const PredecodeCache::Entry* e = cache.find(pc);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->raw, addi);
  EXPECT_EQ(e->d.op, Opcode::kAddi);
  // Same pc, different bytes (stale-I$-style fetch): must re-decode.
  EXPECT_EQ(cache.lookup(pc, xori).op, Opcode::kXori);
}

TEST(PredecodeCache, DirectMappedCollisionEvicts) {
  PredecodeCache cache(4);  // tiny: pcs 16 bytes apart collide
  const std::uint64_t pc_a = 0x8000'0000ull;
  const std::uint64_t pc_b = pc_a + 4 * 4;  // same index, different tag
  const std::uint32_t addi = chatfuzz::riscv::enc_i(Opcode::kAddi, 1, 0, 1);
  const std::uint32_t andi = chatfuzz::riscv::enc_i(Opcode::kAndi, 2, 0, 3);
  cache.insert(pc_a, addi);
  ASSERT_NE(cache.find(pc_a), nullptr);
  cache.insert(pc_b, andi);
  EXPECT_EQ(cache.find(pc_a), nullptr) << "collision must evict";
  const PredecodeCache::Entry* e = cache.find(pc_b);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->d.op, Opcode::kAndi);
}

TEST(PredecodeCache, StoreInvalidatesOverlappingWords) {
  PredecodeCache cache;
  const std::uint64_t pc = 0x8000'0200ull;
  cache.insert(pc, chatfuzz::riscv::enc_i(Opcode::kAddi, 1, 0, 1));
  cache.insert(pc + 4, chatfuzz::riscv::enc_i(Opcode::kAddi, 2, 0, 2));
  // Unaligned 4-byte store straddling both words.
  cache.invalidate(pc + 2, 4);
  EXPECT_EQ(cache.find(pc), nullptr);
  EXPECT_EQ(cache.find(pc + 4), nullptr);
  // A byte store touches exactly one word.
  cache.insert(pc, chatfuzz::riscv::enc_i(Opcode::kAddi, 1, 0, 1));
  cache.insert(pc + 4, chatfuzz::riscv::enc_i(Opcode::kAddi, 2, 0, 2));
  cache.invalidate(pc + 5, 1);
  EXPECT_NE(cache.find(pc), nullptr);
  EXPECT_EQ(cache.find(pc + 4), nullptr);
}

TEST(PredecodeCache, InvalidateAtAddressSpaceTopDoesNotWrap) {
  // The simulators' in_ram check wraps at 2^64, so stores to the top few
  // bytes of the address space do reach the invalidation path. The word
  // walk must terminate (regression: a `pc <= last` loop wrapped around
  // and spun for ~2^62 iterations) and still clear the covered words.
  PredecodeCache cache;
  const std::uint64_t top = ~7ull;  // 0xFFFF...FFF8
  cache.insert(top, chatfuzz::riscv::enc_i(Opcode::kAddi, 1, 0, 1));
  cache.insert(top + 4, chatfuzz::riscv::enc_i(Opcode::kAddi, 2, 0, 2));
  cache.invalidate(top, 8);
  EXPECT_EQ(cache.find(top), nullptr);
  EXPECT_EQ(cache.find(top + 4), nullptr);
}

TEST(PredecodeCache, FlushDropsEverything) {
  PredecodeCache cache;
  cache.insert(0x8000'0000ull, chatfuzz::riscv::enc_i(Opcode::kAddi, 1, 0, 1));
  cache.flush();
  EXPECT_EQ(cache.find(0x8000'0000ull), nullptr);
}

// ---- IsaSim integration ----------------------------------------------------

TEST(PredecodeIsaSim, SelfModifyingStoreIsHonoredOnNextFetch) {
  // Execute `addi x5, x0, 1` once (so its decode is cached), patch it in
  // place to `addi x5, x0, 99` with a store, loop back and execute the same
  // pc again. A predecode cache without store invalidation would replay the
  // stale decode and leave x5 == 1.
  const std::uint64_t base = 0x8000'0000ull;
  const std::uint32_t patched =
      chatfuzz::riscv::enc_i(Opcode::kAddi, 5, 0, 99);
  ProgramBuilder b(base);
  b.li(1, static_cast<std::int32_t>(patched));  // x1 = new instruction word
  const std::uint64_t anchor = b.pc();
  b.auipc(2, 0);                                // x2 = anchor
  b.addi(10, 0, 0);                             // x10 = pass counter
  const std::uint64_t target = b.pc();
  b.label("again");
  b.raw(chatfuzz::riscv::enc_i(Opcode::kAddi, 5, 0, 1));  // the target slot
  b.addi(10, 10, 1);
  b.addi(11, 0, 2);
  b.branch_to(Opcode::kBeq, 10, 11, "done");
  b.sw(2, 1, static_cast<std::int32_t>(target - anchor));  // patch the slot
  b.jal_to(0, "again");
  b.label("done");
  b.raw(chatfuzz::riscv::enc_sys(Opcode::kWfi));
  const std::vector<std::uint32_t> prog = b.seal();

  IsaSim sim;
  for (int run = 0; run < 2; ++run) {
    sim.reset(prog);
    sim.run();
    EXPECT_EQ(sim.reg(5), 99u) << "run " << run;
    EXPECT_EQ(sim.reg(10), 2u) << "run " << run;
  }
}

TEST(PredecodeIsaSim, RepeatedResetsReplayIdentically) {
  // A tight loop executes the same pcs thousands of times (maximum cache
  // reuse); two fresh resets must produce identical traces.
  ProgramBuilder b;
  b.li(1, 0);
  b.li(2, 400);
  b.label("loop");
  b.addi(1, 1, 1);
  b.branch_to(Opcode::kBne, 1, 2, "loop");
  b.raw(chatfuzz::riscv::enc_sys(Opcode::kWfi));
  const std::vector<std::uint32_t> prog = b.seal();

  IsaSim sim;
  sim.reset(prog);
  const auto r1 = sim.run();
  sim.reset(prog);
  const auto r2 = sim.run();
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  EXPECT_GT(r1.trace.size(), 800u);
  for (std::size_t i = 0; i < r1.trace.size(); ++i) {
    EXPECT_EQ(r1.trace[i].pc, r2.trace[i].pc);
    EXPECT_EQ(r1.trace[i].instr, r2.trace[i].instr);
    EXPECT_EQ(r1.trace[i].rd_value, r2.trace[i].rd_value);
  }
}

// ---- Superblock span invalidation ------------------------------------------
//
// These drive IsaSim with superblock dispatch (default-on): straight-line
// runs of ALU ops are cached as decoded spans guarded by per-page store
// generations, and the tests check the guards actually retire spans when
// code under them changes.

TEST(SuperblockIsaSim, StoreIntoMiddleOfCachedSpanIsHonored) {
  // A straight-line run forms one cached span; pass 1 executes it (and
  // caches it), then a store patches an instruction in the MIDDLE of the
  // span. Pass 2 must re-decode, not replay the stale slot.
  const std::uint64_t base = 0x8000'0000ull;
  const std::uint32_t patched =
      chatfuzz::riscv::enc_i(Opcode::kAddi, 5, 0, 99);
  ProgramBuilder b(base);
  b.li(1, static_cast<std::int32_t>(patched));
  const std::uint64_t anchor = b.pc();
  b.auipc(2, 0);
  b.addi(10, 0, 0);  // pass counter
  b.addi(11, 0, 2);
  b.label("again");
  for (int i = 0; i < 6; ++i) b.addi(6, 6, 1);  // span body before the slot
  const std::uint64_t slot = b.pc();
  b.raw(chatfuzz::riscv::enc_i(Opcode::kAddi, 5, 0, 1));  // mid-span slot
  for (int i = 0; i < 6; ++i) b.addi(7, 7, 1);  // span body after the slot
  b.addi(10, 10, 1);
  b.branch_to(Opcode::kBeq, 10, 11, "done");
  b.sw(2, 1, static_cast<std::int32_t>(slot - anchor));
  b.jal_to(0, "again");
  b.label("done");
  b.wfi();
  const std::vector<std::uint32_t> prog = b.seal();

  IsaSim sim;
  ASSERT_TRUE(sim.superblocks());
  sim.reset(prog);
  sim.run();
  EXPECT_EQ(sim.reg(5), 99u);
  EXPECT_EQ(sim.reg(10), 2u);
}

TEST(SuperblockIsaSim, CrossPageSpanInvalidatedByStoreToSecondPage) {
  // The span starts in the last words of one 4 KiB page and runs into the
  // next: each page contributes its own store-generation guard. Patching
  // the slot in the SECOND page must retire the span even though the span's
  // start pc lives in the first page.
  const std::uint64_t base = 0x8000'0000ull;
  const std::uint32_t patched =
      chatfuzz::riscv::enc_i(Opcode::kAddi, 5, 0, 99);
  ProgramBuilder b(base);
  b.li(1, static_cast<std::int32_t>(patched));
  b.addi(10, 0, 0);
  b.addi(11, 0, 2);
  b.jal_to(0, "body");
  while (b.pc() < base + 0x1000 - 4 * 9) {
    b.raw(chatfuzz::riscv::enc_i(Opcode::kAddi, 0, 0, 0));  // never executed
  }
  b.label("body");
  // The anchor lives in the body so the store offset to the second-page
  // slot fits an S-type immediate.
  const std::uint64_t anchor = b.pc();
  b.auipc(2, 0);
  for (int i = 0; i < 8; ++i) b.addi(6, 6, 1);  // fills page 0's tail
  const std::uint64_t slot = b.pc();
  b.raw(chatfuzz::riscv::enc_i(Opcode::kAddi, 5, 0, 1));
  for (int i = 0; i < 4; ++i) b.addi(7, 7, 1);
  b.addi(10, 10, 1);
  b.branch_to(Opcode::kBeq, 10, 11, "done");
  b.sw(2, 1, static_cast<std::int32_t>(slot - anchor));
  b.jal_to(0, "body");
  b.label("done");
  b.wfi();
  const std::vector<std::uint32_t> prog = b.seal();
  ASSERT_EQ(slot, base + 0x1000) << "slot must be the second page's first word";

  IsaSim sim;
  sim.reset(prog);
  sim.run();
  EXPECT_EQ(sim.reg(5), 99u);
  EXPECT_EQ(sim.reg(10), 2u);
}

TEST(SuperblockIsaSim, FenceIAfterPartialSpanOverwrite) {
  // Overwrite one word of a cached span, then fence.i before re-entering
  // it. The fence bumps the global flush epoch (and is itself a span
  // terminator, so it never executes from inside a span); the re-entry
  // must decode the new bytes.
  const std::uint64_t base = 0x8000'0000ull;
  const std::uint32_t patched =
      chatfuzz::riscv::enc_i(Opcode::kAddi, 5, 0, 99);
  ProgramBuilder b(base);
  b.li(1, static_cast<std::int32_t>(patched));
  const std::uint64_t anchor = b.pc();
  b.auipc(2, 0);
  b.addi(10, 0, 0);
  b.addi(11, 0, 2);
  b.label("again");
  for (int i = 0; i < 4; ++i) b.addi(6, 6, 1);
  const std::uint64_t slot = b.pc();
  b.raw(chatfuzz::riscv::enc_i(Opcode::kAddi, 5, 0, 1));
  for (int i = 0; i < 4; ++i) b.addi(7, 7, 1);
  b.addi(10, 10, 1);
  b.branch_to(Opcode::kBeq, 10, 11, "done");
  b.sw(2, 1, static_cast<std::int32_t>(slot - anchor));
  b.fence_i();
  b.jal_to(0, "again");
  b.label("done");
  b.wfi();
  const std::vector<std::uint32_t> prog = b.seal();

  IsaSim sim;
  sim.reset(prog);
  sim.run();
  EXPECT_EQ(sim.reg(5), 99u);
  EXPECT_EQ(sim.reg(10), 2u);
}

TEST(PredecodeIsaSim, ExternalMemoryWriteIsVisibleToFetch) {
  // Writing code through the mutable memory() accessor bypasses the store
  // path; the accessor conservatively flushes the predecode cache so the
  // next fetch sees the new bytes — even for a pc that is already cached.
  ProgramBuilder b;
  b.label("top");
  b.addi(5, 0, 1);
  b.jal_to(0, "top");
  const std::vector<std::uint32_t> prog = b.seal();

  IsaSim sim;
  sim.reset(prog);
  for (int i = 0; i < 4; ++i) sim.step();  // two loop iterations: pc cached
  EXPECT_EQ(sim.reg(5), 1u);
  sim.memory().write(0x8000'0000ull,
                     chatfuzz::riscv::enc_i(Opcode::kAddi, 5, 0, 31), 4);
  sim.step();  // re-fetch of the patched pc must see the new bytes
  EXPECT_EQ(sim.reg(5), 31u);
}
