// The parallel campaign engine's core guarantee: for a fixed seed, campaign
// output — the full coverage curve (batch boundaries included), mismatch
// tallies, cycle/instruction totals — is bit-identical for ANY worker
// count. Workers simulate tests on private model instances and the
// coordinator folds per-test artifacts in canonical order, so nothing may
// depend on scheduling. These tests pin that down for the default
// condition-coverage configuration, for metric-guided configurations (which
// exercise the MetricSuite artifact path), for ctrl-reg guidance (the
// DifuzzRTL-style replayed state set), for randomized initial register
// files (the per-test RNG stream path), and for multi-DUT campaigns (every
// test simulated on each backend of the DUT list), whose matrix also spans
// worker *processes* — this binary doubles as its own dist worker (see
// main() at the bottom).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "core/checkpoint.h"
#include "corpus/generator.h"
#include "dist/worker.h"

namespace chatfuzz::core {
namespace {

/// Priv/Sv39-dense stimulus behind the InputGenerator interface: most
/// samples bring up an Sv39 identity map, install satp, drop to S/U via
/// mret, and run translated loads/stores — so the campaign spends its time
/// in the trap/translation surface rather than plain ALU traffic.
class PrivCorpusFuzzer final : public InputGenerator {
 public:
  explicit PrivCorpusFuzzer(std::uint64_t seed) : gen_(vm_config(), seed) {}
  std::string name() const override { return "PrivCorpus"; }
  std::vector<Program> next_batch(std::size_t n) override {
    return gen_.dataset(n);
  }
  bool supports_snapshot() const override { return true; }
  void save_state(ser::Writer& w) const override { gen_.save_state(w); }
  bool restore_state(ser::Reader& r) override { return gen_.restore_state(r); }

  static corpus::CorpusConfig vm_config() {
    corpus::CorpusConfig cc;
    cc.w_vm = 4.0;
    cc.w_priv = 2.0;
    return cc;
  }

 private:
  corpus::CorpusGenerator gen_;
};

/// LSU-dense stimulus: the w_lsu memory-ordering idiom dominates, so
/// store→load forwarding, store-queue drain and branch-squash windows —
/// where the ooo backend's injected bug classes live — are exercised every
/// few tests. Pure random words almost never form the back-to-back
/// store/load pairs those paths need.
class LsuCorpusFuzzer final : public InputGenerator {
 public:
  explicit LsuCorpusFuzzer(std::uint64_t seed) : gen_(lsu_config(), seed) {}
  std::string name() const override { return "LsuCorpus"; }
  std::vector<Program> next_batch(std::size_t n) override {
    return gen_.dataset(n);
  }
  bool supports_snapshot() const override { return true; }
  void save_state(ser::Writer& w) const override { gen_.save_state(w); }
  bool restore_state(ser::Reader& r) override { return gen_.restore_state(r); }

  static corpus::CorpusConfig lsu_config() {
    corpus::CorpusConfig cc;
    cc.w_lsu = 50.0;  // isolate the memory-ordering idiom
    return cc;
  }

 private:
  corpus::CorpusGenerator gen_;
};

// Small but not trivial: 3 batches of 32 with a checkpoint interval that
// does not divide the batch size, so curve points land both inside batches
// and across batch boundaries.
CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.num_tests = 96;
  cfg.batch_size = 32;
  cfg.checkpoint_every = 10;
  cfg.platform.max_steps = 256;
  return cfg;
}

CampaignResult run_with_workers(const CampaignConfig& base,
                                std::size_t workers,
                                std::uint64_t gen_seed = 11) {
  baselines::RandomFuzzer gen(gen_seed);
  CampaignConfig cfg = base;
  cfg.num_workers = workers;
  return run_campaign(gen, cfg);
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.tests_run, b.tests_run);
  EXPECT_EQ(a.final_cov_percent, b.final_cov_percent);  // bit-exact, no tol
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_instrs, b.total_instrs);
  EXPECT_EQ(a.raw_mismatches, b.raw_mismatches);
  EXPECT_EQ(a.filtered_mismatches, b.filtered_mismatches);
  EXPECT_EQ(a.unique_mismatches, b.unique_mismatches);
  EXPECT_EQ(a.findings, b.findings);
  EXPECT_EQ(a.toggle_percent, b.toggle_percent);
  EXPECT_EQ(a.fsm_percent, b.fsm_percent);
  EXPECT_EQ(a.statement_percent, b.statement_percent);
  EXPECT_EQ(a.uncovered.size(), b.uncovered.size());
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].tests, b.curve[i].tests) << "point " << i;
    EXPECT_EQ(a.curve[i].hours, b.curve[i].hours) << "point " << i;
    EXPECT_EQ(a.curve[i].cond_cov_percent, b.curve[i].cond_cov_percent)
        << "point " << i;
    EXPECT_EQ(a.curve[i].ctrl_states, b.curve[i].ctrl_states) << "point " << i;
  }
}

TEST(CampaignDeterminism, FourWorkersMatchOneWorker) {
  const CampaignConfig cfg = small_campaign();
  expect_identical(run_with_workers(cfg, 1), run_with_workers(cfg, 4));
}

TEST(CampaignDeterminism, OddWorkerCountAndRepeatRunsMatch) {
  const CampaignConfig cfg = small_campaign();
  const CampaignResult once = run_with_workers(cfg, 3);
  expect_identical(once, run_with_workers(cfg, 3));  // run-to-run stable
  expect_identical(once, run_with_workers(cfg, 1));
}

TEST(CampaignDeterminism, MetricGuidanceIsWorkerCountInvariant) {
  CampaignConfig cfg = small_campaign();
  cfg.guidance = GuidanceMetric::kToggle;
  cfg.collect_multi_metrics = true;
  const CampaignResult a = run_with_workers(cfg, 1);
  const CampaignResult b = run_with_workers(cfg, 4);
  expect_identical(a, b);
  EXPECT_GT(a.toggle_percent, 0.0);
  EXPECT_GT(a.statement_percent, 0.0);
}

TEST(CampaignDeterminism, CtrlRegGuidanceIsWorkerCountInvariant) {
  CampaignConfig cfg = small_campaign();
  cfg.guidance = GuidanceMetric::kCtrlReg;
  const CampaignResult a = run_with_workers(cfg, 1);
  const CampaignResult b = run_with_workers(cfg, 4);
  expect_identical(a, b);
  EXPECT_GT(a.curve.back().ctrl_states, 0u);
}

TEST(CampaignDeterminism, CtrlRegWithMultiMetricsIsWorkerCountInvariant) {
  // Ctrl-reg guidance with the metric suite attached: the replayed ctrl
  // state set AND the per-test metric-bin artifacts must both fold
  // scheduling-invariantly in the same campaign.
  CampaignConfig cfg = small_campaign();
  cfg.guidance = GuidanceMetric::kCtrlReg;
  cfg.collect_multi_metrics = true;
  const CampaignResult a = run_with_workers(cfg, 1);
  const CampaignResult b = run_with_workers(cfg, 4);
  expect_identical(a, b);
  EXPECT_GT(a.curve.back().ctrl_states, 0u);
  EXPECT_GT(a.toggle_percent, 0.0);
  EXPECT_GT(a.statement_percent, 0.0);
}

TEST(CampaignDeterminism, FsmGuidanceWithMultiMetricsIsWorkerCountInvariant) {
  CampaignConfig cfg = small_campaign();
  cfg.guidance = GuidanceMetric::kFsm;
  cfg.collect_multi_metrics = true;
  const CampaignResult a = run_with_workers(cfg, 1);
  const CampaignResult b = run_with_workers(cfg, 4);
  expect_identical(a, b);
  EXPECT_GT(a.fsm_percent, 0.0);
}

TEST(CampaignDeterminism, StatementGuidanceIsWorkerCountInvariant) {
  CampaignConfig cfg = small_campaign();
  cfg.guidance = GuidanceMetric::kStatement;
  const CampaignResult a = run_with_workers(cfg, 1);
  const CampaignResult b = run_with_workers(cfg, 4);
  expect_identical(a, b);
  EXPECT_GT(a.statement_percent, 0.0);
}

TEST(CampaignDeterminism, RandomizedRegFilesStayDeterministic) {
  CampaignConfig cfg = small_campaign();
  cfg.randomize_regs = true;
  cfg.seed = 99;
  const CampaignResult a = run_with_workers(cfg, 1);
  const CampaignResult b = run_with_workers(cfg, 4);
  expect_identical(a, b);
}

TEST(CampaignDeterminism, SeedActuallyChangesRandomizedRegCampaigns) {
  CampaignConfig cfg = small_campaign();
  cfg.randomize_regs = true;
  cfg.seed = 1;
  const CampaignResult a = run_with_workers(cfg, 2);
  cfg.seed = 2;
  const CampaignResult b = run_with_workers(cfg, 2);
  // Different harness seeds give different register files, so cycle totals
  // should diverge; identical totals would mean the seed is dead plumbing.
  EXPECT_NE(a.total_cycles, b.total_cycles);
}

TEST(CampaignDeterminism, CurveHasBatchBoundaryAndFinalPoints) {
  const CampaignConfig cfg = small_campaign();
  const CampaignResult r = run_with_workers(cfg, 4);
  ASSERT_FALSE(r.curve.empty());
  // checkpoint_every=10 over 96 tests: 10, 20, ..., 90, then the forced
  // final point at 96.
  EXPECT_EQ(r.curve.front().tests, 10u);
  EXPECT_EQ(r.curve.back().tests, 96u);
  EXPECT_EQ(r.curve.size(), 10u);
}

TEST(CampaignDeterminism, PrivVmCampaignIsWorkerCountInvariant) {
  // The tentpole surface under the campaign engine: scheduling must not
  // leak into trap/translation-heavy runs either (TLB state, privilege and
  // satp are per-worker-instance, so nothing may alias across workers).
  const CampaignConfig cfg = small_campaign();
  const auto run = [&](std::size_t workers) {
    PrivCorpusFuzzer gen(77);
    CampaignConfig c = cfg;
    c.num_workers = workers;
    return run_campaign(gen, c);
  };
  const CampaignResult a = run(1);
  expect_identical(a, run(4));
  expect_identical(a, run(3));
  // The shipped DUT's injected bugs must actually fire under priv/VM
  // stimulus — a silent campaign would mean the surface is dead.
  EXPECT_GT(a.raw_mismatches, 0u);
}

TEST(CampaignDeterminism, PrivVmCampaignResumeMatchesUninterrupted) {
  // Checkpoint/resume cut mid-campaign with priv/Sv39 stimulus: the resumed
  // run (even at a different worker count) must reproduce the uninterrupted
  // result bit-exactly — generator stream, TLB-exercising programs and all.
  const CampaignConfig cfg = small_campaign();
  CampaignResult reference;
  {
    PrivCorpusFuzzer gen(77);
    CampaignConfig c = cfg;
    c.num_workers = 1;
    reference = run_campaign(gen, c);
    ASSERT_TRUE(reference.completed);
  }
  const std::string dir = ::testing::TempDir() + "/priv_vm_resume";
  std::filesystem::remove_all(dir);
  {
    PrivCorpusFuzzer gen(77);
    CampaignConfig c = cfg;
    c.num_workers = 1;
    c.checkpoint_dir = dir;
    c.stop_after_tests = 40;
    const CampaignResult partial = run_campaign(gen, c);
    ASSERT_FALSE(partial.completed);
  }
  PrivCorpusFuzzer fresh(12345);  // state comes from disk, not the seed
  ResumeOptions opts;
  opts.num_workers = 4;
  expect_identical(reference, resume_campaign(fresh, dir, opts));
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CampaignDeterminism, SuperblockDispatchIsResultInvariant) {
  // The tentpole guarantee: superblock dispatch is a pure speedup. Turning
  // it off (interpreter fetch/decode every step) must reproduce the exact
  // campaign result, at any worker count.
  const CampaignConfig on = small_campaign();
  CampaignConfig off = on;
  off.superblocks = false;
  const CampaignResult a = run_with_workers(on, 1);
  expect_identical(a, run_with_workers(off, 1));
  expect_identical(a, run_with_workers(off, 4));
  expect_identical(a, run_with_workers(on, 4));
}

TEST(CampaignDeterminism, PrivVmSuperblockDispatchIsResultInvariant) {
  // Same invariance under trap/translation-dense stimulus, where spans are
  // cut short by traps, satp writes and sfence.vma — the hard cases for the
  // fused path's boundary re-checks.
  const auto run = [](bool superblocks, std::size_t workers) {
    PrivCorpusFuzzer gen(77);
    CampaignConfig c = small_campaign();
    c.superblocks = superblocks;
    c.num_workers = workers;
    return run_campaign(gen, c);
  };
  const CampaignResult a = run(true, 1);
  expect_identical(a, run(false, 1));
  expect_identical(a, run(false, 4));
  EXPECT_GT(a.raw_mismatches, 0u);  // the injected bugs still fire
}

TEST(CampaignDeterminism, BbvFilesAreDispatchAndWorkerCountInvariant) {
  // Basic-block vectors are a pure function of the committed instruction
  // stream: the --bbv file must be byte-identical whichever dispatch engine
  // produced it and however many workers folded it.
  const std::string dir = ::testing::TempDir() + "/bbv_invariance";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto run = [&](const char* name, bool superblocks,
                       std::size_t workers) {
    PrivCorpusFuzzer gen(77);
    CampaignConfig c = small_campaign();
    c.superblocks = superblocks;
    c.num_workers = workers;
    c.bbv_path = dir + "/" + name;
    run_campaign(gen, c);
    return read_bytes(c.bbv_path);
  };
  const std::string reference = run("on_w1.bbv", true, 1);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(reference, run("off_w1.bbv", false, 1));
  EXPECT_EQ(reference, run("on_w4.bbv", true, 4));
  EXPECT_EQ(reference, run("off_w4.bbv", false, 4));
}

TEST(CampaignDeterminism, ResumeWithSuperblocksToggledMatches) {
  // superblocks/bbv_path are per-run knobs, never serialized: a campaign
  // checkpointed with superblocks ON resumes bit-identically with them OFF
  // (and vice versa), including the BBV log across the resume cut.
  const std::string dir = ::testing::TempDir() + "/sb_toggle_resume";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  CampaignResult reference;
  {
    PrivCorpusFuzzer gen(77);
    CampaignConfig c = small_campaign();
    c.num_workers = 1;
    c.bbv_path = dir + "/ref.bbv";
    reference = run_campaign(gen, c);
    ASSERT_TRUE(reference.completed);
  }
  const std::string ckpt = dir + "/ckpt";
  {
    PrivCorpusFuzzer gen(77);
    CampaignConfig c = small_campaign();
    c.num_workers = 1;
    c.checkpoint_dir = ckpt;
    c.stop_after_tests = 40;
    c.bbv_path = dir + "/cut.bbv";
    ASSERT_FALSE(run_campaign(gen, c).completed);
  }
  PrivCorpusFuzzer fresh(12345);  // state comes from disk, not the seed
  ResumeOptions opts;
  opts.num_workers = 4;
  opts.superblocks = false;  // toggled across the cut
  opts.bbv_path = dir + "/cut.bbv";
  expect_identical(reference, resume_campaign(fresh, ckpt, opts));
  EXPECT_EQ(read_bytes(dir + "/ref.bbv"), read_bytes(dir + "/cut.bbv"));
}

TEST(CampaignDeterminism, MoreWorkersThanTestsIsSafe) {
  CampaignConfig cfg = small_campaign();
  cfg.num_tests = 5;
  cfg.batch_size = 3;
  cfg.checkpoint_every = 2;
  expect_identical(run_with_workers(cfg, 1), run_with_workers(cfg, 16));
}

// ---------------------------------------------------------------------------
// Multi-DUT campaigns: every generated test runs on each backend of
// cfg.duts against one golden model, and the per-DUT contributions fold in
// DUT-list order — so the determinism contract extends unchanged: output is
// bit-identical for any workers × procs topology, per DUT set.
// ---------------------------------------------------------------------------

/// The DUT-set axis of the matrix: {inorder}, {ooo}, {inorder, ooo}.
std::vector<rtl::CoreConfig> dut_set(int which) {
  switch (which) {
    case 0: return {rtl::CoreConfig::rocket()};
    case 1: return {rtl::CoreConfig::ooo()};
    default: return {rtl::CoreConfig::rocket(), rtl::CoreConfig::ooo()};
  }
}

TEST(MultiDutDeterminism, WorkerAndProcessMatrixIsBitIdentical) {
  for (int s = 0; s < 3; ++s) {
    SCOPED_TRACE("dut set " + std::to_string(s));
    CampaignConfig cfg = small_campaign();
    cfg.duts = dut_set(s);
    const CampaignResult ref = run_with_workers(cfg, 1);
    expect_identical(ref, run_with_workers(cfg, 4));
    // Same campaign sharded across 2 worker processes (this binary re-execs
    // itself in `worker` mode), at 1 and 4 threads per process.
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      baselines::RandomFuzzer gen(11);
      CampaignConfig c = cfg;
      c.num_workers = workers;
      c.dist.num_procs = 2;
      expect_identical(ref, run_campaign(gen, c));
    }
  }
}

TEST(MultiDutDeterminism, MultiDutSupersetsSingleDutFindings) {
  // The {inorder, ooo} campaign must surface strictly more raw mismatches
  // than inorder alone (the ooo backend ships its own injected bug classes)
  // and at least as many as each single-DUT campaign — otherwise the second
  // backend's lockstep runs are dead plumbing. LSU-dense stimulus: the ooo
  // bug classes sit in the forwarding/drain/squash paths.
  const auto run_lsu = [](std::vector<rtl::CoreConfig> duts) {
    LsuCorpusFuzzer gen(11);
    CampaignConfig cfg = small_campaign();
    cfg.duts = std::move(duts);
    cfg.num_workers = 4;
    return run_campaign(gen, cfg);
  };
  const CampaignResult both = run_lsu(dut_set(2));
  const CampaignResult inorder = run_lsu(dut_set(0));
  const CampaignResult ooo = run_lsu(dut_set(1));
  EXPECT_GT(ooo.raw_mismatches, 0u);
  EXPECT_GT(both.raw_mismatches, inorder.raw_mismatches);
  EXPECT_GE(both.raw_mismatches, ooo.raw_mismatches);
  EXPECT_GE(both.unique_mismatches, inorder.unique_mismatches);
  EXPECT_GE(both.unique_mismatches, ooo.unique_mismatches);
}

std::map<std::string, std::string> corpus_bytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& e : std::filesystem::directory_iterator(
           std::filesystem::path(dir) / "corpus")) {
    out[e.path().filename().string()] = read_bytes(e.path().string());
  }
  return out;
}

TEST(MultiDutDeterminism, PersistedStateIsTopologyInvariant) {
  // The byte-level half of the contract: a multi-DUT campaign's coverage
  // DB, mismatch signature DB, generator stream and corpus store must be
  // byte-identical whichever workers × procs topology produced them.
  const auto run_persisted = [&](const std::string& tag, std::size_t workers,
                                 std::size_t procs) {
    const std::string dir = ::testing::TempDir() + "/multidut_" + tag;
    std::filesystem::remove_all(dir);
    LsuCorpusFuzzer gen(11);  // LSU-dense: the ooo bug classes must fire
    CampaignConfig c = small_campaign();
    c.duts = dut_set(2);
    c.num_workers = workers;
    c.dist.num_procs = procs;
    c.checkpoint_dir = dir;
    run_campaign(gen, c);
    return dir;
  };
  const std::string ref = run_persisted("w1p1", 1, 1);
  CheckpointData a;
  ASSERT_TRUE(load_checkpoint(ref, &a).ok());
  const struct {
    const char* tag;
    std::size_t workers, procs;
  } grid[] = {{"w4p1", 4, 1}, {"w1p2", 1, 2}};
  for (const auto& g : grid) {
    SCOPED_TRACE(g.tag);
    const std::string dir = run_persisted(g.tag, g.workers, g.procs);
    CheckpointData b;
    ASSERT_TRUE(load_checkpoint(dir, &b).ok());
    EXPECT_EQ(a.coverage_blob, b.coverage_blob) << "coverage DB bytes differ";
    EXPECT_EQ(a.detector_blob, b.detector_blob)
        << "mismatch signature DB bytes differ";
    EXPECT_EQ(a.generator_blob, b.generator_blob)
        << "generator stream state differs";
    EXPECT_EQ(corpus_bytes(ref), corpus_bytes(dir))
        << "corpus store bytes differ";
    std::filesystem::remove_all(dir);
  }

  // The persisted signature DB must attribute the ooo backend's mismatches
  // to DUT ordinal 1 — the ":dut1" suffix keeps the same root cause on
  // different backends distinct campaign-wide.
  mismatch::MismatchDetector det;
  ser::Reader det_r(a.detector_blob);
  ASSERT_TRUE(det.restore_state(det_r));
  bool saw_dut1 = false;
  for (const auto& [sig, count] : det.unique_signatures()) {
    if (sig.find(":dut1") != std::string::npos) saw_dut1 = true;
  }
  EXPECT_TRUE(saw_dut1) << "no mismatch signature attributed to DUT 1";
  std::filesystem::remove_all(ref);
}

}  // namespace
}  // namespace chatfuzz::core

int main(int argc, char** argv) {
  // Worker re-exec: the coordinator spawns /proc/self/exe (this binary)
  // with `worker <fd>`; serve leases instead of running the test suite.
  if (const auto rc = chatfuzz::dist::maybe_worker_main(argc, argv)) {
    return *rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
