// Mismatch Detector tests: kind detection, signature dedup, filter rules,
// classification of the paper's five findings, and campaign accumulation.
#include <gtest/gtest.h>

#include "mismatch/detect.h"
#include "riscv/encode.h"

namespace chatfuzz::mismatch {
namespace {

using riscv::Exception;
using riscv::Opcode;
using sim::CommitRecord;
using sim::Trace;

CommitRecord rec(std::uint64_t pc, std::uint32_t instr) {
  CommitRecord r;
  r.pc = pc;
  r.instr = instr;
  return r;
}

CommitRecord with_rd(CommitRecord r, std::uint8_t rd, std::uint64_t value) {
  r.has_rd_write = true;
  r.rd = rd;
  r.rd_value = value;
  return r;
}

TEST(Detector, IdenticalTracesProduceNothing) {
  MismatchDetector det;
  Trace t = {with_rd(rec(0x100, riscv::enc_i(Opcode::kAddi, 1, 0, 5)), 1, 5)};
  const Report r = det.compare(t, t);
  EXPECT_EQ(r.raw_count, 0u);
  EXPECT_TRUE(r.mismatches.empty());
}

TEST(Detector, RdValueMismatch) {
  MismatchDetector det;
  const std::uint32_t add = riscv::enc_r(Opcode::kAdd, 1, 2, 3);
  Trace gold = {with_rd(rec(0x100, add), 1, 5)};
  Trace dut = {with_rd(rec(0x100, add), 1, 6)};
  const Report r = det.compare(dut, gold);
  ASSERT_EQ(r.mismatches.size(), 1u);
  EXPECT_EQ(r.mismatches[0].kind, Kind::kRdValue);
  EXPECT_EQ(r.mismatches[0].signature, "rd-value:add");
}

TEST(Detector, RdPresenceMismatchMulIsBug2) {
  MismatchDetector det;
  const std::uint32_t mul = riscv::enc_r(Opcode::kMul, 5, 6, 7);
  Trace gold = {with_rd(rec(0x100, mul), 5, 42)};
  Trace dut = {rec(0x100, mul)};
  const Report r = det.compare(dut, gold);
  ASSERT_EQ(r.mismatches.size(), 1u);
  EXPECT_EQ(r.mismatches[0].kind, Kind::kRdPresence);
  EXPECT_EQ(r.mismatches[0].finding, Finding::kBug2TracerMulDiv);
}

TEST(Detector, StaleInstrIsBug1) {
  MismatchDetector det;
  Trace gold = {rec(0x100, riscv::enc_i(Opcode::kAddi, 1, 0, 99))};
  Trace dut = {rec(0x100, riscv::enc_i(Opcode::kAddi, 1, 0, 1))};
  const Report r = det.compare(dut, gold);
  ASSERT_EQ(r.mismatches.size(), 1u);
  EXPECT_EQ(r.mismatches[0].kind, Kind::kStaleInstr);
  EXPECT_EQ(r.mismatches[0].finding, Finding::kBug1CacheCoherency);
}

TEST(Detector, ExceptionPriorityIsFinding1) {
  MismatchDetector det;
  const std::uint32_t lw = riscv::enc_i(Opcode::kLw, 1, 2, 0);
  Trace gold = {rec(0x100, lw)};
  gold[0].exception = Exception::kLoadAddrMisaligned;
  Trace dut = {rec(0x100, lw)};
  dut[0].exception = Exception::kLoadAccessFault;
  const Report r = det.compare(dut, gold);
  ASSERT_EQ(r.mismatches.size(), 1u);
  EXPECT_EQ(r.mismatches[0].kind, Kind::kException);
  EXPECT_EQ(r.mismatches[0].finding, Finding::kF1ExceptionPriority);
}

TEST(Detector, AmoX0IsFinding2) {
  MismatchDetector det;
  const std::uint32_t amo = riscv::enc_amo(Opcode::kAmoOrD, 0, 4, 11);
  Trace gold = {rec(0x100, amo)};
  Trace dut = {with_rd(rec(0x100, amo), 0, 5)};
  const Report r = det.compare(dut, gold);
  ASSERT_EQ(r.mismatches.size(), 1u);
  EXPECT_EQ(r.mismatches[0].finding, Finding::kF2AmoIntoX0);
}

TEST(Detector, JalX0IsFinding3) {
  MismatchDetector det;
  const std::uint32_t jal = riscv::enc_j(Opcode::kJal, 0, -8);
  Trace gold = {rec(0x100, jal)};
  Trace dut = {with_rd(rec(0x100, jal), 0, 0x104)};
  const Report r = det.compare(dut, gold);
  ASSERT_EQ(r.mismatches.size(), 1u);
  EXPECT_EQ(r.mismatches[0].finding, Finding::kF3X0TraceWrite);
}

TEST(Detector, PcDivergenceStopsComparison) {
  MismatchDetector det;
  const std::uint32_t addi = riscv::enc_i(Opcode::kAddi, 1, 0, 1);
  Trace gold = {rec(0x100, addi), rec(0x104, addi), rec(0x108, addi)};
  Trace dut = {rec(0x100, addi), rec(0x200, addi), rec(0x204, addi)};
  const Report r = det.compare(dut, gold);
  ASSERT_EQ(r.mismatches.size(), 1u);  // everything after is the same root cause
  EXPECT_EQ(r.mismatches[0].kind, Kind::kPcDivergence);
}

TEST(Detector, LengthMismatchWithoutDivergence) {
  MismatchDetector det;
  const std::uint32_t addi = riscv::enc_i(Opcode::kAddi, 1, 0, 1);
  Trace gold = {with_rd(rec(0x100, addi), 1, 1), with_rd(rec(0x104, addi), 1, 1)};
  Trace dut = {with_rd(rec(0x100, addi), 1, 1)};
  const Report r = det.compare(dut, gold);
  ASSERT_EQ(r.mismatches.size(), 1u);
  EXPECT_EQ(r.mismatches[0].kind, Kind::kLength);
}

TEST(Detector, MemValueAndPresence) {
  MismatchDetector det;
  const std::uint32_t sw = riscv::enc_s(Opcode::kSw, 2, 3, 0);
  CommitRecord g = rec(0x100, sw);
  g.has_mem = true;
  g.mem_is_store = true;
  g.mem_addr = 0x8000;
  g.mem_value = 7;
  g.mem_size = 4;
  CommitRecord d = g;
  d.mem_value = 9;
  Report r = det.compare({d}, {g});
  ASSERT_EQ(r.mismatches.size(), 1u);
  EXPECT_EQ(r.mismatches[0].kind, Kind::kMemValue);

  CommitRecord d2 = rec(0x100, sw);  // no mem record at all
  r = det.compare({d2}, {g});
  ASSERT_EQ(r.mismatches.size(), 1u);
  EXPECT_EQ(r.mismatches[0].kind, Kind::kMemPresence);
}

TEST(Filters, CounterCsrReadIsDropped) {
  MismatchDetector det;
  det.install_default_filters();
  const std::uint32_t rdcycle =
      riscv::enc_csr(Opcode::kCsrrs, 5, riscv::csr::kCycle, 0);
  Trace gold = {with_rd(rec(0x100, rdcycle), 5, 100)};
  Trace dut = {with_rd(rec(0x100, rdcycle), 5, 250)};
  const Report r = det.compare(dut, gold);
  EXPECT_EQ(r.raw_count, 1u);
  EXPECT_EQ(r.filtered_count, 1u);
  EXPECT_TRUE(r.mismatches.empty());
}

TEST(Filters, NonCounterCsrSurvives) {
  MismatchDetector det;
  det.install_default_filters();
  const std::uint32_t rd =
      riscv::enc_csr(Opcode::kCsrrs, 5, riscv::csr::kMscratch, 0);
  Trace gold = {with_rd(rec(0x100, rd), 5, 100)};
  Trace dut = {with_rd(rec(0x100, rd), 5, 250)};
  const Report r = det.compare(dut, gold);
  EXPECT_EQ(r.mismatches.size(), 1u);
}

TEST(Filters, CustomRule) {
  MismatchDetector det;
  det.add_filter([](const Mismatch& m) { return m.kind == Kind::kRdValue; });
  const std::uint32_t add = riscv::enc_r(Opcode::kAdd, 1, 2, 3);
  Trace gold = {with_rd(rec(0x100, add), 1, 5)};
  Trace dut = {with_rd(rec(0x100, add), 1, 6)};
  const Report r = det.compare(dut, gold);
  EXPECT_TRUE(r.mismatches.empty());
  EXPECT_EQ(r.filtered_count, 1u);
}

TEST(Accumulation, DedupCollapsesRepeatedRootCauses) {
  MismatchDetector det;
  const std::uint32_t mul = riscv::enc_r(Opcode::kMul, 5, 6, 7);
  for (int i = 0; i < 10; ++i) {
    Trace gold = {with_rd(rec(0x100 + 4 * i, mul), 5, 42)};
    Trace dut = {rec(0x100 + 4 * i, mul)};
    det.accumulate(det.compare(dut, gold));
  }
  EXPECT_EQ(det.total_raw(), 10u);
  EXPECT_EQ(det.unique_count(), 1u);  // same signature every time
  EXPECT_TRUE(det.findings_seen().count(Finding::kBug2TracerMulDiv));
}

TEST(Accumulation, DistinctMnemonicsAreDistinctSignatures) {
  MismatchDetector det;
  for (Opcode op : {Opcode::kMul, Opcode::kDiv, Opcode::kRemu}) {
    const std::uint32_t instr = riscv::enc_r(op, 5, 6, 7);
    Trace gold = {with_rd(rec(0x100, instr), 5, 42)};
    Trace dut = {rec(0x100, instr)};
    det.accumulate(det.compare(dut, gold));
  }
  EXPECT_EQ(det.unique_count(), 3u);
}

TEST(Signatures, EncodeBothExceptionNames) {
  Mismatch m;
  m.kind = Kind::kException;
  m.golden = rec(0, riscv::enc_i(Opcode::kLw, 1, 2, 0));
  m.golden.exception = Exception::kLoadAddrMisaligned;
  m.dut = m.golden;
  m.dut.exception = Exception::kLoadAccessFault;
  const std::string sig = signature_of(m);
  EXPECT_NE(sig.find("lw"), std::string::npos);
  EXPECT_NE(sig.find("load-access-fault"), std::string::npos);
  EXPECT_NE(sig.find("load-addr-misaligned"), std::string::npos);
}

}  // namespace
}  // namespace chatfuzz::mismatch
