// ELF container tests: the static-collection pipeline (paper §III-A) must
// round-trip function machine code exactly, and the reader must reject any
// malformed image without crashing — it is the one component that parses
// untrusted bytes.
#include <gtest/gtest.h>

#include "corpus/elf.h"
#include "corpus/generator.h"
#include "riscv/decode.h"

namespace chatfuzz::corpus {
namespace {

std::vector<ElfFunction> sample_functions() {
  CorpusGenerator gen({}, 7);
  std::vector<ElfFunction> fs;
  for (int i = 0; i < 5; ++i) {
    ElfFunction f;
    f.name = "fn" + std::to_string(i);
    f.code = gen.function();
    fs.push_back(std::move(f));
  }
  return fs;
}

TEST(ElfTest, RoundTripPreservesFunctions) {
  const auto fs = sample_functions();
  const auto image = write_elf(fs);
  const auto back = read_elf(image);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), fs.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    EXPECT_EQ((*back)[i].name, fs[i].name);
    EXPECT_EQ((*back)[i].code, fs[i].code);
  }
}

TEST(ElfTest, FunctionsLaidOutBackToBack) {
  const auto fs = sample_functions();
  const auto back = read_elf(write_elf(fs, 0x1000));
  ASSERT_TRUE(back.has_value());
  std::uint64_t expect = 0x1000;
  for (const ElfFunction& f : *back) {
    EXPECT_EQ(f.address, expect);
    expect += 4 * f.code.size();
  }
}

TEST(ElfTest, EmptyObjectRoundTrips) {
  const auto back = read_elf(write_elf({}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(ElfTest, HarvestDropsEmptyFunctions) {
  std::vector<ElfFunction> fs = sample_functions();
  fs.push_back({"empty", 0, {}});
  const auto data = harvest_dataset(write_elf(fs));
  EXPECT_EQ(data.size(), fs.size() - 1);
}

TEST(ElfTest, HarvestedCodeIsValidMachineLanguage) {
  CorpusGenerator gen({}, 11);
  const auto image = synthesize_compiled_binary(gen, 40);
  const auto data = harvest_dataset(image);
  ASSERT_EQ(data.size(), 40u);
  std::size_t valid = 0, total = 0;
  for (const auto& fn : data) {
    for (std::uint32_t w : fn) {
      ++total;
      if (riscv::decode(w).valid()) ++valid;
    }
  }
  // The corpus generator emits only valid encodings.
  EXPECT_EQ(valid, total);
  EXPECT_GT(total, 400u);
}

TEST(ElfTest, SynthesizedBinaryMatchesDirectDataset) {
  // Same seed => the ELF detour must not change the harvested entries.
  CorpusGenerator g1({}, 99);
  CorpusGenerator g2({}, 99);
  const auto direct = g1.dataset(10);
  const auto via_elf = harvest_dataset(synthesize_compiled_binary(g2, 10));
  EXPECT_EQ(direct, via_elf);
}

// ---- malformed input ---------------------------------------------------------

TEST(ElfTest, RejectsBadMagic) {
  auto image = write_elf(sample_functions());
  image[1] = 'X';
  EXPECT_FALSE(read_elf(image).has_value());
}

TEST(ElfTest, RejectsWrongClassEndianMachine) {
  auto a = write_elf(sample_functions());
  a[4] = 1;  // ELFCLASS32
  EXPECT_FALSE(read_elf(a).has_value());
  auto b = write_elf(sample_functions());
  b[5] = 2;  // big endian
  EXPECT_FALSE(read_elf(b).has_value());
  auto c = write_elf(sample_functions());
  c[18] = 0x3e;  // EM_X86_64
  EXPECT_FALSE(read_elf(c).has_value());
}

TEST(ElfTest, NoCrashOnAnyTruncation) {
  const auto image = write_elf(sample_functions());
  for (std::size_t len = 0; len < image.size(); ++len) {
    const std::vector<std::uint8_t> cut(image.begin(),
                                        image.begin() + static_cast<std::ptrdiff_t>(len));
    // Must not crash; truncations inside headers/tables must be rejected.
    (void)read_elf(cut);
  }
  SUCCEED();
}

TEST(ElfTest, RejectsSymbolOutsideText) {
  auto fs = sample_functions();
  auto image = write_elf(fs);
  // Corrupt the first symbol's st_value (symtab starts after ehdr+text;
  // easier: scan for the known text_base value 0x80000000 in the symtab and
  // bump it far out of range).
  for (std::size_t off = 0; off + 8 <= image.size(); ++off) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(image[off + i]) << (8 * i);
    }
    if (v == 0x8000'0000ull) {
      const std::uint64_t bad = 0xffff'ffff'0000'0000ull;
      for (unsigned i = 0; i < 8; ++i) {
        image[off + i] = static_cast<std::uint8_t>((bad >> (8 * i)) & 0xff);
      }
      break;
    }
  }
  EXPECT_FALSE(read_elf(image).has_value());
}

TEST(ElfTest, HeaderFuzzNeverCrashes) {
  // Single-byte corruptions across the header + section-table region: the
  // reader must either parse or reject, never read out of bounds (ASAN-less
  // proxy: no crash, and code sizes stay bounded by the image).
  const auto image = write_elf(sample_functions());
  for (std::size_t off = 0; off < 64; ++off) {
    for (std::uint8_t bit = 0; bit < 8; ++bit) {
      auto mut = image;
      mut[off] ^= static_cast<std::uint8_t>(1u << bit);
      if (const auto r = read_elf(mut)) {
        for (const ElfFunction& f : *r) {
          EXPECT_LE(4 * f.code.size(), mut.size());
        }
      }
    }
  }
}

}  // namespace
}  // namespace chatfuzz::corpus
