// Integration tests across modules: full campaigns with each fuzzer, the
// findings pipeline end-to-end (triggering programs -> mismatch report ->
// classification), and cross-fuzzer coverage ordering on small budgets.
#include <gtest/gtest.h>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "core/chatfuzz.h"
#include "riscv/builder.h"
#include "riscv/encode.h"

namespace chatfuzz::core {
namespace {

using baselines::RandomFuzzer;
using baselines::TheHuzzFuzzer;

CampaignConfig small_campaign(std::size_t tests) {
  CampaignConfig cfg;
  cfg.num_tests = tests;
  cfg.batch_size = 16;
  cfg.checkpoint_every = 50;
  cfg.platform.max_steps = 256;
  return cfg;
}

TEST(Campaign, RandomFuzzerCoverageIsMonotone) {
  RandomFuzzer fuzzer(1);
  const CampaignResult r = run_campaign(fuzzer, small_campaign(300));
  EXPECT_EQ(r.tests_run, 300u);
  ASSERT_GE(r.curve.size(), 2u);
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GE(r.curve[i].cond_cov_percent, r.curve[i - 1].cond_cov_percent);
  }
  EXPECT_GT(r.final_cov_percent, 30.0);
  EXPECT_LT(r.final_cov_percent, 100.0);
}

TEST(Campaign, HoursFollowTestsAndFactor) {
  RandomFuzzer fuzzer(1);
  CampaignConfig cfg = small_campaign(100);
  cfg.tests_per_hour = 1000.0;
  const CampaignResult r = run_campaign(fuzzer, cfg);
  EXPECT_NEAR(r.hours, 0.1, 1e-9);
}

TEST(Campaign, MismatchStatisticsArePopulated) {
  // Random valid programs hit mul/div and rd=x0 jumps quickly, so the
  // injected tracer deviations must surface within a few hundred tests.
  RandomFuzzer fuzzer(2);
  const CampaignResult r = run_campaign(fuzzer, small_campaign(400));
  EXPECT_GT(r.raw_mismatches, 0u);
  EXPECT_GT(r.unique_mismatches, 0u);
  EXPECT_GE(r.raw_mismatches, r.unique_mismatches);
  EXPECT_TRUE(r.findings.count(mismatch::Finding::kBug2TracerMulDiv));
}

TEST(Campaign, CleanDutYieldsNoMismatches) {
  RandomFuzzer fuzzer(3);
  CampaignConfig cfg = small_campaign(200);
  cfg.core.bugs = rtl::BugInjections::none();
  const CampaignResult r = run_campaign(fuzzer, cfg);
  EXPECT_EQ(r.raw_mismatches, r.filtered_mismatches)
      << "non-filtered mismatch on a clean DUT: simulators diverge";
  EXPECT_EQ(r.unique_mismatches, 0u);
}

TEST(Campaign, TheHuzzBeatsRandomOnEqualBudget) {
  // Coverage feedback must help: on the same test budget, the mutational
  // coverage-guided fuzzer should reach at least random's coverage.
  TheHuzzFuzzer huzz(4);
  RandomFuzzer random(4);
  const CampaignResult rh = run_campaign(huzz, small_campaign(600));
  const CampaignResult rr = run_campaign(random, small_campaign(600));
  EXPECT_GE(rh.final_cov_percent, rr.final_cov_percent - 1.0);
}

TEST(Campaign, CheckpointHookFires) {
  RandomFuzzer fuzzer(5);
  std::size_t calls = 0;
  run_campaign(fuzzer, small_campaign(120),
               [&](const CampaignPoint&) { ++calls; });
  EXPECT_GE(calls, 2u);
}

TEST(Campaign, HoursToThreshold) {
  CampaignResult r;
  r.curve = {{100, 0.1, 40.0, 0}, {200, 0.2, 55.0, 0}, {300, 0.3, 60.0, 0}};
  EXPECT_DOUBLE_EQ(r.hours_to(50.0), 0.2);
  EXPECT_EQ(r.tests_to(50.0), 200u);
  EXPECT_LT(r.hours_to(99.0), 0.0);
  EXPECT_EQ(r.tests_to(99.0), 0u);
}

TEST(Findings, DirectedProgramsTriggerAllFive) {
  // One directed program per finding, run through the real campaign
  // machinery via a replay generator.
  class ReplayGenerator final : public InputGenerator {
   public:
    explicit ReplayGenerator(std::vector<Program> tests)
        : tests_(std::move(tests)) {}
    std::string name() const override { return "replay"; }
    std::vector<Program> next_batch(std::size_t n) override {
      std::vector<Program> out;
      while (out.size() < n && at_ < tests_.size()) out.push_back(tests_[at_++]);
      while (out.size() < n) out.push_back(tests_.back());
      return out;
    }
   private:
    std::vector<Program> tests_;
    std::size_t at_ = 0;
  };

  std::vector<Program> tests;
  {  // Bug1: self-modifying code without FENCE.I. The store patches an
     // instruction already sitting in the fetched I$ line, so the DUT
     // executes the stale word while the golden model executes the patch.
    riscv::ProgramBuilder b;
    const std::uint32_t li99 = riscv::enc_i(riscv::Opcode::kAddi, 10, 0, 99);
    b.li(11, static_cast<std::int32_t>(li99));  // 2 instrs (lui+addi)
    b.auipc(12, 0);                             // byte 8
    b.sw(12, 11, 8);                            // patch byte 16 (next instr)
    b.li(10, 1);                                // byte 16: gets patched
    tests.push_back(b.seal());
  }
  {  // Bug2: mul writeback
    riscv::ProgramBuilder b;
    b.li(10, 6).li(11, 7).mul(12, 10, 11);
    tests.push_back(b.seal());
  }
  {  // Finding1: misaligned + out-of-range
    riscv::ProgramBuilder b;
    b.li(10, 0x1001);
    b.lw(11, 10, 0);
    tests.push_back(b.seal());
  }
  {  // Finding2: AMO rd=x0
    riscv::ProgramBuilder b;
    b.raw(riscv::enc_amo(riscv::Opcode::kAmoOrD, 0, 4, 11));
    tests.push_back(b.seal());
  }
  {  // Finding3: backward jal rd=x0
    riscv::ProgramBuilder b;
    b.branch_to(riscv::Opcode::kBeq, 5, 5, "fwd");
    b.label("back");
    b.ecall();
    b.label("fwd");
    b.jal_to(0, "back");
    tests.push_back(b.seal());
  }

  ReplayGenerator gen(tests);
  CampaignConfig cfg = small_campaign(tests.size());
  cfg.batch_size = tests.size();
  const CampaignResult r = run_campaign(gen, cfg);
  EXPECT_TRUE(r.findings.count(mismatch::Finding::kBug1CacheCoherency));
  EXPECT_TRUE(r.findings.count(mismatch::Finding::kBug2TracerMulDiv));
  EXPECT_TRUE(r.findings.count(mismatch::Finding::kF1ExceptionPriority));
  EXPECT_TRUE(r.findings.count(mismatch::Finding::kF2AmoIntoX0));
  EXPECT_TRUE(r.findings.count(mismatch::Finding::kF3X0TraceWrite));
  EXPECT_GE(r.unique_mismatches, 5u);
}

TEST(ChatFuzzLoop, UntrainedGeneratorCompletesACampaign) {
  // Even without offline training the full loop (generate -> simulate ->
  // reward -> PPO update) must run; this exercises stage-3 plumbing.
  ChatFuzzConfig cc;
  cc.model = ml::GptConfig::tiny();
  cc.model.vocab = 259;  // tokenizer vocabulary
  cc.model.ctx = 96;
  cc.gen_tokens = 24;
  cc.sample.min_new_tokens = 8;
  ChatFuzzGenerator gen(cc);
  CampaignConfig cfg = small_campaign(64);
  cfg.batch_size = 16;
  const CampaignResult r = run_campaign(gen, cfg);
  EXPECT_EQ(r.tests_run, 64u);
  EXPECT_GT(r.final_cov_percent, 0.0);
  EXPECT_GT(gen.last_ppo_stats().num_actions, 0u);
}

TEST(Campaign, BoomConfigRuns) {
  RandomFuzzer fuzzer(6);
  CampaignConfig cfg = small_campaign(200);
  cfg.core = rtl::CoreConfig::boom();
  const CampaignResult r = run_campaign(fuzzer, cfg);
  EXPECT_GT(r.final_cov_percent, 20.0);
}

}  // namespace
}  // namespace chatfuzz::core
