// Sparse-coverage equivalence suite: the dirty-bin journals that make
// begin_test / reset_hits / extraction O(bins touched) must be observably
// identical to the full-scan implementations they replaced. Each test
// drives a journaled structure and an explicit full-scan shadow model with
// the same randomized hit pattern and checks every count and extracted bin
// list after every round — including across resets, save/restore, and bulk
// (add_bin_hits / cover_bin) mutation paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "corpus/generator.h"
#include "coverage/cover.h"
#include "coverage/merge.h"
#include "coverage/multi.h"
#include "rtlsim/core.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace chatfuzz::cov {
namespace {

using chatfuzz::Rng;

// ---- CoverageDB -------------------------------------------------------------

struct DbShadow {
  std::vector<std::uint64_t> hits;
  std::vector<std::uint8_t> test;

  std::size_t total_covered() const {
    std::size_t n = 0;
    for (std::uint64_t h : hits) n += h != 0 ? 1 : 0;
    return n;
  }
  std::size_t test_covered() const {
    std::size_t n = 0;
    for (std::uint8_t b : test) n += b;
    return n;
  }
  std::vector<BinDelta> extract() const {
    std::vector<BinDelta> out;
    for (std::size_t b = 0; b < hits.size(); ++b) {
      if (hits[b] != 0) out.push_back({static_cast<std::uint32_t>(b), hits[b]});
    }
    return out;
  }
};

void expect_db_matches_shadow(const CoverageDB& db, const DbShadow& sh) {
  ASSERT_EQ(db.num_bins(), sh.hits.size());
  EXPECT_EQ(db.total_covered(), sh.total_covered());
  EXPECT_EQ(db.test_covered(), sh.test_covered());
  for (std::size_t b = 0; b < sh.hits.size(); ++b) {
    ASSERT_EQ(db.bin_hits(b), sh.hits[b]) << "bin " << b;
    ASSERT_EQ(db.test_bin_hit(b), sh.test[b] != 0) << "bin " << b;
  }
  // Journal-driven extraction vs. the full scan, including order.
  const std::vector<BinDelta> got = extract_bins(db);
  const std::vector<BinDelta> want = sh.extract();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].bin, want[i].bin) << "slice entry " << i;
    EXPECT_EQ(got[i].hits, want[i].hits) << "slice entry " << i;
  }
}

TEST(SparseCoverage, JournaledDbMatchesFullScanShadow) {
  Rng rng(0xc0ffee);
  CoverageDB db;
  const std::size_t kPoints = 203;
  for (std::size_t i = 0; i < kPoints; ++i) {
    db.register_cond("p" + std::to_string(i));
  }
  DbShadow sh{std::vector<std::uint64_t>(2 * kPoints, 0),
              std::vector<std::uint8_t>(2 * kPoints, 0)};

  for (int round = 0; round < 300; ++round) {
    // A burst of hits, skewed so some bins repeat and most stay untouched.
    const unsigned burst = 1 + static_cast<unsigned>(rng.below(40));
    for (unsigned h = 0; h < burst; ++h) {
      const auto id = static_cast<PointId>(rng.below(kPoints));
      const bool outcome = rng.chance(0.5);
      db.hit(id, outcome);
      const std::size_t bin = 2 * id + (outcome ? 1 : 0);
      ++sh.hits[bin];
      sh.test[bin] = 1;
    }
    if (rng.chance(0.3)) {  // bulk path (coverage merging / artifact fold)
      const std::size_t bin = rng.below(2 * kPoints);
      const std::uint64_t n = rng.below(3);  // exercises the n == 0 edge
      db.add_bin_hits(bin, n);
      sh.hits[bin] += n;
    }
    expect_db_matches_shadow(db, sh);

    if (rng.chance(0.3)) {
      db.begin_test();
      std::fill(sh.test.begin(), sh.test.end(), 0);
      expect_db_matches_shadow(db, sh);
    }
    if (rng.chance(0.1)) {
      db.reset_hits();
      std::fill(sh.hits.begin(), sh.hits.end(), 0);
      std::fill(sh.test.begin(), sh.test.end(), 0);
      expect_db_matches_shadow(db, sh);
    }
    if (rng.chance(0.1)) {
      // Round-trip through the snapshot path: the journal must be rebuilt
      // so later reset_hits()/extraction still see every nonzero bin.
      ser::Writer w;
      db.save_state(w);
      const auto blob = w.take();
      ser::Reader r(blob);
      ASSERT_TRUE(db.restore_state(r));
      std::fill(sh.test.begin(), sh.test.end(), 0);  // per-test is transient
      expect_db_matches_shadow(db, sh);
    }
  }
}

TEST(SparseCoverage, ApplyExtractedSliceReproducesAggregateCounts) {
  // Worker-shard flow: reset, hit, extract, apply into an aggregate —
  // aggregate covered counts must equal a full scan at every step.
  Rng rng(42);
  CoverageDB shard, agg;
  const std::size_t kPoints = 64;
  for (std::size_t i = 0; i < kPoints; ++i) {
    shard.register_cond("p" + std::to_string(i));
    agg.register_cond("p" + std::to_string(i));
  }
  std::vector<std::uint64_t> agg_shadow(2 * kPoints, 0);
  std::vector<BinDelta> slice;
  for (int test = 0; test < 100; ++test) {
    shard.reset_hits();
    const unsigned burst = static_cast<unsigned>(rng.below(30));
    for (unsigned h = 0; h < burst; ++h) {
      shard.hit(static_cast<PointId>(rng.below(kPoints)), rng.chance(0.5));
    }
    extract_bins(shard, slice);
    // The pooled overload must agree with the allocating one.
    const std::vector<BinDelta> fresh = extract_bins(shard);
    ASSERT_EQ(slice.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(slice[i].bin, fresh[i].bin);
      EXPECT_EQ(slice[i].hits, fresh[i].hits);
    }
    apply_bins(agg, slice);
    for (const BinDelta& d : slice) agg_shadow[d.bin] += d.hits;
    std::size_t want_covered = 0;
    for (std::uint64_t h : agg_shadow) want_covered += h != 0 ? 1 : 0;
    ASSERT_EQ(agg.total_covered(), want_covered);
    for (std::size_t b = 0; b < agg_shadow.size(); ++b) {
      ASSERT_EQ(agg.bin_hits(b), agg_shadow[b]);
    }
  }
}

// ---- ToggleCoverage ---------------------------------------------------------

TEST(SparseCoverage, ToggleJournalMatchesFullScanShadow) {
  Rng rng(99);
  const unsigned kRegs = 8;
  ToggleCoverage tc(kRegs);
  std::vector<std::uint8_t> cum(kRegs * 128, 0), test(kRegs * 128, 0);

  for (int round = 0; round < 400; ++round) {
    const unsigned reg = static_cast<unsigned>(rng.below(kRegs + 1));  // +1:
    const std::uint64_t oldv = rng.next_u64() & rng.next_u64();  // sparse
    const std::uint64_t newv = rng.next_u64() & rng.next_u64();
    tc.observe_write(reg, oldv, newv);  // reg == kRegs exercises the guard
    if (reg < kRegs) {
      const std::uint64_t changed = oldv ^ newv;
      for (unsigned bit = 0; bit < 64; ++bit) {
        if (((changed >> bit) & 1) == 0) continue;
        const std::size_t idx =
            static_cast<std::size_t>(reg) * 128 + 2 * bit +
            ((newv >> bit) & 1);
        cum[idx] = 1;
        test[idx] = 1;
      }
    }
    if (rng.chance(0.1)) {
      const std::size_t idx = rng.below(cum.size());
      tc.cover_bin(idx);
      cum[idx] = 1;
    }

    std::size_t want_cov = 0, want_test = 0;
    for (std::uint8_t b : cum) want_cov += b;
    for (std::uint8_t b : test) want_test += b;
    ASSERT_EQ(tc.covered(), want_cov);
    ASSERT_EQ(tc.test_covered(), want_test);

    std::vector<std::size_t> got, want;
    tc.append_test_bins(got);
    for (std::size_t i = 0; i < test.size(); ++i) {
      if (test[i]) want.push_back(i);
    }
    ASSERT_EQ(got, want);  // same bins, same (ascending) order

    if (rng.chance(0.25)) {
      tc.begin_test();
      std::fill(test.begin(), test.end(), 0);
      std::vector<std::size_t> after;
      tc.append_test_bins(after);
      ASSERT_TRUE(after.empty());
      ASSERT_EQ(tc.test_covered(), 0u);
    }
  }
}

// ---- FsmCoverage ------------------------------------------------------------

TEST(SparseCoverage, FsmJournalMatchesFullScanShadow) {
  Rng rng(7);
  FsmCoverage fc;
  // Two FSMs so the universe has a nonzero base offset for the second.
  const auto f0 = fc.register_fsm("a", 3, {{0, 1}, {1, 2}, {2, 0}, {1, 1}});
  const auto f1 = fc.register_fsm("b", 4, {{0, 3}, {3, 0}, {2, 2}});
  const std::size_t kUniverse = (3 + 4) + (4 + 3);
  ASSERT_EQ(fc.universe(), kUniverse);
  struct ShadowFsm {
    unsigned num_states;
    std::vector<std::pair<unsigned, unsigned>> arcs;
    std::vector<std::uint8_t> s_cum, s_test, t_cum, t_test;
  };
  ShadowFsm sh[2] = {
      {3, {{0, 1}, {1, 2}, {2, 0}, {1, 1}}, {}, {}, {}, {}},
      {4, {{0, 3}, {3, 0}, {2, 2}}, {}, {}, {}, {}},
  };
  for (ShadowFsm& f : sh) {
    f.s_cum.assign(f.num_states, 0);
    f.s_test.assign(f.num_states, 0);
    f.t_cum.assign(f.arcs.size(), 0);
    f.t_test.assign(f.arcs.size(), 0);
  }

  for (int round = 0; round < 500; ++round) {
    const std::size_t which = rng.below(2);
    const ShadowFsm& ref = sh[which];
    // Deliberately includes out-of-range targets and undeclared arcs.
    const unsigned from = static_cast<unsigned>(rng.below(ref.num_states + 1));
    const unsigned to = static_cast<unsigned>(rng.below(ref.num_states + 1));
    fc.observe(which == 0 ? f0 : f1, from, to);
    ShadowFsm& f = sh[which];
    if (to < f.num_states) {
      f.s_cum[to] = 1;
      f.s_test[to] = 1;
    }
    for (std::size_t t = 0; t < f.arcs.size(); ++t) {
      if (f.arcs[t].first == from && f.arcs[t].second == to) {
        f.t_cum[t] = 1;
        f.t_test[t] = 1;
        break;
      }
    }

    std::size_t want_cov = 0, want_test = 0;
    std::vector<std::size_t> want;
    std::size_t base = 0;
    for (const ShadowFsm& g : sh) {
      for (std::size_t s = 0; s < g.s_cum.size(); ++s) {
        want_cov += g.s_cum[s];
        want_test += g.s_test[s];
        if (g.s_test[s]) want.push_back(base + s);
      }
      for (std::size_t t = 0; t < g.t_cum.size(); ++t) {
        want_cov += g.t_cum[t];
        want_test += g.t_test[t];
        if (g.t_test[t]) want.push_back(base + g.num_states + t);
      }
      base += g.num_states + g.arcs.size();
    }
    ASSERT_EQ(fc.covered(), want_cov);
    ASSERT_EQ(fc.test_covered(), want_test);
    std::vector<std::size_t> got;
    fc.append_test_bins(got);
    ASSERT_EQ(got, want);

    if (rng.chance(0.2)) {
      fc.begin_test();
      for (ShadowFsm& g : sh) {
        std::fill(g.s_test.begin(), g.s_test.end(), 0);
        std::fill(g.t_test.begin(), g.t_test.end(), 0);
      }
    }
  }
}

// ---- StatementCoverage ------------------------------------------------------

TEST(SparseCoverage, StatementJournalMatchesFullScanShadow) {
  Rng rng(5);
  StatementCoverage sc;
  const std::size_t kStmts = 37;
  for (std::size_t i = 0; i < kStmts; ++i) {
    sc.register_stmt("s" + std::to_string(i));
  }
  std::vector<std::uint8_t> cum(kStmts, 0), test(kStmts, 0);
  for (int round = 0; round < 400; ++round) {
    const std::size_t id = rng.below(kStmts);
    sc.hit(id);
    cum[id] = 1;
    test[id] = 1;
    if (rng.chance(0.1)) {
      const std::size_t b = rng.below(kStmts);
      sc.cover_bin(b);
      cum[b] = 1;
    }

    std::size_t want_cov = 0, want_test = 0;
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < kStmts; ++i) {
      want_cov += cum[i];
      want_test += test[i];
      if (test[i]) want.push_back(i);
    }
    ASSERT_EQ(sc.covered(), want_cov);
    ASSERT_EQ(sc.test_covered(), want_test);
    std::vector<std::size_t> got;
    sc.append_test_bins(got);
    ASSERT_EQ(got, want);

    if (rng.chance(0.25)) {
      sc.begin_test();
      std::fill(test.begin(), test.end(), 0);
    }
  }
}

// ---- Deferred select chains -------------------------------------------------

TEST(SparseCoverage, DeferredSelectChainsMatchPerInstructionEvaluation) {
  // The opcode-indexed comparator chains may be histogrammed per run and
  // folded in bulk (CoreConfig::deferred_select_chains); every cumulative
  // hit count and every per-test stand-alone bin must come out identical
  // to evaluating each comparator on each instruction the way the seed
  // model did — across several tests so cumulative state is covered too.
  corpus::CorpusGenerator gen({}, 31);
  sim::Platform plat{.max_steps = 256};
  rtl::CoreConfig deferred_cfg = rtl::CoreConfig::rocket();
  deferred_cfg.deferred_select_chains = true;
  rtl::CoreConfig eager_cfg = rtl::CoreConfig::rocket();
  eager_cfg.deferred_select_chains = false;
  CoverageDB deferred_db, eager_db;
  rtl::RtlCore deferred_core(deferred_cfg, deferred_db, plat);
  rtl::RtlCore eager_core(eager_cfg, eager_db, plat);
  ASSERT_EQ(deferred_db.num_bins(), eager_db.num_bins());

  for (int t = 0; t < 10; ++t) {
    const corpus::Program prog = gen.function();
    deferred_db.begin_test();
    eager_db.begin_test();
    deferred_core.reset(prog);
    deferred_core.run();
    eager_core.reset(prog);
    eager_core.run();
    ASSERT_EQ(deferred_db.total_covered(), eager_db.total_covered())
        << "test " << t;
    ASSERT_EQ(deferred_db.test_covered(), eager_db.test_covered())
        << "test " << t;
    for (std::size_t b = 0; b < eager_db.num_bins(); ++b) {
      ASSERT_EQ(deferred_db.bin_hits(b), eager_db.bin_hits(b))
          << "test " << t << " bin " << b << " ("
          << eager_db.point_name(static_cast<PointId>(b / 2)) << ")";
      ASSERT_EQ(deferred_db.test_bin_hit(b), eager_db.test_bin_hit(b))
          << "test " << t << " bin " << b;
    }
  }
}

TEST(SparseCoverage, DeferredChainsFoldOnResetOfAnAbandonedRun) {
  // Stepping a few instructions and then resetting must still land the
  // deferred counters — the DB may never lose evaluations the eager mode
  // would have recorded.
  corpus::CorpusGenerator gen({}, 5);
  const corpus::Program prog = gen.function();
  sim::Platform plat{.max_steps = 256};
  rtl::CoreConfig eager_cfg = rtl::CoreConfig::rocket();
  eager_cfg.deferred_select_chains = false;
  CoverageDB deferred_db, eager_db;
  rtl::RtlCore deferred_core(rtl::CoreConfig::rocket(), deferred_db, plat);
  rtl::RtlCore eager_core(eager_cfg, eager_db, plat);

  deferred_core.reset(prog);
  eager_core.reset(prog);
  for (int i = 0; i < 5; ++i) {
    deferred_core.step();
    eager_core.step();
  }
  deferred_core.reset(prog);  // abandon mid-run; fold must happen here
  eager_core.reset(prog);
  for (std::size_t b = 0; b < eager_db.num_bins(); ++b) {
    ASSERT_EQ(deferred_db.bin_hits(b), eager_db.bin_hits(b)) << "bin " << b;
  }
}

}  // namespace
}  // namespace chatfuzz::cov
