// Three-stage training walkthrough (paper §III-B): pretrain the LM on the
// machine-language corpus, clean it up with disassembler-rewarded PPO, then
// sample a few generations and disassemble them so you can see the model
// writing RISC-V.
//
//   $ ./examples/train_pipeline [pretrain_samples] [epochs] [cleanup_iters]
#include <cstdio>
#include <cstdlib>

#include "core/chatfuzz.h"
#include "riscv/disasm.h"

using namespace chatfuzz;

int main(int argc, char** argv) {
  core::ChatFuzzConfig cfg;
  cfg.pretrain_samples = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;
  cfg.pretrain.epochs = argc > 2 ? std::atoi(argv[2]) : 3;
  cfg.cleanup_iters = argc > 3 ? std::atoi(argv[3]) : 6;

  std::printf("model: %d layers, %d heads, d=%d, vocab=%d (%s)\n",
              cfg.model.n_layer, cfg.model.n_head, cfg.model.n_embd,
              cfg.model.vocab, "byte-level ISA tokenizer");
  std::printf("corpus: %zu function-granular samples\n\n", cfg.pretrain_samples);

  core::ChatFuzzGenerator gen(cfg);

  std::printf("--- stage 1: unsupervised pretraining ---\n");
  std::printf("--- stage 2: disassembler-rewarded PPO cleanup (Eq. 1) ---\n");
  gen.train_offline();
  for (std::size_t e = 0; e < gen.pretrain_stats().size(); ++e) {
    std::printf("stage1 epoch %zu: loss=%.4f (%zu steps)\n", e + 1,
                gen.pretrain_stats()[e].mean_loss,
                gen.pretrain_stats()[e].steps);
  }
  for (std::size_t i = 0; i < gen.cleanup_stats().size(); ++i) {
    const auto& s = gen.cleanup_stats()[i];
    std::printf(
        "stage2 iter %2zu: mean Eq.1 reward=%7.2f  invalid-rate=%.3f  KL=%.4f\n",
        i + 1, s.mean_reward, s.invalid_rate, s.mean_kl);
  }

  std::printf("\n--- the model writes RISC-V (3 sampled test inputs) ---\n");
  const auto batch = gen.next_batch(3);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const riscv::DisasmAudit audit = riscv::audit(batch[i]);
    std::printf("\ntest %zu (%zu instructions, %zu invalid):\n", i + 1,
                audit.total, audit.invalid);
    std::printf("%s", riscv::disasm_program(batch[i], 0x80000000ull).c_str());
  }
  return 0;
}
