// Static training-data collection (paper §III-A): the authors compile the
// Linux kernel, locate function boundaries through the symbol table, and
// emit each function's machine code as one training entry. This example
// walks the same pipeline end-to-end on our synthetic substrate:
//
//   1. "compile" a binary: a RISC-V ELF64 object holding function-granular
//      machine code (corpus::synthesize_compiled_binary),
//   2. harvest the per-function training entries back out of it
//      (corpus::harvest_dataset — the disassemble+split step),
//   3. train both tokenizer variants (fixed byte-level and learned BPE) and
//      compare their representations, and
//   4. run stage-1 pretraining on the harvested dataset.
//
//   $ ./examples/static_collection
#include <cstdio>

#include "core/training.h"
#include "corpus/elf.h"
#include "corpus/generator.h"
#include "ml/bpe.h"
#include "ml/gpt.h"
#include "ml/tokenizer.h"
#include "riscv/decode.h"

using namespace chatfuzz;

int main() {
  // 1. The "compiled kernel": 400 synthesized functions in one ELF image.
  corpus::CorpusGenerator gen({}, /*seed=*/2024);
  const std::vector<std::uint8_t> image =
      corpus::synthesize_compiled_binary(gen, 400);
  std::printf("compiled binary: %zu bytes of ELF\n", image.size());

  // 2. Static collection: function-granular machine code, metadata stripped.
  const auto dataset = corpus::harvest_dataset(image);
  std::size_t instrs = 0, valid = 0;
  for (const auto& fn : dataset) {
    for (std::uint32_t w : fn) {
      ++instrs;
      if (riscv::decode(w).valid()) ++valid;
    }
  }
  std::printf("harvested %zu functions, %zu instructions (%.1f%% valid)\n",
              dataset.size(), instrs,
              100.0 * static_cast<double>(valid) /
                  static_cast<double>(instrs));

  // 3. Tokenizer comparison: fixed byte-level vs. BPE trained on the corpus.
  ml::Tokenizer byte_tok;
  const auto bpe = ml::BpeTokenizer::train(dataset, /*vocab_size=*/512);
  std::size_t byte_tokens = 0, bpe_tokens = 0;
  for (const auto& fn : dataset) {
    byte_tokens += byte_tok.encode(fn).size();
    bpe_tokens += bpe.encode(fn).size();
  }
  std::printf("byte-level tokens: %zu   BPE tokens: %zu (%.2fx compression, "
              "%d merges)\n",
              byte_tokens, bpe_tokens,
              static_cast<double>(byte_tokens) /
                  static_cast<double>(bpe_tokens),
              bpe.num_merges());

  // 4. Stage-1 pretraining on the harvested dataset (tiny model: this is a
  // demonstration of the pipeline, not a convergence study).
  ml::GptConfig mc;
  mc.n_layer = 2;
  mc.n_head = 2;
  mc.n_embd = 64;
  ml::Gpt model(mc, /*seed=*/1);
  core::PretrainConfig pc;
  pc.epochs = 2;
  pc.warmup_steps = 4;
  pc.cosine = true;
  Rng rng(7);
  const auto stats = core::pretrain(model, dataset, pc, rng);
  for (std::size_t e = 0; e < stats.size(); ++e) {
    std::printf("pretrain epoch %zu: mean loss %.3f over %zu steps\n", e,
                static_cast<double>(stats[e].mean_loss), stats[e].steps);
  }
  std::printf("loss decreased: %s\n",
              stats.back().mean_loss < stats.front().mean_loss ? "yes" : "no");
  return 0;
}
