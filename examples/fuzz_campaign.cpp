// Fuzzer face-off: run every input generator (random regression, DifuzzRTL-
// style, TheHuzz-style, ChatFuzz) through identical campaigns on the
// RocketCore-class DUT and print the coverage table — a miniature of the
// paper's §V-A comparison.
//
//   $ ./examples/fuzz_campaign [num_tests] [chatfuzz_model.bin]
#include <cstdio>
#include <cstdlib>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "core/chatfuzz.h"

using namespace chatfuzz;
using namespace chatfuzz::core;

int main(int argc, char** argv) {
  const std::size_t tests = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
  const char* model_path = argc > 2 ? argv[2] : "chatfuzz_model.bin";

  CampaignConfig cfg;
  cfg.num_tests = tests;
  cfg.batch_size = 32;
  cfg.checkpoint_every = tests / 6;
  cfg.platform.max_steps = 512;

  std::printf("%zu tests per fuzzer on the RocketCore-class DUT\n\n", tests);
  std::printf("%-10s | %-9s | %-8s | %-9s | %s\n", "fuzzer", "cond-cov",
              "hours*", "raw-mm", "unique-mm");
  std::printf("-----------+-----------+----------+-----------+----------\n");

  auto row = [](const CampaignResult& r) {
    std::printf("%-10s | %7.2f%%  | %7.2f  | %8zu  | %zu\n", r.fuzzer.c_str(),
                r.final_cov_percent, r.hours, r.raw_mismatches,
                r.unique_mismatches);
  };

  {
    baselines::RandomFuzzer f(1);
    row(run_campaign(f, cfg));
  }
  {
    baselines::DifuzzRtlFuzzer f(1);
    row(run_campaign(f, cfg));
  }
  {
    baselines::TheHuzzFuzzer f(1);
    row(run_campaign(f, cfg));
  }
  {
    ChatFuzzConfig cc;
    ChatFuzzGenerator gen(cc);
    const ser::Status loaded = gen.load_model(model_path);
    if (loaded.ok()) {
      std::fprintf(stderr, "loaded cached model from %s\n", model_path);
    } else {
      std::fprintf(stderr, "model cache unavailable: %s\n",
                   loaded.message().c_str());
      std::fprintf(stderr, "training ChatFuzz (stages 1-2); this is cached "
                           "to %s for the next run...\n", model_path);
      gen.train_offline();
      const ser::Status saved = gen.save_model(model_path);
      if (!saved.ok()) {
        std::fprintf(stderr, "warning: %s\n", saved.message().c_str());
      }
    }
    row(run_campaign(gen, cfg));
  }

  std::printf("\n* paper-equivalent wall-clock from the tests/hour scale "
              "model (DESIGN.md); DifuzzRTL runs at 3.33x cost per test.\n");
  return 0;
}
