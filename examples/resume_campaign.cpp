// Checkpoint & resume walkthrough: run a campaign in time-boxed segments
// with a persistent on-disk corpus, "crash" between segments (every segment
// starts from a fresh generator and a fresh engine — only the checkpoint
// directory survives), and verify at the end that the stitched-together
// campaign is bit-identical to an uninterrupted run. This is the
// crash-safe / sharded workflow for the paper's hours-long campaigns
// (README "Checkpoint & resume").
//
//   $ ./examples/resume_campaign [num_tests] [checkpoint_dir]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "corpus/store.h"

using namespace chatfuzz;
using namespace chatfuzz::core;

namespace {

// Each segment constructs its own generator, as a restarted process would.
std::unique_ptr<baselines::TheHuzzFuzzer> fresh_generator() {
  return std::make_unique<baselines::TheHuzzFuzzer>(/*seed=*/2024);
}

CampaignConfig base_config(std::size_t tests) {
  CampaignConfig cfg;
  cfg.num_tests = tests;
  cfg.batch_size = 32;
  cfg.checkpoint_every = tests / 6;  // curve cadence
  cfg.platform.max_steps = 512;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t tests = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 192;
  const std::string dir = argc > 2 ? argv[2] : "resume_demo";

  // --- Segment 1: start a durable campaign, pause it a third of the way.
  std::printf("segment 1: 0 -> %zu tests (checkpointing to %s/)\n", tests / 3,
              dir.c_str());
  CampaignConfig cfg = base_config(tests);
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every_tests = 64;  // also snapshot periodically
  cfg.stop_after_tests = tests / 3;
  {
    auto gen = fresh_generator();
    const CampaignResult r = run_campaign(*gen, cfg);
    std::printf("  paused at %zu tests, %.2f%% cond-cov (completed=%s)\n",
                r.tests_run, r.final_cov_percent,
                r.completed ? "true" : "false");
  }

  // --- Segment 2: a "new process" resumes from disk, with MORE workers
  // (scheduling may change freely; results may not).
  std::printf("segment 2: resume -> %zu tests with 4 workers\n",
              2 * tests / 3);
  {
    auto gen = fresh_generator();
    ResumeOptions opts;
    opts.num_workers = 4;
    opts.stop_after_tests = 2 * tests / 3;
    const CampaignResult r = resume_campaign(*gen, dir, opts);
    std::printf("  paused at %zu tests, %.2f%% cond-cov\n", r.tests_run,
                r.final_cov_percent);
  }

  // --- Segment 3: resume to completion.
  std::printf("segment 3: resume -> completion\n");
  CampaignResult resumed;
  {
    auto gen = fresh_generator();
    resumed = resume_campaign(*gen, dir, ResumeOptions{});
  }

  // --- Reference: the same campaign uninterrupted, no persistence at all.
  std::printf("reference: uninterrupted run\n");
  CampaignResult reference;
  {
    auto gen = fresh_generator();
    reference = run_campaign(*gen, base_config(tests));
  }

  std::printf("\n%-22s | %-12s | %s\n", "", "resumed", "uninterrupted");
  std::printf("%-22s | %10.4f%% | %10.4f%%\n", "final condition cov",
              resumed.final_cov_percent, reference.final_cov_percent);
  std::printf("%-22s | %12zu | %12zu\n", "total cycles",
              static_cast<std::size_t>(resumed.total_cycles),
              static_cast<std::size_t>(reference.total_cycles));
  std::printf("%-22s | %12zu | %12zu\n", "raw mismatches",
              resumed.raw_mismatches, reference.raw_mismatches);
  std::printf("%-22s | %12zu | %12zu\n", "unique mismatches",
              resumed.unique_mismatches, reference.unique_mismatches);

  const bool identical =
      resumed.final_cov_percent == reference.final_cov_percent &&
      resumed.total_cycles == reference.total_cycles &&
      resumed.curve.size() == reference.curve.size() &&
      resumed.unique_mismatches == reference.unique_mismatches;
  std::printf("\nbit-identical to uninterrupted: %s\n",
              identical ? "YES" : "NO (bug!)");

  corpus::CorpusStore store;
  if (store.open(dir + "/corpus").ok()) {
    std::printf("corpus store: %zu archived tests in %s/corpus/\n",
                store.size(), dir.c_str());
    std::size_t attributed = 0;
    for (std::size_t i = 0; i < store.size(); ++i) {
      attributed += store.meta(i).new_bins.size();
    }
    std::printf("  coverage attribution: %zu condition bins first covered by "
                "an archived test\n", attributed);
  }
  return identical ? 0 : 1;
}
