// Bug hunt: reproduces the paper's §V-B findings with directed test
// programs — each program triggers one of the RocketCore deviations, the
// Mismatch Detector flags the divergence, and the classifier names it.
//
//   $ ./examples/bug_hunt
#include <cstdio>
#include <vector>

#include "isasim/sim.h"
#include "mismatch/detect.h"
#include "riscv/builder.h"
#include "riscv/disasm.h"
#include "riscv/encode.h"
#include "rtlsim/core.h"

using namespace chatfuzz;
using riscv::Opcode;

namespace {

struct Scenario {
  const char* title;
  std::vector<std::uint32_t> program;
};

std::vector<Scenario> build_scenarios() {
  std::vector<Scenario> out;
  {
    // Bug1 (CWE-1202): store into an already-fetched I$ line, no FENCE.I.
    riscv::ProgramBuilder b;
    const std::uint32_t li99 = riscv::enc_i(Opcode::kAddi, 10, 0, 99);
    b.li(11, static_cast<std::int32_t>(li99));
    b.auipc(12, 0);
    b.sw(12, 11, 8);   // patch the next instruction in memory
    b.li(10, 1);       // DUT executes this stale word; golden the patch
    out.push_back({"Bug1: self-modifying code without FENCE.I", b.seal()});
  }
  {
    // Bug2 (CWE-440): mul writeback missing from the DUT trace.
    riscv::ProgramBuilder b;
    b.li(10, 6).li(11, 7).mul(12, 10, 11);
    out.push_back({"Bug2: tracer drops MUL/DIV writeback", b.seal()});
  }
  {
    // Finding1: simultaneous misaligned + access-fault exception.
    riscv::ProgramBuilder b;
    b.li(10, 0x1001);  // odd address far below RAM
    b.lw(11, 10, 0);
    out.push_back({"Finding1: exception priority (misaligned vs fault)", b.seal()});
  }
  {
    // Finding2: AMOOR.D with rd = x0 (the paper's exact example).
    riscv::ProgramBuilder b;
    b.raw(riscv::enc_amo(Opcode::kAmoOrD, 0, 4, 11));
    out.push_back({"Finding2: AMOOR.D with rd=x0", b.seal()});
  }
  {
    // Finding3: backward jump with rd=x0 leaks a trace write to x0.
    riscv::ProgramBuilder b;
    b.branch_to(Opcode::kBeq, 5, 5, "fwd");
    b.label("back");
    b.ecall();
    b.label("fwd");
    b.jal_to(0, "back");
    out.push_back({"Finding3: x0 write records in the trace", b.seal()});
  }
  return out;
}

}  // namespace

int main() {
  sim::Platform plat;
  cov::CoverageDB db;
  rtl::RtlCore dut(rtl::CoreConfig::rocket(), db, plat);
  sim::IsaSim golden(plat);
  mismatch::MismatchDetector detector;
  detector.install_default_filters();

  for (const Scenario& sc : build_scenarios()) {
    std::printf("==============================================================\n");
    std::printf("%s\n", sc.title);
    std::printf("--------------------------------------------------------------\n");
    std::printf("%s", riscv::disasm_program(sc.program, plat.ram_base).c_str());

    dut.reset(sc.program);
    golden.reset(sc.program);
    const sim::RunResult dr = dut.run();
    const sim::RunResult gr = golden.run();
    const mismatch::Report rep = detector.compare(dr.trace, gr.trace);
    detector.accumulate(rep);

    if (rep.mismatches.empty()) {
      std::printf("  (no mismatch)\n\n");
      continue;
    }
    for (const auto& m : rep.mismatches) {
      std::printf("  -> %-14s %s\n", mismatch::kind_name(m.kind),
                  mismatch::finding_name(m.finding));
      std::printf("     dut:  %s\n", m.dut.to_string().c_str());
      std::printf("     gold: %s\n", m.golden.to_string().c_str());
    }
    std::printf("\n");
  }

  std::printf("==============================================================\n");
  std::printf("campaign totals: raw=%zu unique=%zu distinct findings=%zu\n",
              detector.total_raw(), detector.unique_count(),
              detector.findings_seen().size());
  return 0;
}
