// Directed coverage closure, the verification-engineer workflow behind
// hybrid fuzzers like HyPFuzz: run a short fuzzing campaign, list the
// coverage points it failed to reach, hand each one to the PointSolver (the
// formal-engine stand-in), replay the synthesized directed tests, and report
// how much of the residue closes — including the interrupt lines once CLINT
// stimulus is attached.
//
//   $ ./examples/directed_coverage
#include <cstdio>
#include <set>
#include <string>

#include "baselines/mutational.h"
#include "baselines/point_solver.h"
#include "core/campaign.h"
#include "coverage/merge.h"
#include "rtlsim/core.h"

using namespace chatfuzz;

int main() {
  sim::Platform plat;
  plat.max_steps = 512;
  plat.clint_enabled = true;  // give the solver an interrupt source

  // 1. A short mutational campaign leaves a deep-tail residue.
  core::CampaignConfig cfg;
  cfg.num_tests = 400;
  cfg.platform = plat;
  cfg.mismatch_detection = false;
  baselines::TheHuzzFuzzer fuzzer(7);
  const core::CampaignResult res = core::run_campaign(fuzzer, cfg);
  std::printf("after %zu fuzz tests: %.2f%% condition coverage, %zu points "
              "with uncovered bins\n",
              res.tests_run, res.final_cov_percent, res.uncovered.size());

  // 2. Directed closure: solve each residual point and replay the tests on
  // a fresh DUT+DB that first replays nothing (points accumulate per run).
  cov::CoverageDB db;
  rtl::RtlCore dut(rtl::CoreConfig::rocket(), db, plat);
  baselines::PointSolver solver(plat);
  std::size_t solved = 0, declined = 0, unreachable = 0;
  for (const cov::UncoveredPoint& up : res.uncovered) {
    if (solver.provably_unreachable(up.name)) {
      ++unreachable;
      continue;
    }
    const auto prog = solver.solve(up);
    if (!prog) {
      ++declined;
      continue;
    }
    dut.reset(*prog);
    dut.run();
    ++solved;
  }
  std::printf("solver: %zu directed tests, %zu declined, %zu unreachable\n",
              solved, declined, unreachable);

  // 3. How much of the residue did the directed tests close?
  std::set<std::string> open_after;
  for (const cov::UncoveredPoint& after : cov::uncovered_points(db)) {
    if (after.missing_true) open_after.insert(after.name);
  }
  std::size_t closed = 0, still_open = 0;
  for (const cov::UncoveredPoint& before : res.uncovered) {
    if (!before.missing_true) continue;
    if (open_after.count(before.name) != 0) {
      ++still_open;
    } else {
      ++closed;
    }
  }
  std::printf("residue closed: %zu points; %zu still open — the genuinely "
              "unreachable tail\n",
              closed, still_open);
  return 0;
}
