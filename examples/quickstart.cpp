// Quickstart: assemble a small directed program, co-simulate it on the DUT
// model (RocketCore-class) and the golden model, diff the traces with the
// Mismatch Detector, and print the condition coverage it reached.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/campaign.h"
#include "coverage/cover.h"
#include "isasim/sim.h"
#include "mismatch/detect.h"
#include "riscv/builder.h"
#include "riscv/disasm.h"
#include "rtlsim/core.h"

using namespace chatfuzz;

int main() {
  // A little function: sum the first 5 odd numbers with a loop, store the
  // result, read it back, then take a divide-by-zero detour.
  riscv::ProgramBuilder b;
  b.li(10, 5);            // a0 = loop counter
  b.li(11, 1);            // a1 = odd number
  b.li(12, 0);            // a2 = accumulator
  b.label("loop");
  b.add(12, 12, 11);      // acc += odd
  b.addi(11, 11, 2);      // next odd
  b.addi(10, 10, -1);
  b.branch_to(riscv::Opcode::kBne, 10, 0, "loop");
  b.sd(2, 12, -8);        // spill below sp
  b.ld(13, 2, -8);        // reload
  b.div(14, 13, 10);      // a0 is 0 here: divide by zero (defined in RISC-V!)
  b.ecall();              // traps, trampoline resumes
  const std::vector<std::uint32_t> program = b.seal();

  std::printf("=== program ===\n%s\n",
              riscv::disasm_program(program, 0x80000000ull).c_str());

  // Golden model run.
  sim::Platform plat;
  sim::IsaSim golden(plat);
  golden.reset(program);
  const sim::RunResult gold = golden.run();

  // DUT run with coverage.
  cov::CoverageDB db;
  rtl::RtlCore dut(rtl::CoreConfig::rocket(), db, plat);
  cov::CoverageCalculator calc(db);
  calc.begin_test();
  dut.reset(program);
  const sim::RunResult drun = dut.run();
  const cov::TestCoverage tc = calc.end_test();

  std::printf("=== golden trace (%zu commits, stop=%s) ===\n",
              gold.trace.size(), sim::stop_reason_name(gold.stop));
  for (const auto& rec : gold.trace) std::printf("  %s\n", rec.to_string().c_str());

  std::printf("\n=== DUT trace (%zu commits, %llu cycles, stop=%s) ===\n",
              drun.trace.size(),
              static_cast<unsigned long long>(dut.cycles()),
              sim::stop_reason_name(drun.stop));

  mismatch::MismatchDetector det;
  det.install_default_filters();
  const mismatch::Report rep = det.compare(drun.trace, gold.trace);
  std::printf("\n=== mismatch report ===\n");
  std::printf("raw=%zu filtered=%zu surviving=%zu\n", rep.raw_count,
              rep.filtered_count, rep.mismatches.size());
  for (const auto& m : rep.mismatches) {
    std::printf("  [%s] %s\n     dut:  %s\n     gold: %s\n",
                mismatch::finding_name(m.finding), m.signature.c_str(),
                m.dut.to_string().c_str(), m.golden.to_string().c_str());
  }

  std::printf("\n=== coverage ===\n");
  std::printf("stand-alone bins: %zu / %zu (%.2f%%)\n", tc.standalone_bins,
              tc.universe_bins, tc.standalone_percent());
  std::printf("total condition coverage: %.2f%%\n", tc.total_percent());
  return 0;
}
