// Coverage triage: the verification-engineer workflow around the fuzzer.
// Runs several independent fuzzing shards (the paper runs ten VCS instances),
// merges their coverage, writes the VCS-style report, and prints the
// remaining uncovered condition points — the "what should the next test hit"
// view that drives directed-test writing.
//
//   $ ./examples/coverage_triage [tests_per_shard] [shards]
#include <cstdio>
#include <cstdlib>

#include "baselines/mutational.h"
#include "coverage/merge.h"
#include "isasim/platform.h"
#include "rtlsim/core.h"

using namespace chatfuzz;

namespace {

/// One fuzzing shard: its own DB, core, and seed.
void run_shard(cov::CoverageDB& db, std::uint64_t seed, std::size_t tests) {
  sim::Platform plat;
  plat.max_steps = 512;
  rtl::RtlCore core(rtl::CoreConfig::rocket(), db, plat);
  baselines::TheHuzzFuzzer fuzzer(seed);
  cov::CoverageCalculator calc(db);
  std::size_t done = 0;
  while (done < tests) {
    const auto batch = fuzzer.next_batch(32);
    std::vector<cov::TestCoverage> tcs;
    std::vector<std::uint64_t> ctrl;
    for (const auto& t : batch) {
      calc.begin_test();
      core.ctrl_cov().begin_test();
      core.reset(t);
      core.run();
      tcs.push_back(calc.end_test());
      ctrl.push_back(core.ctrl_cov().test_new_states());
      ++done;
    }
    core::Feedback fb;
    fb.batch = &batch;
    fb.coverages = &tcs;
    fb.ctrl_new_states = &ctrl;
    fuzzer.feedback(fb);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t tests = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  const std::size_t shards = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;

  std::printf("running %zu shards x %zu tests (TheHuzz-style engine)...\n",
              shards, tests);
  std::vector<cov::CoverageDB> dbs(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    run_shard(dbs[s], 1000 + s, tests);
    std::printf("  shard %zu: %.2f%% condition coverage\n", s,
                dbs[s].total_percent());
  }

  // Merge everything into shard 0's DB (identical registrations).
  for (std::size_t s = 1; s < shards; ++s) {
    if (!cov::merge_into(dbs[0], dbs[s])) {
      std::fprintf(stderr, "merge failed: shard %zu has a different DUT\n", s);
      return 1;
    }
  }
  std::printf("merged:   %.2f%% condition coverage\n\n", dbs[0].total_percent());

  const auto uncovered = cov::uncovered_points(dbs[0]);
  std::printf("uncovered condition points (%zu):\n", uncovered.size());
  std::size_t shown = 0;
  for (const auto& u : uncovered) {
    std::printf("  %-44s missing:%s%s\n", u.name.c_str(),
                u.missing_true ? " true-bin" : "",
                u.missing_false ? " false-bin" : "");
    if (++shown >= 25) {
      std::printf("  ... and %zu more\n", uncovered.size() - shown);
      break;
    }
  }

  const std::string report = cov::write_report(dbs[0]);
  std::printf("\nreport: %zu bytes of VCS-style COND lines; first two:\n",
              report.size());
  std::size_t at = report.find("COND");
  for (int i = 0; i < 2 && at != std::string::npos; ++i) {
    const std::size_t end = report.find('\n', at);
    std::printf("  %s\n", report.substr(at, end - at).c_str());
    at = report.find("COND", end);
  }
  return 0;
}
